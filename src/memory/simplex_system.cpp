#include "memory/simplex_system.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rsmem::memory {

namespace {

std::shared_ptr<const rs::ReedSolomon> resolve_code(
    const std::shared_ptr<const rs::ReedSolomon>& shared,
    const rs::CodeParams& params, const char* what) {
  if (!shared) return std::make_shared<const rs::ReedSolomon>(params);
  if (shared->n() != params.n || shared->k() != params.k ||
      shared->m() != params.m || shared->fcr() != params.fcr) {
    throw std::invalid_argument(std::string(what) +
                                ": shared_code parameters do not match code");
  }
  return shared;
}

}  // namespace

SimplexSystem::SimplexSystem(const SimplexSystemConfig& config)
    : config_(config),
      code_(resolve_code(config.shared_code, config.code, "SimplexSystem")),
      module_(config.code.n, config.code.m),
      word_scratch_(config.code.n, 0) {
  erasure_scratch_.reserve(config.code.n);
  const sim::Rng root{config.seed};
  injector_ = std::make_unique<FaultInjector>(config.rates, root.split(1),
                                              queue_, module_);
  if (config.scrub_policy != ScrubPolicy::kNone) {
    scrubber_.emplace(config.scrub_policy, config.scrub_period_hours,
                      root.split(2));
  }
}

void SimplexSystem::store(std::span<const Element> data) {
  if (stored_) {
    throw std::logic_error("SimplexSystem::store: already stored");
  }
  stored_data_.assign(data.begin(), data.end());
  stored_codeword_.assign(code_->n(), 0);
  if (config_.workspace != nullptr) {
    code_->encode(*config_.workspace, stored_data_, stored_codeword_);
  } else {
    code_->encode_legacy(stored_data_, stored_codeword_);
  }
  commit_store();
}

void SimplexSystem::store_encoded(std::span<const Element> data,
                                  std::span<const Element> codeword) {
  if (stored_) {
    throw std::logic_error("SimplexSystem::store_encoded: already stored");
  }
  if (data.size() != code_->k() || codeword.size() != code_->n()) {
    throw std::invalid_argument(
        "SimplexSystem::store_encoded: data/codeword size mismatch");
  }
  stored_data_.assign(data.begin(), data.end());
  stored_codeword_.assign(codeword.begin(), codeword.end());
  commit_store();
}

void SimplexSystem::commit_store() {
  module_.write(stored_codeword_);
  stored_ = true;
  injector_->start();
  schedule_next_scrub();
}

void SimplexSystem::schedule_next_scrub() {
  if (!scrubber_) return;
  const double when = scrubber_->next_after(queue_.now());
  if (!std::isfinite(when)) return;
  queue_.schedule_at(when, [this] {
    scrub();
    schedule_next_scrub();
  });
}

void SimplexSystem::scrub() {
  if (scrub_suspended_ || retired_) {
    ++stats_.scrubs_skipped;
    return;
  }
  ++stats_.scrubs_attempted;
  module_.read_into(word_scratch_);
  module_.detected_erasures_into(erasure_scratch_);
  const rs::DecodeOutcome outcome =
      decode_with_recovery(word_scratch_, erasure_scratch_);
  if (!outcome.ok()) {
    // Unrecoverable content: scrubbing cannot help (the chain's Fail).
    ++stats_.scrub_failures;
    return;
  }
  module_.write(word_scratch_);  // rewrite the corrected codeword
  if (!std::equal(word_scratch_.begin(), word_scratch_.end(),
                  stored_codeword_.begin())) {
    // The decoder "corrected" to a wrong codeword and the scrub latched it.
    ++stats_.scrub_miscorrections;
  }
}

void SimplexSystem::inject_bit_flip(unsigned symbol, unsigned bit) {
  module_.flip_bit(symbol, bit);
}

void SimplexSystem::inject_stuck_bit(unsigned symbol, unsigned bit, bool level,
                                     bool detected) {
  module_.stick_bit(symbol, bit, level, detected);
}

void SimplexSystem::advance_to(double t_hours) {
  if (!stored_) {
    throw std::logic_error("SimplexSystem::advance_to: nothing stored");
  }
  queue_.run_until(t_hours);
  stats_.seu_injected = injector_->seu_injected();
  stats_.permanent_injected = injector_->permanent_injected();
}

rs::DecodeOutcome SimplexSystem::run_decode(
    std::span<Element> word, std::span<const unsigned> erasures) const {
  if (config_.workspace != nullptr) {
    return code_->decode(*config_.workspace, word, erasures);
  }
  return code_->decode_legacy(word, erasures);
}

rs::DecodeOutcome SimplexSystem::decode_with_recovery(
    std::span<Element> word, std::vector<unsigned>& erasures) const {
  rs::DecodeOutcome outcome = run_decode(word, erasures);
  const DegradationPolicy& policy = config_.degradation;
  if (!outcome.ok() && policy.retry_with_detection) {
    // Rung 1: trigger the module self-test; located stuck bits become
    // erasures (1x capability) instead of random errors (2x).
    for (unsigned attempt = 0; attempt < policy.max_retries && !outcome.ok();
         ++attempt) {
      ++degradation_.retries_attempted;
      module_.detect_all_faults();
      module_.read_into(word);
      module_.detected_erasures_into(erasures);
      outcome = run_decode(word, erasures);
      if (outcome.ok()) ++degradation_.retry_recoveries;
    }
  }
  if (!outcome.ok() && policy.erasure_only_fallback &&
      policy.bank_symbols > 0) {
    // Rung 2: condemn banks with enough reported stuck symbols, widening
    // the erasure set over the whole bank (covers latent stuck cells the
    // per-symbol detection has not located).
    module_.detected_erasures_into(erasures);
    const unsigned condemned = condemn_banks(module_, policy, erasures);
    if (condemned > 0 &&
        erasures.size() <= static_cast<std::size_t>(code_->parity_symbols())) {
      degradation_.banks_condemned += condemned;
      ++degradation_.erasure_only_decodes;
      module_.read_into(word);
      outcome = run_decode(word, erasures);
      if (outcome.ok()) ++degradation_.erasure_only_recoveries;
    }
  }
  note_decode_result(outcome.ok());
  return outcome;
}

void SimplexSystem::note_decode_result(bool ok) const {
  if (ok) {
    consecutive_failures_ = 0;
    return;
  }
  ++consecutive_failures_;
  ++degradation_.unrecovered_failures;
  const unsigned retire_after = config_.degradation.retire_after_failures;
  if (retire_after > 0 && !retired_ && consecutive_failures_ >= retire_after) {
    retired_ = true;
    ++degradation_.words_retired;
  }
}

ReadResult SimplexSystem::read() const {
  if (!stored_) {
    throw std::logic_error("SimplexSystem::read: nothing stored");
  }
  ReadResult result;
  if (retired_) {
    ++degradation_.reads_in_degraded_mode;
    return result;  // success=false: the word was retired (DegradedMode)
  }
  module_.read_into(word_scratch_);
  module_.detected_erasures_into(erasure_scratch_);
  result.outcome = decode_with_recovery(word_scratch_, erasure_scratch_);
  result.success = result.outcome.ok();
  if (result.success) {
    result.data = code_->extract_data(word_scratch_);
    result.data_correct =
        std::equal(result.data.begin(), result.data.end(),
                   stored_data_.begin(), stored_data_.end());
  }
  return result;
}

bool SimplexSystem::supports_batched_read() const {
  return stored_ && !retired_ && config_.workspace != nullptr &&
         !config_.degradation.any_enabled();
}

void SimplexSystem::read_into_plane(
    std::span<Element> word, std::span<std::uint8_t> erasure_flags) const {
  if (!supports_batched_read()) {
    throw std::logic_error(
        "SimplexSystem::read_into_plane: batched read unsupported "
        "(need stored data, workspace fast path, inert degradation policy)");
  }
  module_.read_into_plane(word, erasure_flags);
}

ReadResult SimplexSystem::finish_batched_read(
    std::span<const Element> word, const rs::DecodeOutcome& outcome) const {
  if (!supports_batched_read()) {
    throw std::logic_error(
        "SimplexSystem::finish_batched_read: batched read unsupported");
  }
  // Replays read()'s tail: with an inert degradation policy
  // decode_with_recovery is exactly {run_decode, note_decode_result}, and
  // the decode already happened externally.
  note_decode_result(outcome.ok());
  ReadResult result;
  result.outcome = outcome;
  result.success = outcome.ok();
  if (result.success) {
    result.data = code_->extract_data(word);
    result.data_correct =
        std::equal(result.data.begin(), result.data.end(),
                   stored_data_.begin(), stored_data_.end());
  }
  return result;
}

DamageSummary SimplexSystem::damage() const {
  if (!stored_) {
    throw std::logic_error("SimplexSystem::damage: nothing stored");
  }
  DamageSummary summary;
  const std::vector<Element> word = module_.read();
  for (unsigned p = 0; p < code_->n(); ++p) {
    if (module_.symbol_has_detected_fault(p)) {
      ++summary.erased;
    } else if (word[p] != stored_codeword_[p]) {
      ++summary.corrupted;
    }
  }
  return summary;
}

}  // namespace rsmem::memory
