#include "memory/simplex_system.h"

#include <algorithm>
#include <stdexcept>

namespace rsmem::memory {

SimplexSystem::SimplexSystem(const SimplexSystemConfig& config)
    : config_(config),
      code_(config.code),
      module_(config.code.n, config.code.m) {
  const sim::Rng root{config.seed};
  injector_ = std::make_unique<FaultInjector>(config.rates, root.split(1),
                                              queue_, module_);
  if (config.scrub_policy != ScrubPolicy::kNone) {
    scrubber_.emplace(config.scrub_policy, config.scrub_period_hours,
                      root.split(2));
  }
}

void SimplexSystem::store(std::span<const Element> data) {
  if (stored_) {
    throw std::logic_error("SimplexSystem::store: already stored");
  }
  stored_data_.assign(data.begin(), data.end());
  stored_codeword_ = code_.encode(stored_data_);
  module_.write(stored_codeword_);
  stored_ = true;
  injector_->start();
  schedule_next_scrub();
}

void SimplexSystem::schedule_next_scrub() {
  if (!scrubber_) return;
  const double when = scrubber_->next_after(queue_.now());
  if (!std::isfinite(when)) return;
  queue_.schedule_at(when, [this] {
    scrub();
    schedule_next_scrub();
  });
}

void SimplexSystem::scrub() {
  ++stats_.scrubs_attempted;
  std::vector<Element> word = module_.read();
  const std::vector<unsigned> erasures = module_.detected_erasures();
  const rs::DecodeOutcome outcome = code_.decode(word, erasures);
  if (!outcome.ok()) {
    // Unrecoverable content: scrubbing cannot help (the chain's Fail).
    ++stats_.scrub_failures;
    return;
  }
  module_.write(word);  // rewrite the corrected codeword
  if (!std::equal(word.begin(), word.end(), stored_codeword_.begin())) {
    // The decoder "corrected" to a wrong codeword and the scrub latched it.
    ++stats_.scrub_miscorrections;
  }
}

void SimplexSystem::advance_to(double t_hours) {
  if (!stored_) {
    throw std::logic_error("SimplexSystem::advance_to: nothing stored");
  }
  queue_.run_until(t_hours);
  stats_.seu_injected = injector_->seu_injected();
  stats_.permanent_injected = injector_->permanent_injected();
}

ReadResult SimplexSystem::read() const {
  if (!stored_) {
    throw std::logic_error("SimplexSystem::read: nothing stored");
  }
  ReadResult result;
  std::vector<Element> word = module_.read();
  const std::vector<unsigned> erasures = module_.detected_erasures();
  result.outcome = code_.decode(word, erasures);
  result.success = result.outcome.ok();
  if (result.success) {
    result.data = code_.extract_data(word);
    result.data_correct =
        std::equal(result.data.begin(), result.data.end(),
                   stored_data_.begin(), stored_data_.end());
  }
  return result;
}

DamageSummary SimplexSystem::damage() const {
  if (!stored_) {
    throw std::logic_error("SimplexSystem::damage: nothing stored");
  }
  DamageSummary summary;
  const std::vector<Element> word = module_.read();
  for (unsigned p = 0; p < code_.n(); ++p) {
    if (module_.symbol_has_detected_fault(p)) {
      ++summary.erased;
    } else if (word[p] != stored_codeword_[p]) {
      ++summary.corrupted;
    }
  }
  return summary;
}

}  // namespace rsmem::memory
