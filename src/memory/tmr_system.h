// Triple Modular Redundancy baseline: three UNCODED module copies with a
// bitwise majority voter.
//
// The classic alternative to EDAC coding for memories. Stores the raw
// k-symbol dataword in three modules; every read votes each bit; scrubbing
// (optional) rewrites the voted word into all three modules, re-converging
// diverged copies. The voter, like the paper's arbiter, is a hard core.
// Storage overhead is 3.0x -- compare with 2.25x for the duplex RS(18,16)
// or the simplex RS(36,16) (bench_tmr_baseline).
#ifndef RSMEM_MEMORY_TMR_SYSTEM_H
#define RSMEM_MEMORY_TMR_SYSTEM_H

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "memory/fault_injector.h"
#include "memory/memory_module.h"
#include "memory/scrubber.h"
#include "memory/simplex_system.h"  // ReadResult, SystemStats
#include "sim/event_queue.h"

namespace rsmem::memory {

struct TmrSystemConfig {
  unsigned word_symbols = 16;  // k
  unsigned m = 8;              // bits per symbol
  FaultRates rates;            // applied independently to each module
  ScrubPolicy scrub_policy = ScrubPolicy::kNone;
  double scrub_period_hours = 0.0;
  std::uint64_t seed = 1;
};

class TmrSystem {
 public:
  explicit TmrSystem(const TmrSystemConfig& config);

  double now_hours() const { return queue_.now(); }
  const SystemStats& stats() const { return stats_; }

  void store(std::span<const Element> data);
  void advance_to(double t_hours);

  // Bitwise-majority read; always produces an output (success is always
  // true), correctness is the interesting bit.
  ReadResult read() const;

  // Instrumentation: number of bit positions where >= 2 modules disagree
  // with the stored data (i.e. the voter is currently wrong).
  unsigned corrupted_voted_bits() const;

  // --- Robustness / fault-injection surface --------------------------------
  // Scripted fault injection (analysis/fault_campaign.h): damages one of
  // the three copies directly, bypassing the Poisson streams.
  void inject_bit_flip(unsigned module_index, unsigned symbol, unsigned bit);
  void inject_stuck_bit(unsigned module_index, unsigned symbol, unsigned bit,
                        bool level, bool detected);
  // Scrub stall window: due scrub passes are skipped while suspended.
  void suspend_scrubbing() { scrub_suspended_ = true; }
  void resume_scrubbing() { scrub_suspended_ = false; }
  bool scrub_suspended() const { return scrub_suspended_; }

 private:
  std::vector<Element> vote() const;
  void scrub();
  void schedule_next_scrub();

  TmrSystemConfig config_;
  sim::EventQueue queue_;
  std::array<std::unique_ptr<MemoryModule>, 3> modules_;
  std::array<std::unique_ptr<FaultInjector>, 3> injectors_;
  std::optional<Scrubber> scrubber_;
  std::vector<Element> stored_data_;
  bool stored_ = false;
  SystemStats stats_;
  bool scrub_suspended_ = false;
};

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_TMR_SYSTEM_H
