#include "memory/degradation.h"

#include <algorithm>
#include <vector>

#include "memory/memory_module.h"

namespace rsmem::memory {

unsigned condemn_banks(const MemoryModule& module,
                       const DegradationPolicy& policy,
                       std::vector<unsigned>& erasures) {
  if (!policy.erasure_only_fallback || policy.bank_symbols == 0) return 0;
  const unsigned n = module.n();
  const unsigned bank = policy.bank_symbols;
  unsigned condemned = 0;
  std::vector<unsigned char> erased(n, 0);
  for (const unsigned p : erasures) erased[p] = 1;
  for (unsigned first = 0; first < n; first += bank) {
    const unsigned last = std::min(first + bank, n);
    unsigned stuck = 0;
    for (unsigned p = first; p < last; ++p) {
      if (module.symbol_has_detected_fault(p)) ++stuck;
    }
    if (stuck >= policy.bank_stuck_threshold && stuck > 0) {
      // The bank is condemned only if widening actually adds information
      // (some symbol of it is not already erased).
      bool widens = false;
      for (unsigned p = first; p < last; ++p) {
        if (!erased[p]) {
          erased[p] = 1;
          widens = true;
        }
      }
      if (widens) ++condemned;
    }
  }
  if (condemned > 0) {
    erasures.clear();
    for (unsigned p = 0; p < n; ++p) {
      if (erased[p]) erasures.push_back(p);
    }
  }
  return condemned;
}

}  // namespace rsmem::memory
