// Functional simulation of the DUPLEX RS-coded memory system (paper Fig. 1).
//
// Two replicated modules store the same codeword; independent fault streams
// hit each copy; the arbiter performs erasure masking, dual decoding and
// flag-based selection on every read and scrub. This is the executable
// counterpart of the 6-tuple Markov chain in src/models/duplex_model.h.
#ifndef RSMEM_MEMORY_DUPLEX_SYSTEM_H
#define RSMEM_MEMORY_DUPLEX_SYSTEM_H

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "memory/arbiter.h"
#include "memory/fault_injector.h"
#include "memory/memory_module.h"
#include "memory/scrubber.h"
#include "memory/simplex_system.h"  // ReadResult, SystemStats
#include "rs/reed_solomon.h"
#include "sim/event_queue.h"

namespace rsmem::memory {

struct DuplexSystemConfig {
  rs::CodeParams code{18, 16, 8, 1};
  FaultRates rates;  // applied independently to each module
  ScrubPolicy scrub_policy = ScrubPolicy::kNone;
  double scrub_period_hours = 0.0;
  std::uint64_t seed = 1;
  // Optional codec sharing / fast-path routing; see SimplexSystemConfig.
  std::shared_ptr<const rs::ReedSolomon> shared_code;
  rs::DecoderWorkspace* workspace = nullptr;
  // Graceful-degradation escalation chain (memory/degradation.h). All
  // features default off; the default policy leaves outputs bit-identical.
  DegradationPolicy degradation;
};

struct DuplexReadResult {
  ReadResult read;           // aggregate success / data / correctness
  ArbiterResult arbitration; // full arbiter detail
  bool degraded = false;     // served while demoted to simplex or retired
};

class DuplexSystem {
 public:
  explicit DuplexSystem(const DuplexSystemConfig& config);

  const rs::ReedSolomon& code() const { return *code_; }
  double now_hours() const { return queue_.now(); }
  const SystemStats& stats() const { return stats_; }

  void store(std::span<const Element> data);

  // Batched-store half: stores `data` (k symbols) with an externally
  // encoded `codeword` (n symbols, written to both modules). The campaign
  // batch path encodes whole trial planes with rs::encode_batch
  // (bit-identical per word to encode()); the caller guarantees
  // codeword == encode(data). Observable behaviour identical to store().
  void store_encoded(std::span<const Element> data,
                     std::span<const Element> codeword);

  void advance_to(double t_hours);

  DuplexReadResult read() const;

  // --- Batched read surface (campaign gather/scatter) ----------------------
  // Duplex counterpart of SimplexSystem's split read: gather the two
  // modules' reads with arbiter step-1 erasure masking already applied,
  // decode both words externally (one rs::decode_batch plane across many
  // systems — the flag spans come back holding each word's common-erasure
  // indicator, decode_batch's erasure_flags layout), then finish with the
  // arbiter's flag-based selection. Bit-identical to read() whenever
  // supports_batched_read() holds.
  //
  // True when read() reduces to {mask, two workspace decodes, select}:
  // data stored, not retired, not demoted, workspace fast path configured,
  // every degradation rung disabled.
  bool supports_batched_read() const;
  // Gather + arbiter step 1: raw module reads masked in place, both flag
  // spans rewritten to the common-erasure indicator, `partial` filled with
  // common_erasures/masked_erasures (outcomes still default). All spans of
  // size n.
  void read_into_masked_pair(std::span<Element> word1,
                             std::span<Element> word2,
                             std::span<std::uint8_t> flags1,
                             std::span<std::uint8_t> flags2,
                             ArbiterResult& partial) const;
  // Scatter: consumes the two externally-decoded words and outcomes plus
  // the ArbiterResult read_into_masked_pair filled; runs arbiter step 3 and
  // read()'s bookkeeping/data tail. Requires supports_batched_read().
  DuplexReadResult finish_batched_read(std::span<const Element> word1,
                                       std::span<const Element> word2,
                                       const rs::DecodeOutcome& outcome1,
                                       const rs::DecodeOutcome& outcome2,
                                       ArbiterResult&& partial) const;

  // Ground-truth damage of one module (0 or 1) versus the stored codeword.
  DamageSummary damage(unsigned module_index) const;

  // Instrumentation: classify the current symbol-pair damage into the
  // paper's 6-tuple (X, Y, b, e1, e2, ec) against the stored ground truth.
  struct PairClassification {
    unsigned x = 0, y = 0, b = 0, e1 = 0, e2 = 0, ec = 0;
  };
  PairClassification classify_pairs() const;

  // --- Robustness / fault-injection surface --------------------------------
  // Scripted fault injection (analysis/fault_campaign.h): damages module 0
  // or 1 directly, bypassing the Poisson streams.
  void inject_bit_flip(unsigned module_index, unsigned symbol, unsigned bit);
  void inject_stuck_bit(unsigned module_index, unsigned symbol, unsigned bit,
                        bool level, bool detected);
  // Scrub stall window: due scrub passes are skipped while suspended.
  void suspend_scrubbing() { scrub_suspended_ = true; }
  void resume_scrubbing() { scrub_suspended_ = false; }
  bool scrub_suspended() const { return scrub_suspended_; }
  // Degradation state. demoted() reports rung-3 duplex->simplex demotion
  // (dead_module() is then 0 or 1); retired() reports rung-4 retirement.
  const DegradationCounters& degradation() const { return degradation_; }
  bool demoted() const { return dead_module_ >= 0; }
  int dead_module() const { return dead_module_; }
  bool retired() const { return retired_; }

 private:
  // Shared tail of store()/store_encoded(): write the codeword to both
  // modules and start the fault/scrub processes.
  void commit_store();
  void scrub();
  void schedule_next_scrub();
  // Full arbitration over the current module contents (fills the scratch
  // buffers). With an active demotion, decodes the survivor alone instead
  // and synthesizes an equivalent ArbiterResult.
  ArbiterResult arbitrate_current() const;
  // arbitrate_current plus the degradation chain: rung-1 retry with
  // self-test, rung-3 dead-module demotion, rung-4 retire bookkeeping.
  ArbiterResult arbitrate_with_recovery() const;
  // Simplex decode of the surviving module, packaged as an ArbiterResult.
  ArbiterResult survivor_arbiter_result() const;
  // Simplex decode of one module with its own erasure info (demotion probe).
  bool probe_decode(const MemoryModule& module, std::vector<Element>& word,
                    std::vector<unsigned>& erasures) const;
  void maybe_demote() const;
  void note_decode_result(bool ok) const;

  DuplexSystemConfig config_;
  std::shared_ptr<const rs::ReedSolomon> code_;  // must precede arbiter_
  Arbiter arbiter_;
  sim::EventQueue queue_;
  // Mutable: rung-1 recovery during a logically-const read() triggers the
  // modules' self-tests (controller-visible device state).
  mutable MemoryModule module1_;
  mutable MemoryModule module2_;
  std::unique_ptr<FaultInjector> injector1_;
  std::unique_ptr<FaultInjector> injector2_;
  std::optional<Scrubber> scrubber_;
  std::vector<Element> stored_data_;
  std::vector<Element> stored_codeword_;
  bool stored_ = false;
  SystemStats stats_;
  // Reused module-read buffers for scrub/read passes (mutable: read() is
  // logically const). The arbiter takes spans, so these feed it directly.
  mutable std::vector<Element> word1_scratch_;
  mutable std::vector<Element> word2_scratch_;
  mutable std::vector<unsigned> erasures1_scratch_;
  mutable std::vector<unsigned> erasures2_scratch_;
  bool scrub_suspended_ = false;
  mutable DegradationCounters degradation_;
  mutable unsigned consecutive_failures_ = 0;
  mutable int dead_module_ = -1;  // rung 3: index of the demoted module
  mutable bool retired_ = false;
};

}  // namespace rsmem::memory

#endif  // RSMEM_MEMORY_DUPLEX_SYSTEM_H
