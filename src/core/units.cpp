// units.h is fully constexpr; this translation unit only anchors the header
// into the library so misuse shows up at link time in every build mode.
#include "core/units.h"

namespace rsmem::core {

static_assert(per_day_to_per_hour(24.0) == 1.0);
static_assert(seconds_to_hours(3600.0) == 1.0);
static_assert(scrub_rate_per_hour(3600.0) == 1.0);
static_assert(scrub_rate_per_hour(0.0) == 0.0);

}  // namespace rsmem::core
