// Structured failure taxonomy for the rsmem runtime.
//
// The paper's systems survive faults by CLASSIFYING them (random error vs
// located erasure vs arbiter disagreement) and routing each class to a
// recovery mechanism. The reproduction's own runtime follows the same
// discipline: every failure a layer can produce is a Status with a code
// from one taxonomy, carrying an actionable message and the context chain
// of the layers it crossed. Recoverable paths return Status/Result<T>;
// exceptions are reserved for programming errors (bad spans, use before
// store) and for StatusError, the bridge used where an interface cannot
// return a Status (solver internals, legacy call sites).
#ifndef RSMEM_CORE_STATUS_H
#define RSMEM_CORE_STATUS_H

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace rsmem::core {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  // Caller-side: the request itself is malformed (RS geometry, negative
  // rates, zero scrub period where scrubbing is required, ...).
  kInvalidConfig,
  // Decoder: detected uncorrectable pattern (the decoder KNOWS it failed).
  kDecodeFailure,
  // Decoder: produced a valid but WRONG codeword. Only diagnosable against
  // ground truth (simulation / differential tests); real hardware cannot
  // see this -- which is exactly why the duplex arbiter exists.
  kMiscorrection,
  // Duplex arbiter: discrimination impossible, no output produced.
  kArbiterNoOutput,
  // Markov solver: a numerical guard tripped (NaN, negative probability,
  // probability-mass drift) or an iteration cap was exceeded.
  kSolverDivergence,
  // Operation succeeded, but only through a degradation fallback (retry,
  // erasure-only decode, duplex->simplex demotion). The result is valid;
  // the system is running with reduced margin.
  kDegradedMode,
  // Every rung of a recovery/fallback chain was exhausted.
  kRetryExhausted,
  // Service admission control: the request queue is at capacity and the
  // request was REJECTED up front (typed, never a silent drop). The caller
  // should back off and retry; the service is healthy, just saturated.
  kOverloaded,
  // Service scheduling: the request was admitted but its deadline expired
  // before a worker could start it. No computation was performed.
  kDeadlineExceeded,
  // Service brown-out: the shard is under sustained overload and is
  // shedding cache-MISS analysis work to protect cache hits and the
  // control plane. Like kOverloaded this is a typed up-front rejection,
  // but it carries a retry-after hint and signals degraded (not merely
  // saturated) service.
  kBrownout,
  // Invariant violation inside rsmem itself.
  kInternal,
};

// Stable identifier, e.g. "InvalidConfig".
const char* to_string(StatusCode code);

class Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_config(std::string message) {
    return {StatusCode::kInvalidConfig, std::move(message)};
  }
  static Status decode_failure(std::string message) {
    return {StatusCode::kDecodeFailure, std::move(message)};
  }
  static Status miscorrection(std::string message) {
    return {StatusCode::kMiscorrection, std::move(message)};
  }
  static Status arbiter_no_output(std::string message) {
    return {StatusCode::kArbiterNoOutput, std::move(message)};
  }
  static Status solver_divergence(std::string message) {
    return {StatusCode::kSolverDivergence, std::move(message)};
  }
  static Status degraded_mode(std::string message) {
    return {StatusCode::kDegradedMode, std::move(message)};
  }
  static Status retry_exhausted(std::string message) {
    return {StatusCode::kRetryExhausted, std::move(message)};
  }
  static Status overloaded(std::string message) {
    return {StatusCode::kOverloaded, std::move(message)};
  }
  static Status deadline_exceeded(std::string message) {
    return {StatusCode::kDeadlineExceeded, std::move(message)};
  }
  static Status brownout(std::string message) {
    return {StatusCode::kBrownout, std::move(message)};
  }
  static Status internal(std::string message) {
    return {StatusCode::kInternal, std::move(message)};
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Prepends "context: " to the message, building the layer chain as the
  // status propagates outward, e.g. "analyze_ber: solver: mass drift ...".
  Status& with_context(std::string_view context);

  // "InvalidConfig: require k < n (got k=16, n=16)"; "OK" when ok.
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Exception bridge for interfaces that cannot return a Status (virtual
// solver entry points, constructors). Carries the full Status.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

// Value-or-Status. A Result either holds a T (ok) or a non-ok Status.
// value() on an error result throws StatusError -- failures must be
// checked, never silently unwrapped.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.is_ok()) {
      status_ = Status::internal("Result constructed from an OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    require_ok();
    return *value_;
  }
  T& value() & {
    require_ok();
    return *value_;
  }
  T&& value() && {
    require_ok();
    return std::move(*value_);
  }
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok()) throw StatusError(status_);
  }

  std::optional<T> value_;
  Status status_;  // ok iff value_ holds
};

}  // namespace rsmem::core

#endif  // RSMEM_CORE_STATUS_H
