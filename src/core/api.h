// rsmem public facade.
//
// Most users need exactly these entry points:
//   * analyze_ber      - solve the paper's Markov chain for BER(t) curves,
//   * fail_probability - P_Fail at one time point,
//   * simulate         - Monte-Carlo the functional system (real decoder),
//   * codec_cost       - decode-latency / area of the arrangement.
// Everything they build on (codec, chains, solvers, simulator) is public
// too, under the rsmem::gf/rs/markov/models/sim/memory/analysis/reliability
// namespaces, for users who need the pieces.
#ifndef RSMEM_CORE_API_H
#define RSMEM_CORE_API_H

#include <span>

#include "analysis/monte_carlo.h"
#include "core/config.h"
#include "core/status.h"
#include "reliability/decoder_cost.h"

namespace rsmem {

// Library version string (semantic).
const char* version();

// Transient BER(t) of the configured system at the given times (hours,
// ascending), via the simplex or duplex Markov chain and uniformization.
models::BerCurve analyze_ber(const core::MemorySystemSpec& spec,
                             std::span<const double> times_hours);

// P_Fail at a single time (hours).
double fail_probability(const core::MemorySystemSpec& spec, double t_hours);

// Monte-Carlo estimate of the failure probability on the functional system.
// The spec's scrubbing is simulated with the exponential policy by default
// so results are directly comparable with the Markov chain; pass
// memory::ScrubPolicy::kPeriodic to mirror real hardware instead.
// Trials run on the sharded parallel campaign engine (config.threads; the
// result is bit-identical for every thread count). Pass `report` to get
// shard/throughput counters for the run.
analysis::MonteCarloResult simulate(
    const core::MemorySystemSpec& spec,
    const analysis::MonteCarloConfig& config,
    memory::ScrubPolicy policy = memory::ScrubPolicy::kExponential,
    analysis::CampaignReport* report = nullptr);

// Decode latency and codec area of the arrangement.
reliability::ArrangementCost codec_cost(
    const core::MemorySystemSpec& spec,
    const reliability::DecoderCostModel& model = {});

// Mean time to data loss (hours) of one stored word, by exact absorption
// analysis of the chain. Throws std::domain_error when the fault rates are
// all zero (the word never fails).
double mttf_hours(const core::MemorySystemSpec& spec);

// BER(t) under DETERMINISTIC periodic scrubbing (the policy real hardware
// implements) instead of the chain's exponential approximation. The spec's
// scrub_period_seconds selects the period and must be positive.
models::BerCurve analyze_ber_periodic_scrub(
    const core::MemorySystemSpec& spec, std::span<const double> times_hours);

// ---------------------------------------------------------------------------
// Structured-failure variants (core/status.h). Same computations as the
// entry points above, but misconfiguration comes back as an InvalidConfig
// Status and a solver whose whole fallback chain was rejected comes back as
// SolverDivergence, instead of exceptions. The throwing entry points remain
// for existing callers; these are the preferred API for services that must
// degrade gracefully. All analyze paths route through the
// markov::GuardedTransientSolver fallback chain (solver_guard.h); results
// are bitwise identical to the unguarded solver when no guard trips.
core::Result<models::BerCurve> try_analyze_ber(
    const core::MemorySystemSpec& spec, std::span<const double> times_hours);
core::Result<double> try_fail_probability(const core::MemorySystemSpec& spec,
                                          double t_hours);
core::Result<double> try_mttf_hours(const core::MemorySystemSpec& spec);
core::Result<models::BerCurve> try_analyze_ber_periodic_scrub(
    const core::MemorySystemSpec& spec, std::span<const double> times_hours);
core::Result<analysis::MonteCarloResult> try_simulate(
    const core::MemorySystemSpec& spec,
    const analysis::MonteCarloConfig& config,
    memory::ScrubPolicy policy = memory::ScrubPolicy::kExponential,
    analysis::CampaignReport* report = nullptr);

}  // namespace rsmem

#endif  // RSMEM_CORE_API_H
