#include "core/api.h"

#include <stdexcept>

#include "core/units.h"
#include "markov/solver_guard.h"
#include "markov/solver_workspace.h"
#include "markov/uniformization.h"
#include "models/chain_cache.h"
#include "models/metrics.h"

namespace rsmem {

const char* version() { return "1.0.0"; }

models::BerCurve analyze_ber(const core::MemorySystemSpec& spec,
                             std::span<const double> times_hours) {
  // Chain from the process-wide cache, solved through a per-thread
  // workspace with the default StepPolicy: bitwise identical to building
  // and solving from scratch, but repeated queries (sweeps, code search)
  // skip the BFS enumeration, the Poisson windows, and the per-call
  // allocations. The guarded solver validates every distribution it
  // returns and falls back uniformization -> RK45 -> dense expm on a
  // numerical guard trip; with no trip the output is the untouched
  // uniformization result.
  static thread_local markov::SolverWorkspace workspace;
  const markov::GuardedTransientSolver solver;
  if (spec.arrangement == analysis::Arrangement::kSimplex) {
    return models::simplex_ber_curve(spec.to_simplex_params(), times_hours,
                                     solver, models::global_chain_cache(),
                                     workspace);
  }
  return models::duplex_ber_curve(spec.to_duplex_params(), times_hours, solver,
                                  models::global_chain_cache(), workspace);
}

double fail_probability(const core::MemorySystemSpec& spec, double t_hours) {
  const double times[] = {t_hours};
  return analyze_ber(spec, times).fail_probability.front();
}

analysis::MonteCarloResult simulate(const core::MemorySystemSpec& spec,
                                    const analysis::MonteCarloConfig& config,
                                    memory::ScrubPolicy policy,
                                    analysis::CampaignReport* report) {
  if (spec.arrangement == analysis::Arrangement::kSimplex) {
    return analysis::run_simplex_trials(
        spec.to_simplex_system_config(config.seed, policy), config, report);
  }
  return analysis::run_duplex_trials(
      spec.to_duplex_system_config(config.seed, policy), config, report);
}

reliability::ArrangementCost codec_cost(
    const core::MemorySystemSpec& spec,
    const reliability::DecoderCostModel& model) {
  spec.validate();
  if (spec.arrangement == analysis::Arrangement::kSimplex) {
    return reliability::simplex_cost(model, spec.code.n, spec.code.k,
                                     spec.code.m);
  }
  return reliability::duplex_cost(model, spec.code.n, spec.code.k,
                                  spec.code.m);
}

double mttf_hours(const core::MemorySystemSpec& spec) {
  if (spec.arrangement == analysis::Arrangement::kSimplex) {
    return models::simplex_mttf_hours(spec.to_simplex_params());
  }
  return models::duplex_mttf_hours(spec.to_duplex_params());
}

models::BerCurve analyze_ber_periodic_scrub(
    const core::MemorySystemSpec& spec,
    std::span<const double> times_hours) {
  if (spec.scrub_period_seconds <= 0.0) {
    throw std::invalid_argument(
        "analyze_ber_periodic_scrub: scrub_period_seconds must be > 0");
  }
  const double tsc_hours = core::seconds_to_hours(spec.scrub_period_seconds);
  const markov::GuardedTransientSolver solver;
  if (spec.arrangement == analysis::Arrangement::kSimplex) {
    return models::simplex_periodic_scrub_ber(spec.to_simplex_params(),
                                              tsc_hours, times_hours, solver);
  }
  return models::duplex_periodic_scrub_ber(spec.to_duplex_params(), tsc_hours,
                                           times_hours, solver);
}

namespace {

// Shared wrapper for the try_* entry points: validates the spec up front
// (actionable InvalidConfig instead of a thrown invalid_argument), then
// maps the legacy exception surface of the underlying computation onto the
// Status taxonomy.
template <typename T, typename Fn>
core::Result<T> run_guarded(const core::MemorySystemSpec& spec,
                            const char* context, Fn&& fn) {
  core::Status valid = spec.validate_status();
  if (!valid.is_ok()) return valid.with_context(context);
  try {
    return fn();
  } catch (const core::StatusError& e) {
    core::Status status = e.status();
    return status.with_context(context);
  } catch (const std::invalid_argument& e) {
    return core::Status::invalid_config(e.what()).with_context(context);
  } catch (const std::domain_error& e) {
    return core::Status::invalid_config(e.what()).with_context(context);
  } catch (const std::exception& e) {
    return core::Status::internal(e.what()).with_context(context);
  }
}

}  // namespace

core::Result<models::BerCurve> try_analyze_ber(
    const core::MemorySystemSpec& spec, std::span<const double> times_hours) {
  return run_guarded<models::BerCurve>(
      spec, "analyze_ber", [&] { return analyze_ber(spec, times_hours); });
}

core::Result<double> try_fail_probability(const core::MemorySystemSpec& spec,
                                          double t_hours) {
  return run_guarded<double>(spec, "fail_probability", [&] {
    return fail_probability(spec, t_hours);
  });
}

core::Result<double> try_mttf_hours(const core::MemorySystemSpec& spec) {
  return run_guarded<double>(spec, "mttf_hours",
                             [&] { return mttf_hours(spec); });
}

core::Result<models::BerCurve> try_analyze_ber_periodic_scrub(
    const core::MemorySystemSpec& spec, std::span<const double> times_hours) {
  core::Status scrubbed = spec.validate_scrubbed_status();
  if (!scrubbed.is_ok()) {
    return scrubbed.with_context("analyze_ber_periodic_scrub");
  }
  return run_guarded<models::BerCurve>(
      spec, "analyze_ber_periodic_scrub",
      [&] { return analyze_ber_periodic_scrub(spec, times_hours); });
}

core::Result<analysis::MonteCarloResult> try_simulate(
    const core::MemorySystemSpec& spec,
    const analysis::MonteCarloConfig& config, memory::ScrubPolicy policy,
    analysis::CampaignReport* report) {
  return run_guarded<analysis::MonteCarloResult>(
      spec, "simulate", [&] { return simulate(spec, config, policy, report); });
}

}  // namespace rsmem
