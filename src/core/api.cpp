#include "core/api.h"

#include <stdexcept>

#include "core/units.h"
#include "markov/solver_workspace.h"
#include "markov/uniformization.h"
#include "models/chain_cache.h"
#include "models/metrics.h"

namespace rsmem {

const char* version() { return "1.0.0"; }

models::BerCurve analyze_ber(const core::MemorySystemSpec& spec,
                             std::span<const double> times_hours) {
  // Chain from the process-wide cache, solved through a per-thread
  // workspace with the default StepPolicy: bitwise identical to building
  // and solving from scratch, but repeated queries (sweeps, code search)
  // skip the BFS enumeration, the Poisson windows, and the per-call
  // allocations.
  static thread_local markov::SolverWorkspace workspace;
  const markov::UniformizationSolver solver;
  if (spec.arrangement == analysis::Arrangement::kSimplex) {
    return models::simplex_ber_curve(spec.to_simplex_params(), times_hours,
                                     solver, models::global_chain_cache(),
                                     workspace);
  }
  return models::duplex_ber_curve(spec.to_duplex_params(), times_hours, solver,
                                  models::global_chain_cache(), workspace);
}

double fail_probability(const core::MemorySystemSpec& spec, double t_hours) {
  const double times[] = {t_hours};
  return analyze_ber(spec, times).fail_probability.front();
}

analysis::MonteCarloResult simulate(const core::MemorySystemSpec& spec,
                                    const analysis::MonteCarloConfig& config,
                                    memory::ScrubPolicy policy,
                                    analysis::CampaignReport* report) {
  if (spec.arrangement == analysis::Arrangement::kSimplex) {
    return analysis::run_simplex_trials(
        spec.to_simplex_system_config(config.seed, policy), config, report);
  }
  return analysis::run_duplex_trials(
      spec.to_duplex_system_config(config.seed, policy), config, report);
}

reliability::ArrangementCost codec_cost(
    const core::MemorySystemSpec& spec,
    const reliability::DecoderCostModel& model) {
  spec.validate();
  if (spec.arrangement == analysis::Arrangement::kSimplex) {
    return reliability::simplex_cost(model, spec.code.n, spec.code.k,
                                     spec.code.m);
  }
  return reliability::duplex_cost(model, spec.code.n, spec.code.k,
                                  spec.code.m);
}

double mttf_hours(const core::MemorySystemSpec& spec) {
  if (spec.arrangement == analysis::Arrangement::kSimplex) {
    return models::simplex_mttf_hours(spec.to_simplex_params());
  }
  return models::duplex_mttf_hours(spec.to_duplex_params());
}

models::BerCurve analyze_ber_periodic_scrub(
    const core::MemorySystemSpec& spec,
    std::span<const double> times_hours) {
  if (spec.scrub_period_seconds <= 0.0) {
    throw std::invalid_argument(
        "analyze_ber_periodic_scrub: scrub_period_seconds must be > 0");
  }
  const double tsc_hours = core::seconds_to_hours(spec.scrub_period_seconds);
  const markov::UniformizationSolver solver;
  if (spec.arrangement == analysis::Arrangement::kSimplex) {
    return models::simplex_periodic_scrub_ber(spec.to_simplex_params(),
                                              tsc_hours, times_hours, solver);
  }
  return models::duplex_periodic_scrub_ber(spec.to_duplex_params(), tsc_hours,
                                           times_hours, solver);
}

}  // namespace rsmem
