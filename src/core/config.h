// Top-level configuration: one struct describes a memory system in the
// paper's own units, and converts to whatever each layer needs (Markov model
// parameters in per-hour rates, functional-simulation configs, codec specs).
#ifndef RSMEM_CORE_CONFIG_H
#define RSMEM_CORE_CONFIG_H

#include "analysis/experiment.h"
#include "core/status.h"
#include "memory/duplex_system.h"
#include "memory/simplex_system.h"
#include "models/duplex_model.h"
#include "models/simplex_model.h"
#include "rs/reed_solomon.h"

namespace rsmem::core {

struct MemorySystemSpec {
  analysis::Arrangement arrangement = analysis::Arrangement::kSimplex;
  rs::CodeParams code{18, 16, 8, 1};

  // Rates in the paper's units.
  double seu_rate_per_bit_day = 0.0;          // lambda
  double erasure_rate_per_symbol_day = 0.0;   // lambda_e
  double scrub_period_seconds = 0.0;          // Tsc; 0 = no scrubbing

  // Markov-model knobs (see models/duplex_model.h).
  models::RateConvention convention = models::RateConvention::kPaper;

  // Structured validation: an actionable InvalidConfig Status naming the
  // first violated constraint with the offending values, OK otherwise.
  Status validate_status() const;
  // Everything validate_status() checks, plus scrub_period_seconds > 0 --
  // required by analyses that model an actual scrubbing process (periodic-
  // scrub curves, scrubbed campaigns).
  Status validate_scrubbed_status() const;
  // Legacy throwing wrapper around validate_status(); throws
  // std::invalid_argument with the status message.
  void validate() const;

  // Conversions to the layer-specific parameter structs.
  models::SimplexParams to_simplex_params() const;
  models::DuplexParams to_duplex_params() const;
  memory::SimplexSystemConfig to_simplex_system_config(
      std::uint64_t seed,
      memory::ScrubPolicy policy = memory::ScrubPolicy::kExponential) const;
  memory::DuplexSystemConfig to_duplex_system_config(
      std::uint64_t seed,
      memory::ScrubPolicy policy = memory::ScrubPolicy::kExponential) const;
};

}  // namespace rsmem::core

#endif  // RSMEM_CORE_CONFIG_H
