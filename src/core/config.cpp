#include "core/config.h"

#include <stdexcept>

#include "core/units.h"

namespace rsmem::core {

void MemorySystemSpec::validate() const {
  if (code.k == 0 || code.k >= code.n) {
    throw std::invalid_argument("MemorySystemSpec: require 0 < k < n");
  }
  if (code.m < 2 || code.m > 16 || code.n > (1u << code.m) - 1u) {
    throw std::invalid_argument("MemorySystemSpec: require n <= 2^m - 1");
  }
  if (seu_rate_per_bit_day < 0.0 || erasure_rate_per_symbol_day < 0.0 ||
      scrub_period_seconds < 0.0) {
    throw std::invalid_argument("MemorySystemSpec: negative rate/period");
  }
}

models::SimplexParams MemorySystemSpec::to_simplex_params() const {
  validate();
  models::SimplexParams p;
  p.n = code.n;
  p.k = code.k;
  p.m = code.m;
  p.seu_rate_per_bit_hour = per_day_to_per_hour(seu_rate_per_bit_day);
  p.erasure_rate_per_symbol_hour =
      per_day_to_per_hour(erasure_rate_per_symbol_day);
  p.scrub_rate_per_hour = scrub_rate_per_hour(scrub_period_seconds);
  return p;
}

models::DuplexParams MemorySystemSpec::to_duplex_params() const {
  validate();
  models::DuplexParams p;
  p.n = code.n;
  p.k = code.k;
  p.m = code.m;
  p.seu_rate_per_bit_hour = per_day_to_per_hour(seu_rate_per_bit_day);
  p.erasure_rate_per_symbol_hour =
      per_day_to_per_hour(erasure_rate_per_symbol_day);
  p.scrub_rate_per_hour = scrub_rate_per_hour(scrub_period_seconds);
  p.convention = convention;
  return p;
}

memory::SimplexSystemConfig MemorySystemSpec::to_simplex_system_config(
    std::uint64_t seed, memory::ScrubPolicy policy) const {
  validate();
  memory::SimplexSystemConfig cfg;
  cfg.code = code;
  cfg.rates.seu_rate_per_bit_hour = per_day_to_per_hour(seu_rate_per_bit_day);
  cfg.rates.perm_rate_per_symbol_hour =
      per_day_to_per_hour(erasure_rate_per_symbol_day);
  cfg.scrub_policy = scrub_period_seconds > 0.0 ? policy
                                                : memory::ScrubPolicy::kNone;
  cfg.scrub_period_hours = seconds_to_hours(scrub_period_seconds);
  cfg.seed = seed;
  return cfg;
}

memory::DuplexSystemConfig MemorySystemSpec::to_duplex_system_config(
    std::uint64_t seed, memory::ScrubPolicy policy) const {
  validate();
  memory::DuplexSystemConfig cfg;
  cfg.code = code;
  cfg.rates.seu_rate_per_bit_hour = per_day_to_per_hour(seu_rate_per_bit_day);
  cfg.rates.perm_rate_per_symbol_hour =
      per_day_to_per_hour(erasure_rate_per_symbol_day);
  cfg.scrub_policy = scrub_period_seconds > 0.0 ? policy
                                                : memory::ScrubPolicy::kNone;
  cfg.scrub_period_hours = seconds_to_hours(scrub_period_seconds);
  cfg.seed = seed;
  return cfg;
}

}  // namespace rsmem::core
