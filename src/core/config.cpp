#include "core/config.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/units.h"

namespace rsmem::core {

namespace {

std::string geometry(const rs::CodeParams& code) {
  return "n=" + std::to_string(code.n) + ", k=" + std::to_string(code.k) +
         ", m=" + std::to_string(code.m);
}

}  // namespace

Status MemorySystemSpec::validate_status() const {
  if (code.k == 0) {
    return Status::invalid_config(
        "RS dataword length k must be positive (got " + geometry(code) +
        "); the code stores k data symbols per word");
  }
  if (code.k >= code.n) {
    return Status::invalid_config(
        "RS geometry requires k < n (got " + geometry(code) +
        "); an RS(n,k) code needs n-k > 0 parity symbols to correct anything");
  }
  if (code.m < 2 || code.m > 16) {
    return Status::invalid_config(
        "symbol width m must be in [2, 16] bits (got " + geometry(code) + ")");
  }
  if (code.n > (1u << code.m) - 1u) {
    return Status::invalid_config(
        "codeword length n exceeds the GF(2^m) bound: got " + geometry(code) +
        " but n must be <= 2^m - 1 = " +
        std::to_string((1u << code.m) - 1u) +
        "; raise m or shorten the code");
  }
  if (std::isnan(seu_rate_per_bit_day) || seu_rate_per_bit_day < 0.0 ||
      std::isinf(seu_rate_per_bit_day)) {
    return Status::invalid_config(
        "SEU rate must be finite and >= 0 errors/bit/day (got " +
        std::to_string(seu_rate_per_bit_day) + ")");
  }
  if (std::isnan(erasure_rate_per_symbol_day) ||
      erasure_rate_per_symbol_day < 0.0 ||
      std::isinf(erasure_rate_per_symbol_day)) {
    return Status::invalid_config(
        "permanent-fault rate must be finite and >= 0 erasures/symbol/day "
        "(got " +
        std::to_string(erasure_rate_per_symbol_day) + ")");
  }
  if (std::isnan(scrub_period_seconds) || scrub_period_seconds < 0.0 ||
      std::isinf(scrub_period_seconds)) {
    return Status::invalid_config(
        "scrub period Tsc must be finite and >= 0 seconds (got " +
        std::to_string(scrub_period_seconds) +
        "); use 0 to disable scrubbing");
  }
  return Status::ok();
}

Status MemorySystemSpec::validate_scrubbed_status() const {
  Status status = validate_status();
  if (!status.is_ok()) return status;
  if (scrub_period_seconds <= 0.0) {
    return Status::invalid_config(
        "this analysis models an actual scrubbing process, so Tsc must be "
        "> 0 seconds (got " +
        std::to_string(scrub_period_seconds) +
        "); set --tsc / scrub_period_seconds to the scrub interval");
  }
  return Status::ok();
}

void MemorySystemSpec::validate() const {
  Status status = validate_status();
  if (!status.is_ok()) {
    throw std::invalid_argument("MemorySystemSpec: " + status.message());
  }
}

models::SimplexParams MemorySystemSpec::to_simplex_params() const {
  validate();
  models::SimplexParams p;
  p.n = code.n;
  p.k = code.k;
  p.m = code.m;
  p.seu_rate_per_bit_hour = per_day_to_per_hour(seu_rate_per_bit_day);
  p.erasure_rate_per_symbol_hour =
      per_day_to_per_hour(erasure_rate_per_symbol_day);
  p.scrub_rate_per_hour = scrub_rate_per_hour(scrub_period_seconds);
  return p;
}

models::DuplexParams MemorySystemSpec::to_duplex_params() const {
  validate();
  models::DuplexParams p;
  p.n = code.n;
  p.k = code.k;
  p.m = code.m;
  p.seu_rate_per_bit_hour = per_day_to_per_hour(seu_rate_per_bit_day);
  p.erasure_rate_per_symbol_hour =
      per_day_to_per_hour(erasure_rate_per_symbol_day);
  p.scrub_rate_per_hour = scrub_rate_per_hour(scrub_period_seconds);
  p.convention = convention;
  return p;
}

memory::SimplexSystemConfig MemorySystemSpec::to_simplex_system_config(
    std::uint64_t seed, memory::ScrubPolicy policy) const {
  validate();
  memory::SimplexSystemConfig cfg;
  cfg.code = code;
  cfg.rates.seu_rate_per_bit_hour = per_day_to_per_hour(seu_rate_per_bit_day);
  cfg.rates.perm_rate_per_symbol_hour =
      per_day_to_per_hour(erasure_rate_per_symbol_day);
  cfg.scrub_policy = scrub_period_seconds > 0.0 ? policy
                                                : memory::ScrubPolicy::kNone;
  cfg.scrub_period_hours = seconds_to_hours(scrub_period_seconds);
  cfg.seed = seed;
  return cfg;
}

memory::DuplexSystemConfig MemorySystemSpec::to_duplex_system_config(
    std::uint64_t seed, memory::ScrubPolicy policy) const {
  validate();
  memory::DuplexSystemConfig cfg;
  cfg.code = code;
  cfg.rates.seu_rate_per_bit_hour = per_day_to_per_hour(seu_rate_per_bit_day);
  cfg.rates.perm_rate_per_symbol_hour =
      per_day_to_per_hour(erasure_rate_per_symbol_day);
  cfg.scrub_policy = scrub_period_seconds > 0.0 ? policy
                                                : memory::ScrubPolicy::kNone;
  cfg.scrub_period_hours = seconds_to_hours(scrub_period_seconds);
  cfg.seed = seed;
  return cfg;
}

}  // namespace rsmem::core
