#include "core/status.h"

namespace rsmem::core {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidConfig:
      return "InvalidConfig";
    case StatusCode::kDecodeFailure:
      return "DecodeFailure";
    case StatusCode::kMiscorrection:
      return "Miscorrection";
    case StatusCode::kArbiterNoOutput:
      return "ArbiterNoOutput";
    case StatusCode::kSolverDivergence:
      return "SolverDivergence";
    case StatusCode::kDegradedMode:
      return "DegradedMode";
    case StatusCode::kRetryExhausted:
      return "RetryExhausted";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kBrownout:
      return "Brownout";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status& Status::with_context(std::string_view context) {
  if (!is_ok()) {
    std::string prefixed;
    prefixed.reserve(context.size() + 2 + message_.size());
    prefixed.append(context);
    prefixed.append(": ");
    prefixed.append(message_);
    message_ = std::move(prefixed);
  }
  return *this;
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = rsmem::core::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rsmem::core
