// Time and rate unit conventions.
//
// The paper quotes SEU rates in errors/bit/DAY, scrubbing periods in
// SECONDS, storage times in HOURS (Figs. 5-7) and MONTHS (Figs. 8-10).
// Internally every rate is "per hour" and every duration is "hours"; these
// helpers are the only place conversions happen.
#ifndef RSMEM_CORE_UNITS_H
#define RSMEM_CORE_UNITS_H

namespace rsmem::core {

inline constexpr double kHoursPerDay = 24.0;
inline constexpr double kSecondsPerHour = 3600.0;
// Average civil month (365/12 days), matching the paper's 24-month span.
inline constexpr double kHoursPerMonth = 365.0 / 12.0 * kHoursPerDay;

constexpr double per_day_to_per_hour(double rate_per_day) {
  return rate_per_day / kHoursPerDay;
}
constexpr double per_hour_to_per_day(double rate_per_hour) {
  return rate_per_hour * kHoursPerDay;
}
constexpr double seconds_to_hours(double seconds) {
  return seconds / kSecondsPerHour;
}
constexpr double hours_to_seconds(double hours) {
  return hours * kSecondsPerHour;
}
constexpr double months_to_hours(double months) {
  return months * kHoursPerMonth;
}
constexpr double hours_to_months(double hours) {
  return hours / kHoursPerMonth;
}
constexpr double days_to_hours(double days) { return days * kHoursPerDay; }

// Scrubbing executed every `period_seconds` corresponds to a Markov rate of
// 1/Tsc; returns that rate in per-hour units. A period of 0 means "no
// scrubbing" and maps to rate 0.
constexpr double scrub_rate_per_hour(double period_seconds) {
  return period_seconds > 0.0 ? kSecondsPerHour / period_seconds : 0.0;
}

}  // namespace rsmem::core

#endif  // RSMEM_CORE_UNITS_H
