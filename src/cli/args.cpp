#include "cli/args.h"

#include <cstdlib>

namespace rsmem::cli {

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  if (argc < 2) {
    throw ArgError("missing command; try 'rsmem_cli help'");
  }
  args.command_ = argv[1];
  if (!args.command_.empty() && args.command_[0] == '-') {
    throw ArgError("expected a command before flags, got '" +
                   args.command_ + "'");
  }
  int i = 2;
  while (i < argc) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw ArgError("expected a --flag, got '" + token + "'");
    }
    const std::string key = token.substr(2);
    const bool has_value =
        i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
    if (has_value) {
      if (args.values_.count(key) != 0 || args.switches_.count(key) != 0) {
        throw ArgError("duplicate flag --" + key);
      }
      args.values_.emplace(key, argv[i + 1]);
      i += 2;
    } else {
      if (args.values_.count(key) != 0 || args.switches_.count(key) != 0) {
        throw ArgError("duplicate flag --" + key);
      }
      args.switches_.insert(key);
      i += 1;
    }
  }
  return args;
}

bool Args::has(const std::string& key) const {
  return values_.count(key) != 0 || switches_.count(key) != 0;
}

std::string Args::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw ArgError("missing required flag --" + key);
  }
  return it->second;
}

std::string Args::get_string_or(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& key) const {
  const std::string raw = get_string(key);
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    throw ArgError("flag --" + key + " expects a number, got '" + raw + "'");
  }
  return value;
}

double Args::get_double_or(const std::string& key, double fallback) const {
  return values_.count(key) != 0 ? get_double(key) : fallback;
}

long Args::get_long(const std::string& key) const {
  const std::string raw = get_string(key);
  char* end = nullptr;
  const long value = std::strtol(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') {
    throw ArgError("flag --" + key + " expects an integer, got '" + raw +
                   "'");
  }
  return value;
}

long Args::get_long_or(const std::string& key, long fallback) const {
  return values_.count(key) != 0 ? get_long(key) : fallback;
}

bool Args::get_switch(const std::string& key) const {
  if (values_.count(key) != 0) {
    throw ArgError("flag --" + key + " does not take a value");
  }
  return switches_.count(key) != 0;
}

std::vector<double> Args::get_double_list(const std::string& key) const {
  const std::string raw = get_string(key);
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const std::size_t comma = raw.find(',', start);
    const std::string item =
        raw.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    char* end = nullptr;
    const double value = std::strtod(item.c_str(), &end);
    if (item.empty() || end == item.c_str() || *end != '\0') {
      throw ArgError("flag --" + key + " expects numbers, got '" + item +
                     "'");
    }
    out.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) {
    throw ArgError("flag --" + key + " expects a non-empty list");
  }
  return out;
}

void Args::require_known(const std::set<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    (void)value;
    if (known.count(key) == 0) {
      throw ArgError("unknown flag --" + key);
    }
  }
  for (const auto& key : switches_) {
    if (known.count(key) == 0) {
      throw ArgError("unknown flag --" + key);
    }
  }
}

}  // namespace rsmem::cli
