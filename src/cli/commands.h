// rsmem_cli command layer, separated from main() so tests can drive it.
//
// Commands:
//   help                                  usage text
//   analyze   BER(t) curve via the Markov chain (optionally the periodic-
//             scrub policy), text table or CSV
//   mttf      mean time to data loss via absorption analysis
//   simulate  Monte-Carlo on the functional system
//   cost      codec latency/area: paper fit + structural pipeline model
//   sweep     BER at a fixed horizon across a swept parameter
// Common flags: --arrangement simplex|duplex, --n, --k, --m,
//   --seu <errors/bit/day>, --perm <erasures/symbol/day>, --tsc <seconds>.
#ifndef RSMEM_CLI_COMMANDS_H
#define RSMEM_CLI_COMMANDS_H

#include <ostream>

namespace rsmem::cli {

// Returns a process exit code; never throws (errors are printed to `err`).
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace rsmem::cli

#endif  // RSMEM_CLI_COMMANDS_H
