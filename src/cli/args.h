// Minimal command-line argument parser for the rsmem_cli tool.
//
// Grammar:  rsmem_cli <command> [--flag value]... [--switch]...
// Typed getters validate and convert; unknown flags and missing required
// values raise ArgError with a user-facing message. Kept dependency-free
// and fully unit-tested (tests/test_cli.cpp).
#ifndef RSMEM_CLI_ARGS_H
#define RSMEM_CLI_ARGS_H

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace rsmem::cli {

class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Args {
 public:
  // Parses argv[1..): the first token is the command, the rest are
  // --key value pairs or bare --switches (a --key followed by another
  // --token or end of input is a switch).
  static Args parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  bool has(const std::string& key) const;

  // Typed getters; the *_or forms supply defaults, the plain forms throw
  // ArgError when the flag is absent.
  std::string get_string(const std::string& key) const;
  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  double get_double(const std::string& key) const;
  double get_double_or(const std::string& key, double fallback) const;
  long get_long(const std::string& key) const;
  long get_long_or(const std::string& key, long fallback) const;
  bool get_switch(const std::string& key) const;  // present and value-less

  // Comma-separated list of doubles, e.g. --rates 1e-5,3e-6.
  std::vector<double> get_double_list(const std::string& key) const;

  // Throws ArgError naming any flag not in `known` (catches typos).
  void require_known(const std::set<std::string>& known) const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;   // --key value
  std::set<std::string> switches_;              // bare --key
};

}  // namespace rsmem::cli

#endif  // RSMEM_CLI_ARGS_H
