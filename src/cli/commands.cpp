#include "cli/commands.h"

#include <csignal>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <cmath>

#include "analysis/code_search.h"
#include "analysis/fault_campaign.h"
#include "analysis/sensitivity.h"
#include "analysis/table.h"
#include "cli/args.h"
#include "core/api.h"
#include "core/status.h"
#include "core/units.h"
#include "gf/simd_mul.h"
#include "hw/codec_hw_model.h"
#include "memory/access_latency.h"
#include "models/ber.h"
#include "models/chipkill.h"
#include "models/sparing_model.h"
#include "service/chaos_campaign.h"
#include "service/client.h"
#include "service/loadgen.h"
#include "service/server.h"
#include "sim/thread_pool.h"

namespace rsmem::cli {

namespace {

const std::set<std::string> kSpecFlags = {"arrangement", "n", "k", "m",
                                          "seu", "perm", "tsc"};

core::MemorySystemSpec spec_from(const Args& args) {
  core::MemorySystemSpec spec;
  const std::string arrangement =
      args.get_string_or("arrangement", "simplex");
  if (arrangement == "simplex") {
    spec.arrangement = analysis::Arrangement::kSimplex;
  } else if (arrangement == "duplex") {
    spec.arrangement = analysis::Arrangement::kDuplex;
  } else {
    throw ArgError("--arrangement must be 'simplex' or 'duplex'");
  }
  spec.code.n = static_cast<unsigned>(args.get_long_or("n", 18));
  spec.code.k = static_cast<unsigned>(args.get_long_or("k", 16));
  spec.code.m = static_cast<unsigned>(args.get_long_or("m", 8));
  spec.seu_rate_per_bit_day = args.get_double_or("seu", 0.0);
  spec.erasure_rate_per_symbol_day = args.get_double_or("perm", 0.0);
  spec.scrub_period_seconds = args.get_double_or("tsc", 0.0);
  spec.validate();
  return spec;
}

std::set<std::string> with_spec(std::initializer_list<const char*> extra) {
  std::set<std::string> flags = kSpecFlags;
  for (const char* f : extra) flags.insert(f);
  return flags;
}

int cmd_help(std::ostream& out) {
  out << "rsmem_cli -- RS-coded fault-tolerant memory analysis\n"
         "\n"
         "usage: rsmem_cli <command> [--flag value]...\n"
         "\n"
         "commands:\n"
         "  analyze   BER(t) via the Markov chain\n"
         "            [spec] --hours H --points P [--periodic] [--csv]\n"
         "  mttf      mean time to data loss  [spec]\n"
         "  simulate  functional Monte-Carlo  [spec] --hours H --trials N\n"
         "            [--seed S] [--policy periodic|exponential]\n"
         "            [--threads T (0 = all cores)] [--chunk trials/shard]\n"
         "            (same seed => same result for every thread count)\n"
         "  cost      codec latency/area (fit + structural)  [spec]\n"
         "  sweep     BER at --hours H across --param seu|perm|tsc\n"
         "            with --values a,b,c  [spec]\n"
         "  sensitivity  elasticities d ln BER / d ln knob  [spec] --hours H\n"
         "  sparing   bank reliability vs spares  --modules M --spares-max S\n"
         "            --module-rate r [--coverage c] [--hot] --hours H\n"
         "  pareto    code/arrangement design-space search  [spec] --hours H\n"
         "  latency   M/D/1 codec queue  --read-rate r --cycles c\n"
         "            [--clock hz] [--scrub-period s --scrub-words w\n"
         "            [--spread]] [--horizon s]\n"
         "  chipkill  correlated chip faults vs i.i.d.-word model\n"
         "            [spec] --chip-rate r --words W --hours H\n"
         "  inject    adversarial fault-injection campaign\n"
         "            --preset paper-duplex [--n --k --m] [--seed S]\n"
         "            [--threads T] (deterministic per seed; exit 0 iff\n"
         "            every scenario matches its expected verdict)\n"
         "  serve     long-running analysis daemon (rsmem-serve)\n"
         "            --socket PATH | --listen HOST:PORT [--shards S]\n"
         "            [--threads T] [--max-queue N] [--cache N] [--batch B]\n"
         "            [--snapshot FILE] [--idle-timeout-ms MS]\n"
         "            [--max-frames-per-second R] [--max-frame-bytes N]\n"
         "            (per-shard queue/cache; requests route by cache key;\n"
         "            --snapshot persists the cache across restarts)\n"
         "  query     one request against a running server\n"
         "            --at unix:PATH|HOST:PORT --kind ber|mttf|sweep|ping|\n"
         "            stats|shutdown [spec] [--hours H --points P]\n"
         "            [--periodic] [--param p --values a,b] [--deadline MS]\n"
         "  loadgen   N concurrent clients; p50/p99 + cache hit rate\n"
         "            [--self-host | --at ...] [--clients N --requests R\n"
         "            --distinct K] [--kind sweep|ber|mttf] [spec]\n"
         "            [--shards S] [--open-loop [--rate RPS]]\n"
         "            [--shard-sweep 1,2,4] [--json BENCH_serve.json]\n"
         "            (open loop pipelines scheduled arrivals; kOverloaded\n"
         "            rejections count separately from errors)\n"
         "  chaos     transport fault-injection campaign against live\n"
         "            servers  --preset serve-churn [--seed S]\n"
         "            [--requests N --distinct K] [--timeout-ms MS]\n"
         "            (deterministic per seed; exit 0 iff every request\n"
         "            ends in exactly one typed outcome and post-chaos\n"
         "            responses stay byte-identical to direct calls)\n"
         "  version   library version, build type, and the GF(2^m) kernel\n"
         "            backend runtime dispatch selected on this host\n"
         "  help      this text\n"
         "\n"
         "spec flags: --arrangement simplex|duplex  --n 18 --k 16 --m 8\n"
         "            --seu <errors/bit/day>  --perm <erasures/symbol/day>\n"
         "            --tsc <seconds>\n";
  return 0;
}

int cmd_version(std::ostream& out) {
  out << "rsmem_cli "
#if defined(RSMEM_VERSION)
      << RSMEM_VERSION
#else
      << "dev"
#endif
      << "\n"
      << "build: "
#if defined(NDEBUG)
      << "release"
#else
      << "debug"
#endif
#if defined(RSMEM_DISABLE_SIMD)
      << " (RSMEM_DISABLE_SIMD)"
#endif
      << "\n"
      // The process-wide kernel selection (one backend per process; see
      // gf/simd_mul.h). `scalar` means the codec runs its original loops.
      << "gf backend: " << gf::simd::active().name << "\n";
  // Every backend linked into this binary, and the subset this host's CPU
  // can actually run (what RSMEM_GF_BACKEND may select). Parsed by
  // tools/run_sanitizers.sh to enumerate its per-backend codec loop.
  const auto kernels_of = [](gf::simd::Backend b) -> const gf::simd::Kernels* {
    switch (b) {
      case gf::simd::Backend::kScalar: return gf::simd::scalar_kernels();
      case gf::simd::Backend::kSwar: return gf::simd::swar_kernels();
      case gf::simd::Backend::kSsse3: return gf::simd::ssse3_kernels();
      case gf::simd::Backend::kAvx2: return gf::simd::avx2_kernels();
      case gf::simd::Backend::kGfni: return gf::simd::gfni_kernels();
    }
    return nullptr;
  };
  out << "gf backends compiled:";
  for (const gf::simd::Backend b : gf::simd::kAllBackends) {
    if (kernels_of(b) != nullptr) out << " " << gf::simd::to_string(b);
  }
  out << "\n"
      << "gf backends supported:";
  for (const gf::simd::Backend b : gf::simd::kAllBackends) {
    if (gf::simd::backend_supported(b)) out << " " << gf::simd::to_string(b);
  }
  out << "\n"
      // Transport fault-injection shim (service/chaos.h): compiled into
      // every build, off unless a ChaosEngine is wired in.
      << "chaos shim: available (deterministic transport fault injection; "
         "see 'rsmem_cli chaos')\n";
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out) {
  args.require_known(with_spec({"hours", "points", "periodic", "csv"}));
  const core::MemorySystemSpec spec = spec_from(args);
  const double hours = args.get_double_or("hours", 48.0);
  const long points = args.get_long_or("points", 13);
  if (hours <= 0.0 || points < 2) {
    throw ArgError("--hours must be > 0 and --points >= 2");
  }
  const std::vector<double> times =
      models::time_grid_hours(hours, static_cast<std::size_t>(points));
  const models::BerCurve curve =
      args.get_switch("periodic") ? analyze_ber_periodic_scrub(spec, times)
                                  : analyze_ber(spec, times);
  analysis::Table table{{"hours", "P_fail", "BER"}};
  for (std::size_t i = 0; i < curve.times_hours.size(); ++i) {
    table.add_row({analysis::format_fixed(curve.times_hours[i], 2),
                   analysis::format_sci(curve.fail_probability[i]),
                   analysis::format_sci(curve.ber[i])});
  }
  out << (args.get_switch("csv") ? table.to_csv() : table.to_text());
  return 0;
}

int cmd_mttf(const Args& args, std::ostream& out) {
  args.require_known(kSpecFlags);
  const core::MemorySystemSpec spec = spec_from(args);
  const double hours = mttf_hours(spec);
  out << "MTTF: " << analysis::format_sci(hours) << " hours ("
      << analysis::format_fixed(hours / core::kHoursPerDay, 2) << " days, "
      << analysis::format_fixed(core::hours_to_months(hours), 2)
      << " months)\n";
  return 0;
}

int cmd_simulate(const Args& args, std::ostream& out) {
  args.require_known(
      with_spec({"hours", "trials", "seed", "policy", "threads", "chunk"}));
  const core::MemorySystemSpec spec = spec_from(args);
  analysis::MonteCarloConfig mc;
  mc.t_end_hours = args.get_double_or("hours", 48.0);
  mc.trials = static_cast<std::size_t>(args.get_long_or("trials", 1000));
  mc.seed = static_cast<std::uint64_t>(args.get_long_or("seed", 42));
  const long threads = args.get_long_or("threads", 0);
  const long chunk = args.get_long_or("chunk", 1024);
  if (threads < 0 || chunk < 1) {
    throw ArgError("--threads must be >= 0 and --chunk >= 1");
  }
  mc.threads = static_cast<unsigned>(threads);
  mc.chunk_trials = static_cast<std::size_t>(chunk);
  const std::string policy = args.get_string_or("policy", "exponential");
  memory::ScrubPolicy scrub_policy;
  if (policy == "periodic") {
    scrub_policy = memory::ScrubPolicy::kPeriodic;
  } else if (policy == "exponential") {
    scrub_policy = memory::ScrubPolicy::kExponential;
  } else {
    throw ArgError("--policy must be 'periodic' or 'exponential'");
  }
  analysis::CampaignReport report;
  const analysis::MonteCarloResult result =
      simulate(spec, mc, scrub_policy, &report);
  out << "trials:            " << result.failure.trials << "\n"
      << "failures:          " << result.failure.failures << " ("
      << result.no_output_failures << " no-output, "
      << result.wrong_data_failures << " wrong-data)\n"
      << "P_fail estimate:   "
      << analysis::format_sci(result.failure.p_hat()) << "  95% CI ["
      << analysis::format_sci(result.failure.wilson_low()) << ", "
      << analysis::format_sci(result.failure.wilson_high()) << "]\n"
      << "Markov prediction: "
      << analysis::format_sci(fail_probability(spec, mc.t_end_hours)) << "\n"
      << "campaign:          " << report.threads_used << " thread(s), "
      << report.chunks << " shard(s), "
      << analysis::format_sci(report.trials_per_second) << " trials/s\n";
  return 0;
}

int cmd_cost(const Args& args, std::ostream& out) {
  args.require_known(kSpecFlags);
  const core::MemorySystemSpec spec = spec_from(args);
  const reliability::ArrangementCost fit = codec_cost(spec);
  const hw::HwEstimate structural =
      hw::decoder_estimate(spec.code.n, spec.code.k, spec.code.m);
  const unsigned decoders =
      spec.arrangement == analysis::Arrangement::kDuplex ? 2 : 1;
  analysis::Table table{{"metric", "paper fit", "structural model"}};
  table.add_row({"decode latency [cycles]",
                 analysis::format_fixed(fit.decode_cycles, 0),
                 analysis::format_fixed(structural.latency_cycles, 0)});
  table.add_row({"codec area [gates]",
                 analysis::format_fixed(fit.area_gates, 0),
                 analysis::format_fixed(
                     structural.gate_count * decoders, 0)});
  table.add_row({"decoders", std::to_string(decoders),
                 std::to_string(decoders)});
  out << table.to_text();
  return 0;
}

int cmd_sweep(const Args& args, std::ostream& out) {
  args.require_known(with_spec({"param", "values", "hours", "csv"}));
  const std::string param = args.get_string("param");
  const std::vector<double> values = args.get_double_list("values");
  const double hours = args.get_double_or("hours", 48.0);
  analysis::Table table{{param, "P_fail", "BER"}};
  for (const double value : values) {
    core::MemorySystemSpec spec = spec_from(args);
    if (param == "seu") {
      spec.seu_rate_per_bit_day = value;
    } else if (param == "perm") {
      spec.erasure_rate_per_symbol_day = value;
    } else if (param == "tsc") {
      spec.scrub_period_seconds = value;
    } else {
      throw ArgError("--param must be one of seu|perm|tsc");
    }
    const double times[] = {hours};
    const models::BerCurve curve = analyze_ber(spec, times);
    table.add_row({analysis::format_sci(value),
                   analysis::format_sci(curve.fail_probability[0]),
                   analysis::format_sci(curve.ber[0])});
  }
  out << (args.get_switch("csv") ? table.to_csv() : table.to_text());
  return 0;
}

std::string fmt_or_dash(double v) {
  return std::isnan(v) ? std::string("-") : analysis::format_fixed(v, 3);
}

int cmd_sensitivity(const Args& args, std::ostream& out) {
  args.require_known(with_spec({"hours"}));
  const core::MemorySystemSpec spec = spec_from(args);
  const double hours = args.get_double_or("hours", 48.0);
  const analysis::SensitivityReport r =
      analysis::ber_sensitivity(spec, hours);
  analysis::Table table{{"metric", "value"}};
  table.add_row({"BER", analysis::format_sci(r.ber)});
  table.add_row({"E[seu rate]", fmt_or_dash(r.seu_elasticity)});
  table.add_row({"E[perm rate]", fmt_or_dash(r.erasure_elasticity)});
  table.add_row({"E[scrub period]", fmt_or_dash(r.scrub_period_elasticity)});
  out << table.to_text();
  return 0;
}

int cmd_sparing(const Args& args, std::ostream& out) {
  args.require_known({"modules", "spares-max", "module-rate", "coverage",
                      "hot", "hours"});
  models::SparingParams p;
  p.active_modules = static_cast<unsigned>(args.get_long_or("modules", 8));
  p.module_fail_rate_per_hour = args.get_double("module-rate");
  p.coverage = args.get_double_or("coverage", 1.0);
  p.spare_ageing_fraction = args.get_switch("hot") ? 1.0 : 0.0;
  const double hours = args.get_double_or("hours", 43800.0);
  const long spares_max = args.get_long_or("spares-max", 4);
  if (spares_max < 0) throw ArgError("--spares-max must be >= 0");
  analysis::Table table{{"spares", "reliability", "MTTF [h]"}};
  for (long s = 0; s <= spares_max; ++s) {
    p.spares = static_cast<unsigned>(s);
    const models::SparingModel bank{p};
    table.add_row({std::to_string(s),
                   analysis::format_fixed(bank.reliability_at(hours), 6),
                   analysis::format_sci(bank.mttf_hours())});
  }
  out << table.to_text();
  return 0;
}

int cmd_pareto(const Args& args, std::ostream& out) {
  args.require_known(with_spec({"hours"}));
  analysis::CodeSearchSpec search;
  search.base = spec_from(args);
  search.t_hours = args.get_double_or("hours", 48.0);
  const auto evals = analysis::evaluate_candidates(
      search, analysis::default_candidates(search.base.code.k));
  analysis::Table table{{"arrangement", "code", "BER", "overhead",
                         "Td [cyc]", "area", "pareto"}};
  for (const auto& e : evals) {
    char code[16];
    std::snprintf(code, sizeof code, "(%u,%u)", e.candidate.n,
                  search.base.code.k);
    table.add_row(
        {analysis::to_string(e.candidate.arrangement), code,
         analysis::format_sci(e.ber),
         analysis::format_fixed(e.storage_overhead, 2),
         analysis::format_fixed(e.decode_cycles, 0),
         analysis::format_fixed(e.area_gates, 0),
         e.pareto_efficient ? "*" : ""});
  }
  out << table.to_text();
  return 0;
}

int cmd_latency(const Args& args, std::ostream& out) {
  args.require_known({"read-rate", "cycles", "clock", "scrub-period",
                      "scrub-words", "spread", "horizon"});
  memory::AccessLatencyConfig cfg;
  const double clock_hz = args.get_double_or("clock", 50e6);
  cfg.read_rate_per_second = args.get_double("read-rate");
  cfg.decode_seconds = args.get_double("cycles") / clock_hz;
  cfg.scrub_period_seconds = args.get_double_or("scrub-period", 0.0);
  cfg.words_per_scrub =
      static_cast<std::uint64_t>(args.get_long_or("scrub-words", 0));
  cfg.spread_scrub = args.get_switch("spread");
  cfg.horizon_seconds = args.get_double_or("horizon", 2.0);
  const memory::AccessLatencyReport r =
      memory::simulate_access_latency(cfg);
  analysis::Table table{{"metric", "value"}};
  table.add_row({"reads served", std::to_string(r.reads_served)});
  table.add_row({"utilization", analysis::format_fixed(r.utilization, 4)});
  table.add_row({"mean wait [us]",
                 analysis::format_fixed(r.mean_wait_seconds * 1e6, 3)});
  table.add_row({"mean latency [us]",
                 analysis::format_fixed(r.mean_latency_seconds * 1e6, 3)});
  table.add_row({"p99 latency [us]",
                 analysis::format_fixed(r.p99_latency_seconds * 1e6, 3)});
  table.add_row({"max latency [us]",
                 analysis::format_fixed(r.max_latency_seconds * 1e6, 3)});
  out << table.to_text();
  return 0;
}

int cmd_chipkill(const Args& args, std::ostream& out) {
  args.require_known(with_spec({"chip-rate", "words", "hours"}));
  const core::MemorySystemSpec spec = spec_from(args);
  const double chip_rate = args.get_double("chip-rate");
  const std::size_t words =
      static_cast<std::size_t>(args.get_long_or("words", 1 << 20));
  const double hours = args.get_double_or("hours", 48.0);
  const double correlated = 1.0 - models::chipkill_array_survival(
                                      spec.code.n, spec.code.k, chip_rate,
                                      hours);
  const double independent =
      1.0 - models::independent_word_array_survival(
                spec.code.n, spec.code.k, chip_rate, hours, words);
  analysis::Table table{{"model", "P(array loss)"}};
  table.add_row({"chip-kill (correlated)", analysis::format_sci(correlated)});
  table.add_row({"independent words", analysis::format_sci(independent)});
  out << table.to_text();
  return 0;
}

int cmd_inject(const Args& args, std::ostream& out) {
  args.require_known({"preset", "n", "k", "m", "seed", "threads", "tsc"});
  const std::string preset = args.get_string_or("preset", "paper-duplex");
  if (preset != "paper-duplex") {
    throw ArgError("--preset must be 'paper-duplex'");
  }
  analysis::FaultCampaignConfig cfg;
  cfg.code.n = static_cast<unsigned>(args.get_long_or("n", 18));
  cfg.code.k = static_cast<unsigned>(args.get_long_or("k", 16));
  cfg.code.m = static_cast<unsigned>(args.get_long_or("m", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_long_or("seed", 2005));
  const long threads = args.get_long_or("threads", 1);
  if (threads < 0) throw ArgError("--threads must be >= 0");
  cfg.threads = static_cast<unsigned>(threads);
  cfg.scrub_period_hours = args.get_double_or("tsc", 3600.0) / 3600.0;

  // Route geometry errors through the structured taxonomy so a bad --n/--k
  // reports as InvalidConfig with the actionable message, not a raw throw.
  core::MemorySystemSpec spec;
  spec.code = cfg.code;
  core::Status valid = spec.validate_status();
  if (!valid.is_ok()) throw core::StatusError(valid.with_context("inject"));

  const std::vector<analysis::FaultScenario> scenarios =
      analysis::paper_duplex_scenarios(cfg.code);
  const analysis::FaultCampaignReport report =
      analysis::run_fault_campaign(cfg, scenarios);
  out << analysis::format_campaign_report(report);
  return report.passed() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// rsmem-serve front-ends: serve / query / loadgen (src/service/).

volatile std::sig_atomic_t g_serve_interrupted = 0;

void serve_signal_handler(int) { g_serve_interrupted = 1; }

// Endpoint from --socket PATH (unix) or --listen/--at HOST:PORT (tcp or
// "unix:/path"). Malformed endpoints surface as InvalidConfig -> exit 2.
service::Endpoint endpoint_from(const Args& args, const char* flag,
                                const std::string& fallback) {
  const std::string text = args.get_string_or(flag, fallback);
  core::Result<service::Endpoint> endpoint = service::parse_endpoint(text);
  if (!endpoint.ok()) {
    core::Status status = endpoint.status();
    throw core::StatusError(status.with_context(std::string("--") + flag));
  }
  return endpoint.value();
}

service::SchedulerConfig scheduler_config_from(const Args& args) {
  service::SchedulerConfig config;
  const long threads = args.get_long_or("threads", 0);
  const long max_queue = args.get_long_or("max-queue", 128);
  const long cache = args.get_long_or("cache", 256);
  const long batch = args.get_long_or("batch", 16);
  if (threads < 0 || max_queue < 1 || cache < 0 || batch < 1) {
    throw core::StatusError(core::Status::invalid_config(
        "require --threads >= 0, --max-queue >= 1, --cache >= 0, "
        "--batch >= 1"));
  }
  config.threads = static_cast<unsigned>(threads);
  config.max_queue = static_cast<std::size_t>(max_queue);
  config.cache_capacity = static_cast<std::size_t>(cache);
  config.batch_max = static_cast<std::size_t>(batch);
  return config;
}

// Deadline flag shared by query/loadgen; negative values are rejected
// through the InvalidConfig mapping (exit 2), mirroring Request parsing.
double deadline_from(const Args& args) {
  const double deadline_ms = args.get_double_or("deadline", 0.0);
  if (deadline_ms < 0.0) {
    throw core::StatusError(core::Status::invalid_config(
        "--deadline must be >= 0 milliseconds, got " +
        std::to_string(deadline_ms)));
  }
  return deadline_ms;
}

// Analysis request from the spec flags; used by query and loadgen.
service::Request request_from(const Args& args, const std::string& kind) {
  service::Request request;
  request.deadline_ms = deadline_from(args);
  if (kind == "ping") {
    request.kind = service::RequestKind::kPing;
    return request;
  }
  if (kind == "stats") {
    request.kind = service::RequestKind::kStats;
    return request;
  }
  if (kind == "shutdown") {
    request.kind = service::RequestKind::kShutdown;
    return request;
  }
  request.spec = spec_from(args);
  const double hours = args.get_double_or("hours", 48.0);
  if (kind == "mttf") {
    request.kind = service::RequestKind::kMttf;
    return request;
  }
  if (kind == "sweep") {
    request.kind = service::RequestKind::kSweep;
    request.sweep_param = args.get_string("param");
    if (request.sweep_param != "seu" && request.sweep_param != "perm" &&
        request.sweep_param != "tsc") {
      throw ArgError("--param must be one of seu|perm|tsc");
    }
    request.sweep_values = args.get_double_list("values");
    request.sweep_hours = hours;
    return request;
  }
  if (kind != "ber") {
    throw ArgError(
        "--kind must be one of ber|mttf|sweep|ping|stats|shutdown");
  }
  request.kind = service::RequestKind::kBer;
  request.periodic = args.get_switch("periodic");
  const long points = args.get_long_or("points", 1);
  if (hours <= 0.0 || points < 1) {
    throw ArgError("--hours must be > 0 and --points >= 1");
  }
  request.times_hours =
      points == 1 ? std::vector<double>{hours}
                  : models::time_grid_hours(
                        hours, static_cast<std::size_t>(points));
  return request;
}

// --shards N (>= 1), shared by serve and loadgen.
unsigned shards_from(const Args& args) {
  const long shards = args.get_long_or("shards", 1);
  if (shards < 1) {
    throw core::StatusError(core::Status::invalid_config(
        "--shards must be >= 1, got " + std::to_string(shards)));
  }
  return static_cast<unsigned>(shards);
}

int cmd_serve(const Args& args, std::ostream& out) {
  args.require_known({"socket", "listen", "threads", "max-queue", "cache",
                      "batch", "shards", "snapshot", "idle-timeout-ms",
                      "max-frames-per-second", "max-frame-bytes"});
  if (args.has("socket") && args.has("listen")) {
    throw ArgError("pass --socket PATH or --listen HOST:PORT, not both");
  }
  service::ServerConfig config;
  if (args.has("listen")) {
    config.endpoint = endpoint_from(args, "listen", "");
  } else {
    config.endpoint = service::Endpoint::unix_socket(
        args.get_string_or("socket", "/tmp/rsmem-serve.sock"));
  }
  config.router.scheduler = scheduler_config_from(args);
  config.router.shards = shards_from(args);
  config.snapshot_path = args.get_string_or("snapshot", "");
  const double idle_ms = args.get_double_or("idle-timeout-ms", 0.0);
  const double frame_rate = args.get_double_or("max-frames-per-second", 0.0);
  const long frame_bytes =
      args.get_long_or("max-frame-bytes", service::kMaxFrameBytes);
  if (idle_ms < 0 || frame_rate < 0 || frame_bytes < 64) {
    throw core::StatusError(core::Status::invalid_config(
        "require --idle-timeout-ms >= 0, --max-frames-per-second >= 0, "
        "--max-frame-bytes >= 64"));
  }
  config.idle_timeout_ms = idle_ms;
  config.max_frames_per_second = frame_rate;
  config.max_frame_bytes = static_cast<std::uint32_t>(frame_bytes);
  core::Result<std::unique_ptr<service::Server>> started =
      service::Server::start(config);
  if (!started.ok()) throw core::StatusError(started.status());
  const std::unique_ptr<service::Server> server = std::move(started).value();
  out << "rsmem-serve listening on " << server->endpoint().to_string()
      << " (shards=" << server->shard_count() << " threads="
      << sim::ThreadPool::resolve(config.router.scheduler.threads)
      << " max-queue=" << config.router.scheduler.max_queue
      << " cache=" << config.router.scheduler.cache_capacity
      << " batch=" << config.router.scheduler.batch_max
      << " queue=" << service::kQueueBackendName << ")\n";
  out.flush();

  g_serve_interrupted = 0;
  auto* previous_int = std::signal(SIGINT, serve_signal_handler);
  auto* previous_term = std::signal(SIGTERM, serve_signal_handler);
  // Frame writes already pass MSG_NOSIGNAL; this covers any stray write
  // path so a vanished client can never SIGPIPE the daemon.
  auto* previous_pipe = std::signal(SIGPIPE, SIG_IGN);
  while (!server->wait_for_shutdown(std::chrono::milliseconds(200))) {
    if (g_serve_interrupted) break;
  }
  server->shutdown();
  std::signal(SIGINT, previous_int);
  std::signal(SIGTERM, previous_term);
  std::signal(SIGPIPE, previous_pipe);

  const service::AnalysisScheduler::Stats stats = server->scheduler_stats();
  const service::ResultCache::Stats cache = server->cache_stats();
  out << "rsmem-serve stopped: " << stats.completed << " completed, "
      << stats.rejected_overload << " rejected, cache hit rate "
      << analysis::format_fixed(cache.hit_rate(), 3) << "\n";
  return 0;
}

int cmd_query(const Args& args, std::ostream& out) {
  args.require_known(with_spec({"at", "kind", "hours", "points", "periodic",
                                "param", "values", "deadline", "csv"}));
  const std::string kind = args.get_string_or("kind", "ber");
  const service::Request request = request_from(args, kind);
  const service::Endpoint endpoint =
      endpoint_from(args, "at", "unix:/tmp/rsmem-serve.sock");
  core::Result<service::Client> client = service::Client::connect(endpoint);
  if (!client.ok()) throw core::StatusError(client.status());
  core::Result<service::Response> called = client.value().call(request);
  if (!called.ok()) throw core::StatusError(called.status());
  const service::Response& response = called.value();
  if (!response.status.is_ok()) throw core::StatusError(response.status);

  core::Result<service::Json> result =
      service::Json::parse(response.result_json.empty()
                               ? std::string("{}")
                               : response.result_json);
  if (!result.ok()) throw core::StatusError(result.status());
  const service::Json& json = result.value();
  if (request.kind == service::RequestKind::kBer) {
    const auto times = json.doubles_at("times_hours");
    const auto pfail = json.doubles_at("fail_probability");
    const auto ber = json.doubles_at("ber");
    if (!times.ok() || !pfail.ok() || !ber.ok()) {
      throw core::StatusError(
          core::Status::internal("malformed ber result payload"));
    }
    analysis::Table table{{"hours", "P_fail", "BER"}};
    for (std::size_t i = 0; i < times.value().size(); ++i) {
      table.add_row({analysis::format_fixed(times.value()[i], 2),
                     analysis::format_sci(pfail.value()[i]),
                     analysis::format_sci(ber.value()[i])});
    }
    out << (args.get_switch("csv") ? table.to_csv() : table.to_text());
  } else if (request.kind == service::RequestKind::kSweep) {
    const auto values = json.doubles_at("values");
    const auto pfail = json.doubles_at("fail_probability");
    const auto ber = json.doubles_at("ber");
    if (!values.ok() || !pfail.ok() || !ber.ok()) {
      throw core::StatusError(
          core::Status::internal("malformed sweep result payload"));
    }
    analysis::Table table{{request.sweep_param, "P_fail", "BER"}};
    for (std::size_t i = 0; i < values.value().size(); ++i) {
      table.add_row({analysis::format_sci(values.value()[i]),
                     analysis::format_sci(pfail.value()[i]),
                     analysis::format_sci(ber.value()[i])});
    }
    out << (args.get_switch("csv") ? table.to_csv() : table.to_text());
  } else if (request.kind == service::RequestKind::kMttf) {
    const double hours = json.number_or("mttf_hours", 0.0);
    out << "MTTF: " << analysis::format_sci(hours) << " hours ("
        << analysis::format_fixed(core::hours_to_months(hours), 2)
        << " months)\n";
  } else {
    out << (response.result_json.empty() ? std::string("ok")
                                         : response.result_json)
        << "\n";
  }
  if (request.kind == service::RequestKind::kBer ||
      request.kind == service::RequestKind::kSweep ||
      request.kind == service::RequestKind::kMttf) {
    out << "[cache " << service::to_string(response.cache) << ", "
        << analysis::format_fixed(response.compute_ms, 3) << " ms]\n";
  }
  return 0;
}

int cmd_loadgen(const Args& args, std::ostream& out) {
  args.require_known(with_spec(
      {"at", "self-host", "clients", "requests", "distinct", "kind", "hours",
       "points", "periodic", "param", "values", "deadline", "json", "threads",
       "max-queue", "cache", "batch", "shards", "open-loop", "rate",
       "shard-sweep"}));
  service::LoadgenConfig config;
  config.self_host = !args.has("at") || args.get_switch("self-host");
  if (args.has("at")) {
    config.endpoint = endpoint_from(args, "at", "");
    config.self_host = false;
  }
  config.scheduler = scheduler_config_from(args);
  config.shards = shards_from(args);
  // --rate only makes sense for scheduled arrivals, so it implies the
  // open loop.
  config.open_loop = args.get_switch("open-loop") || args.has("rate");
  const double rate = args.get_double_or("rate", 0.0);
  if (rate < 0.0) {
    throw core::StatusError(core::Status::invalid_config(
        "--rate must be >= 0 requests/second"));
  }
  config.arrival_rate_rps = rate;
  const long clients = args.get_long_or("clients", 8);
  const long requests = args.get_long_or("requests", 40);
  const long distinct = args.get_long_or("distinct", 4);
  if (clients < 1 || requests < 1 || distinct < 1) {
    throw core::StatusError(core::Status::invalid_config(
        "require --clients >= 1, --requests >= 1, --distinct >= 1"));
  }
  config.clients = static_cast<unsigned>(clients);
  config.requests_per_client = static_cast<std::size_t>(requests);
  config.distinct = static_cast<std::size_t>(distinct);
  std::vector<unsigned> sweep_shards;
  if (args.has("shard-sweep")) {
    if (!config.self_host) {
      throw ArgError("--shard-sweep needs a self-hosted server (drop --at)");
    }
    for (double value : args.get_double_list("shard-sweep")) {
      if (value < 1.0 || value != std::floor(value)) {
        throw ArgError("--shard-sweep wants integer shard counts >= 1");
      }
      sweep_shards.push_back(static_cast<unsigned>(value));
    }
    if (sweep_shards.empty()) {
      throw ArgError("--shard-sweep wants at least one shard count");
    }
  }
  const std::string kind = args.get_string_or("kind", "sweep");
  if (kind != "ber" && kind != "mttf" && kind != "sweep") {
    throw ArgError("--kind must be one of ber|mttf|sweep for loadgen");
  }
  // Loadgen defaults to the paper's duplex scrubbing sweep (Fig. 7 family)
  // when no spec flags are given: a realistic, cacheable dashboard query.
  if (kind == "sweep" && !args.has("param")) {
    service::Request request;
    request.kind = service::RequestKind::kSweep;
    request.spec = spec_from(args);
    if (!args.has("seu")) request.spec.seu_rate_per_bit_day = 1e-2;
    request.sweep_param = "tsc";
    request.sweep_values = {600.0, 1800.0, 3600.0, 7200.0};
    request.sweep_hours = args.get_double_or("hours", 48.0);
    request.deadline_ms = deadline_from(args);
    config.request = request;
  } else {
    config.request = request_from(args, kind);
  }

  core::Result<service::LoadgenReport> ran = service::run_loadgen(config);
  if (!ran.ok()) throw core::StatusError(ran.status());
  const service::LoadgenReport& report = ran.value();
  out << service::format_loadgen_report(config, report);

  std::vector<service::ShardScalingPoint> scaling;
  if (!sweep_shards.empty()) {
    core::Result<std::vector<service::ShardScalingPoint>> swept =
        service::run_shard_scaling(config, sweep_shards);
    if (!swept.ok()) throw core::StatusError(swept.status());
    scaling = std::move(swept).value();
    out << "\nshard scaling (open loop, "
        << std::thread::hardware_concurrency() << " cores)\n"
        << service::format_shard_scaling(scaling);
  }

  if (args.has("json")) {
    const std::string path = args.get_string("json");
    std::string payload = service::loadgen_report_json(config, report);
    if (!scaling.empty()) {
      // Splice the scaling section into the report object so one file
      // carries the whole snapshot (BENCH_serve.json schema).
      core::Result<service::Json> parsed = service::Json::parse(payload);
      if (!parsed.ok()) throw core::StatusError(parsed.status());
      service::JsonObject object = parsed.value().as_object();
      object.emplace("shard_scaling", service::shard_scaling_json(scaling));
      payload = service::Json(std::move(object)).serialize();
    }
    std::ofstream file(path);
    if (!file) {
      throw core::StatusError(
          core::Status::internal("cannot write --json file " + path));
    }
    file << payload << "\n";
    out << "wrote " << path << "\n";
  }
  std::size_t scaling_errors = 0;
  for (const service::ShardScalingPoint& point : scaling) {
    scaling_errors += point.report.errors;
  }
  return report.errors == 0 && scaling_errors == 0 ? 0 : 1;
}

int cmd_chaos(const Args& args, std::ostream& out) {
  args.require_known({"preset", "seed", "requests", "distinct", "timeout-ms"});
  const std::string preset = args.get_string_or("preset", "serve-churn");
  if (preset != "serve-churn") {
    throw ArgError("--preset must be 'serve-churn'");
  }
  service::ChaosCampaignConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_long_or("seed", 2005));
  const long requests = args.get_long_or("requests", 24);
  const long distinct = args.get_long_or("distinct", 4);
  const double timeout_ms = args.get_double_or("timeout-ms", 5000.0);
  if (requests < 1 || distinct < 1 || timeout_ms <= 0.0) {
    throw core::StatusError(core::Status::invalid_config(
        "require --requests >= 1, --distinct >= 1, --timeout-ms > 0"));
  }
  config.requests_per_scenario = static_cast<std::size_t>(requests);
  config.distinct = static_cast<std::size_t>(distinct);
  config.receive_timeout_ms = timeout_ms;
  core::Result<service::ChaosCampaignReport> ran =
      service::run_chaos_campaign(config);
  if (!ran.ok()) throw core::StatusError(ran.status());
  out << service::format_chaos_report(config, ran.value());
  return ran.value().passed() ? 0 : 1;
}

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  try {
    const Args args = Args::parse(argc, argv);
    const std::string& command = args.command();
    if (command == "help") return cmd_help(out);
    if (command == "version") return cmd_version(out);
    if (command == "analyze") return cmd_analyze(args, out);
    if (command == "mttf") return cmd_mttf(args, out);
    if (command == "simulate") return cmd_simulate(args, out);
    if (command == "cost") return cmd_cost(args, out);
    if (command == "sweep") return cmd_sweep(args, out);
    if (command == "sensitivity") return cmd_sensitivity(args, out);
    if (command == "sparing") return cmd_sparing(args, out);
    if (command == "pareto") return cmd_pareto(args, out);
    if (command == "latency") return cmd_latency(args, out);
    if (command == "chipkill") return cmd_chipkill(args, out);
    if (command == "inject") return cmd_inject(args, out);
    if (command == "serve") return cmd_serve(args, out);
    if (command == "query") return cmd_query(args, out);
    if (command == "loadgen") return cmd_loadgen(args, out);
    if (command == "chaos") return cmd_chaos(args, out);
    err << "unknown command '" << command << "'; try 'rsmem_cli help'\n";
    return 2;
  } catch (const ArgError& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const core::StatusError& e) {
    err << "error [" << core::to_string(e.status().code())
        << "]: " << e.status().message() << "\n";
    return e.status().code() == core::StatusCode::kInvalidConfig ? 2 : 1;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace rsmem::cli
