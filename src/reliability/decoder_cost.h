// Decoder complexity models (paper Section 6).
//
// Decoding time, in clock cycles, for a non-time-continuous memory access
// profile (fit published for the Altera RS codec IP core, reprinted by the
// paper):             Td ~= 3n + 10(n-k)
// e.g. RS(36,16): 108 + 200 = 308 cycles; RS(18,16): 54 + 20 = 74 cycles --
// more than 4x apart, which is the paper's argument for the duplex
// arrangement despite its worse BER than a simplex RS(36,16).
//
// Decoder area (logic gates) is modeled as (almost) linear in m and in the
// number of check symbols n-k, per the same source. The default
// coefficients are calibrated so one RS(18,16) decoder over GF(2^8) costs
// ~4.3k gates, in the range reported for small RS codec cores; only RATIOS
// between configurations matter for the paper's conclusion.
#ifndef RSMEM_RELIABILITY_DECODER_COST_H
#define RSMEM_RELIABILITY_DECODER_COST_H

namespace rsmem::reliability {

struct DecoderCostModel {
  // Td = time_n_coeff * n + time_parity_coeff * (n-k) clock cycles.
  double time_n_coeff = 3.0;
  double time_parity_coeff = 10.0;

  // gates = area_base + area_mp_coeff * m * (n-k).
  double area_base = 1100.0;
  double area_mp_coeff = 200.0;

  double decode_cycles(unsigned n, unsigned k) const;
  double area_gates(unsigned n, unsigned k, unsigned m) const;
};

// Cost of a complete arrangement (counts decoder replicas: the duplex needs
// two codecs, the simplex one).
struct ArrangementCost {
  double decode_cycles = 0.0;  // critical-path decode latency per access
  double area_gates = 0.0;     // total codec area
};

ArrangementCost simplex_cost(const DecoderCostModel& model, unsigned n,
                             unsigned k, unsigned m);
ArrangementCost duplex_cost(const DecoderCostModel& model, unsigned n,
                            unsigned k, unsigned m);

}  // namespace rsmem::reliability

#endif  // RSMEM_RELIABILITY_DECODER_COST_H
