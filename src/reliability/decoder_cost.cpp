#include "reliability/decoder_cost.h"

#include <stdexcept>

namespace rsmem::reliability {

double DecoderCostModel::decode_cycles(unsigned n, unsigned k) const {
  if (k == 0 || k >= n) {
    throw std::invalid_argument("decode_cycles: require 0 < k < n");
  }
  return time_n_coeff * static_cast<double>(n) +
         time_parity_coeff * static_cast<double>(n - k);
}

double DecoderCostModel::area_gates(unsigned n, unsigned k, unsigned m) const {
  if (k == 0 || k >= n || m == 0) {
    throw std::invalid_argument("area_gates: require 0 < k < n, m > 0");
  }
  return area_base +
         area_mp_coeff * static_cast<double>(m) * static_cast<double>(n - k);
}

ArrangementCost simplex_cost(const DecoderCostModel& model, unsigned n,
                             unsigned k, unsigned m) {
  return {model.decode_cycles(n, k), model.area_gates(n, k, m)};
}

ArrangementCost duplex_cost(const DecoderCostModel& model, unsigned n,
                            unsigned k, unsigned m) {
  // The two decoders of the duplex run in parallel (Fig. 1), so the decode
  // latency is one decoder's; the area is two decoders'.
  return {model.decode_cycles(n, k), 2.0 * model.area_gates(n, k, m)};
}

}  // namespace rsmem::reliability
