// Scrubbing cost model (paper Section 2's "drawbacks", quantified).
//
// "The usage of memory scrubbing must be carefully tuned to the system
// requirements as it also introduces some drawbacks ... an increase of
// hardware overhead due to the necessary control circuitry, a reduction in
// memory availability during the scrubbing operations and an increase in
// power consumption."
//
// One scrub pass touches every word: read (array access) + decode (the
// paper's Td cycles) + conditional write-back. At scrub period Tsc the
// memory spends a duty fraction of its cycles scrubbing; that fraction is
// unavailable to the payload and burns active power.
#ifndef RSMEM_RELIABILITY_SCRUB_OVERHEAD_H
#define RSMEM_RELIABILITY_SCRUB_OVERHEAD_H

#include <cstddef>

#include "reliability/decoder_cost.h"

namespace rsmem::reliability {

struct ScrubOverheadParams {
  std::size_t words = 1u << 20;     // codewords in the array
  double clock_hz = 50e6;           // memory/codec clock
  double access_cycles = 2.0;       // read or write one word
  double write_back_fraction = 0.05;  // fraction of words needing rewrite
  double active_power_watts = 0.5;  // controller+codec power while scrubbing
  unsigned decoders = 1;            // parallel scrub engines (2 for duplex)
};

struct ScrubOverhead {
  double cycles_per_pass = 0.0;    // total codec+access cycles, one pass
  double pass_seconds = 0.0;       // wall time of one pass
  double duty_fraction = 0.0;      // pass_seconds / Tsc
  double availability = 0.0;       // 1 - duty_fraction
  double average_power_watts = 0.0;  // duty-cycled scrub power
};

// Throws std::invalid_argument if the pass cannot complete within Tsc
// (duty fraction would exceed 1) or on nonsensical parameters.
ScrubOverhead scrub_overhead(const DecoderCostModel& model, unsigned n,
                             unsigned k, double tsc_seconds,
                             const ScrubOverheadParams& params);

}  // namespace rsmem::reliability

#endif  // RSMEM_RELIABILITY_SCRUB_OVERHEAD_H
