#include "reliability/milhdbk217.h"

#include <cmath>
#include <stdexcept>

namespace rsmem::reliability {

namespace {
constexpr double kBoltzmannEv = 8.617e-5;  // eV/K
constexpr double kActivationEv = 0.6;      // MOS memory activation energy
constexpr double kHoursPerDay = 24.0;
}  // namespace

double MilHdbk217Model::c1_die_complexity(double capacity_bits) {
  if (capacity_bits <= 0.0) {
    throw std::invalid_argument("c1_die_complexity: capacity must be > 0");
  }
  // 217F MOS memory brackets (failures/1e6h contribution).
  if (capacity_bits <= 16.0 * 1024) return 0.0052;
  if (capacity_bits <= 64.0 * 1024) return 0.011;
  if (capacity_bits <= 256.0 * 1024) return 0.021;
  if (capacity_bits <= 1024.0 * 1024) return 0.042;
  if (capacity_bits <= 4.0 * 1024 * 1024) return 0.084;
  if (capacity_bits <= 16.0 * 1024 * 1024) return 0.17;
  // Extrapolate the x2-per-quadrupling trend beyond the published table.
  double c1 = 0.17;
  double cap = 16.0 * 1024 * 1024;
  while (capacity_bits > cap) {
    cap *= 4.0;
    c1 *= 2.0;
  }
  return c1;
}

double MilHdbk217Model::c2_package(unsigned pin_count) {
  if (pin_count == 0) {
    throw std::invalid_argument("c2_package: pin count must be > 0");
  }
  // 217F hermetic DIP fit: C2 = 2.8e-4 * Np^1.08.
  return 2.8e-4 * std::pow(static_cast<double>(pin_count), 1.08);
}

double MilHdbk217Model::pi_temperature(double junction_temp_celsius) {
  const double t_ref = 298.0;  // 25 C
  const double t_j = junction_temp_celsius + 273.0;
  if (t_j <= 0.0) {
    throw std::invalid_argument("pi_temperature: temperature below 0 K");
  }
  return std::exp(-(kActivationEv / kBoltzmannEv) * (1.0 / t_j - 1.0 / t_ref));
}

double MilHdbk217Model::pi_environment(Environment e) {
  switch (e) {
    case Environment::kGroundBenign: return 0.5;
    case Environment::kGroundFixed: return 2.0;
    case Environment::kGroundMobile: return 4.0;
    case Environment::kAirborneCargo: return 4.0;
    case Environment::kSpaceFlight: return 0.5;
  }
  throw std::logic_error("pi_environment: unknown environment");
}

double MilHdbk217Model::pi_quality(Quality q) {
  switch (q) {
    case Quality::kSpaceCertified: return 0.25;
    case Quality::kMilitary: return 1.0;
    case Quality::kCommercial: return 10.0;  // COTS screening penalty
  }
  throw std::logic_error("pi_quality: unknown quality");
}

double MilHdbk217Model::pi_learning(double years_in_production) {
  if (years_in_production < 0.0) {
    throw std::invalid_argument("pi_learning: negative production age");
  }
  // 217F: piL = 0.01 * exp(5.35 - 0.35 * years), clamped to >= 1.
  const double pi_l = 0.01 * std::exp(5.35 - 0.35 * years_in_production);
  return pi_l < 1.0 ? 1.0 : pi_l;
}

double MilHdbk217Model::chip_failures_per_1e6_hours(
    const MemoryChipSpec& spec) {
  const double c1 = c1_die_complexity(spec.capacity_bits);
  const double c2 = c2_package(spec.pin_count);
  const double pi_t = pi_temperature(spec.junction_temp_celsius);
  const double pi_e = pi_environment(spec.environment);
  const double pi_q = pi_quality(spec.quality);
  const double pi_l = pi_learning(spec.years_in_production);
  return (c1 * pi_t + c2 * pi_e) * pi_q * pi_l;
}

double MilHdbk217Model::erasure_rate_per_symbol_day(
    const MemoryChipSpec& spec, unsigned bits_per_symbol,
    double words_per_chip) {
  if (bits_per_symbol == 0 || words_per_chip <= 0.0) {
    throw std::invalid_argument(
        "erasure_rate_per_symbol_day: invalid geometry");
  }
  const double chip_per_hour = chip_failures_per_1e6_hours(spec) / 1e6;
  // A chip failure manifests in one stored word at a time from the decoder's
  // perspective; apportion the chip rate uniformly over its words. In the
  // bit-sliced SSMM organization each chip feeds exactly one symbol of each
  // word, so the per-word rate IS the per-symbol rate.
  return chip_per_hour / words_per_chip * kHoursPerDay;
}

}  // namespace rsmem::reliability
