// MIL-HDBK-217F-style parametric failure-rate model for memory devices.
//
// The paper selects its permanent-fault rate range (1e-10..1e-4 per symbol
// per day, Figs. 8-10) "using for example the models of [6], [1]" where [1]
// is MIL-HDBK-217. This module provides that substrate: a parts-stress
// model for MOS memory ICs,
//     lambda_chip = (C1 * piT + C2 * piE) * piQ * piL   [failures / 1e6 h]
// with the standard factor structure (die complexity C1 by capacity,
// package C2 by pin count, temperature acceleration piT by Arrhenius
// activation, environment piE, quality piQ, learning piL). Coefficients
// follow the 217F notice-2 structure for MOS SRAM/DRAM.
//
// The chip rate is then apportioned to the RS-symbol granularity the Markov
// models need (failures per symbol per day).
#ifndef RSMEM_RELIABILITY_MILHDBK217_H
#define RSMEM_RELIABILITY_MILHDBK217_H

#include <cstdint>

namespace rsmem::reliability {

enum class Environment : std::uint8_t {
  kGroundBenign,   // GB
  kGroundFixed,    // GF
  kGroundMobile,   // GM
  kAirborneCargo,  // AIC
  kSpaceFlight,    // SF -- the paper's SSMM mission profile
};

enum class Quality : std::uint8_t {
  kSpaceCertified,  // class S
  kMilitary,        // class B
  kCommercial,      // COTS -- the paper's motivation
};

struct MemoryChipSpec {
  double capacity_bits = 16.0 * 1024 * 1024;  // device capacity
  unsigned pin_count = 48;
  double junction_temp_celsius = 40.0;
  Environment environment = Environment::kSpaceFlight;
  Quality quality = Quality::kCommercial;
  double years_in_production = 5.0;  // drives the learning factor piL
};

class MilHdbk217Model {
 public:
  // Die-complexity factor C1 (by capacity bracket) and package factor C2.
  static double c1_die_complexity(double capacity_bits);
  static double c2_package(unsigned pin_count);
  // Arrhenius temperature factor, activation energy 0.6 eV, referenced to
  // 25 C junction temperature.
  static double pi_temperature(double junction_temp_celsius);
  static double pi_environment(Environment e);
  static double pi_quality(Quality q);
  static double pi_learning(double years_in_production);

  // Chip failure rate in failures per 1e6 hours.
  static double chip_failures_per_1e6_hours(const MemoryChipSpec& spec);

  // Permanent-fault (erasure) rate per RS symbol per DAY, assuming chip
  // failures strike uniformly across the chip's words and that one chip
  // contributes `bits_per_symbol` bits to each codeword (the usual SSMM
  // bit-slicing organization: symbol failure == chip-local fault).
  static double erasure_rate_per_symbol_day(const MemoryChipSpec& spec,
                                            unsigned bits_per_symbol,
                                            double words_per_chip);
};

}  // namespace rsmem::reliability

#endif  // RSMEM_RELIABILITY_MILHDBK217_H
