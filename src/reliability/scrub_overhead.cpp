#include "reliability/scrub_overhead.h"

#include <stdexcept>

namespace rsmem::reliability {

ScrubOverhead scrub_overhead(const DecoderCostModel& model, unsigned n,
                             unsigned k, double tsc_seconds,
                             const ScrubOverheadParams& params) {
  if (tsc_seconds <= 0.0 || params.clock_hz <= 0.0 || params.words == 0 ||
      params.decoders == 0) {
    throw std::invalid_argument("scrub_overhead: nonsensical parameters");
  }
  if (params.write_back_fraction < 0.0 || params.write_back_fraction > 1.0) {
    throw std::invalid_argument(
        "scrub_overhead: write_back_fraction outside [0,1]");
  }
  ScrubOverhead result;
  const double per_word = params.access_cycles +            // read
                          model.decode_cycles(n, k) +       // decode
                          params.write_back_fraction * params.access_cycles;
  result.cycles_per_pass = per_word * static_cast<double>(params.words) /
                           static_cast<double>(params.decoders);
  result.pass_seconds = result.cycles_per_pass / params.clock_hz;
  result.duty_fraction = result.pass_seconds / tsc_seconds;
  if (result.duty_fraction > 1.0) {
    throw std::invalid_argument(
        "scrub_overhead: one pass does not fit in Tsc; slow the period or "
        "add scrub engines");
  }
  result.availability = 1.0 - result.duty_fraction;
  result.average_power_watts = params.active_power_watts * result.duty_fraction;
  return result;
}

}  // namespace rsmem::reliability
