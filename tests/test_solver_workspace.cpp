// Tests for the solver workspace layer: solve_into vs the allocating
// solve(), Poisson-window caching, dense step operators, and the
// incremental periodic-jump evaluation -- all on the chains the paper's
// figures actually solve.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "markov/ctmc.h"
#include "markov/periodic.h"
#include "markov/rk45.h"
#include "markov/solver_workspace.h"
#include "markov/state_space.h"
#include "markov/uniformization.h"
#include "models/ber.h"
#include "models/duplex_model.h"
#include "models/simplex_model.h"

namespace rsmem::markov {
namespace {

models::SimplexParams simplex_params() {
  models::SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1.7e-5 / 24.0;
  p.scrub_rate_per_hour = 4.0;
  return p;
}

models::DuplexParams duplex_params() {
  models::DuplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1.7e-5 / 24.0;
  p.erasure_rate_per_symbol_hour = 1e-6;
  return p;
}

std::vector<double> grid(double t_end, std::size_t points) {
  return models::time_grid_hours(t_end, points);
}

TEST(SolverWorkspace, SolveIntoBitwiseMatchesSolveUniformization) {
  const UniformizationSolver solver;
  SolverWorkspace ws;
  for (const bool duplex : {false, true}) {
    const StateSpace space =
        duplex ? models::DuplexModel{duplex_params()}.build()
               : models::SimplexModel{simplex_params()}.build();
    const std::vector<double> pi0 = space.chain.initial_distribution();
    std::vector<double> out(space.size());
    for (const double t : {0.0, 0.25, 1.0, 12.0, 48.0}) {
      const std::vector<double> ref = solver.solve(space.chain, pi0, t);
      solver.solve_into(space.chain, pi0, t, ws, out);
      ASSERT_EQ(ref.size(), out.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i], out[i]) << "duplex=" << duplex << " t=" << t
                                  << " state=" << i;
      }
    }
  }
}

TEST(SolverWorkspace, SolveIntoBitwiseMatchesSolveRk45) {
  const Rk45Solver solver;
  SolverWorkspace ws;
  const StateSpace space = models::SimplexModel{simplex_params()}.build();
  const std::vector<double> pi0 = space.chain.initial_distribution();
  std::vector<double> out(space.size());
  for (const double t : {0.0, 0.5, 7.0, 48.0}) {
    const std::vector<double> ref = solver.solve(space.chain, pi0, t);
    solver.solve_into(space.chain, pi0, t, ws, out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(ref[i], out[i]) << "t=" << t << " state=" << i;
    }
  }
}

TEST(SolverWorkspace, SolveIntoRejectsBadOutputSize) {
  const UniformizationSolver solver;
  SolverWorkspace ws;
  const StateSpace space = models::SimplexModel{simplex_params()}.build();
  const std::vector<double> pi0 = space.chain.initial_distribution();
  std::vector<double> out(space.size() + 1);
  EXPECT_THROW(solver.solve_into(space.chain, pi0, 1.0, ws, out),
               std::invalid_argument);
}

TEST(SolverWorkspace, PoissonWindowCacheHitsOnRepeatedKey) {
  SolverWorkspace ws;
  const PoissonWindow& a = ws.poisson(12.5, 1e-12, kPoissonTailFloor);
  EXPECT_EQ(ws.window_cache_misses(), 1u);
  EXPECT_EQ(ws.window_cache_hits(), 0u);
  const PoissonWindow& b = ws.poisson(12.5, 1e-12, kPoissonTailFloor);
  EXPECT_EQ(ws.window_cache_hits(), 1u);
  EXPECT_EQ(&a, &b);  // same cached entry, not a recompute
  ws.poisson(25.0, 1e-12, kPoissonTailFloor);
  EXPECT_EQ(ws.window_cache_misses(), 2u);
  EXPECT_EQ(ws.window_cache_size(), 2u);
  // The cached window matches a fresh computation exactly.
  const PoissonWindow fresh = poisson_window(12.5, 1e-12);
  const PoissonWindow& cached = ws.poisson(12.5, 1e-12, kPoissonTailFloor);
  EXPECT_EQ(cached.first_k, fresh.first_k);
  EXPECT_EQ(cached.weights, fresh.weights);
  ws.clear();
  EXPECT_EQ(ws.window_cache_size(), 0u);
}

TEST(SolverWorkspace, OccupancyCurveDefaultPolicyBitwise) {
  const UniformizationSolver solver;
  SolverWorkspace ws;
  const StateSpace space = models::DuplexModel{duplex_params()}.build();
  const std::size_t fail = space.index_of(models::DuplexModel::fail_state());
  const std::vector<double> times = grid(48.0, 25);
  const std::vector<double> ref =
      solver.occupancy_curve(space.chain, fail, times);
  const std::vector<double> got =
      solver.occupancy_curve(space.chain, fail, times, ws);
  EXPECT_EQ(ref, got);
}

TEST(SolverWorkspace, OccupancyCurveDensePolicyClose) {
  const UniformizationSolver solver;
  SolverWorkspace ws;
  const StateSpace space = models::DuplexModel{duplex_params()}.build();
  const std::size_t fail = space.index_of(models::DuplexModel::fail_state());
  // Evenly spaced grid with more repeats of dt than states, so the dense
  // operator actually engages.
  const std::vector<double> times = grid(48.0, 200);
  const std::vector<double> ref =
      solver.occupancy_curve(space.chain, fail, times);
  const std::vector<double> got =
      solver.occupancy_curve(space.chain, fail, times, ws, StepPolicy{256});
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double scale = std::max({std::fabs(ref[i]), std::fabs(got[i]), 1e-300});
    EXPECT_LE(std::fabs(ref[i] - got[i]) / scale, 1e-12) << "i=" << i;
  }
}

TEST(StepOperatorTest, AdvanceMatchesDirectSolve) {
  const UniformizationSolver solver;
  SolverWorkspace ws;
  const StateSpace space = models::SimplexModel{simplex_params()}.build();
  const double dt = 0.25;
  const StepOperator op(space.chain, dt, solver, ws);
  EXPECT_EQ(op.num_states(), space.size());
  EXPECT_DOUBLE_EQ(op.dt(), dt);
  const std::vector<double> pi0 = space.chain.initial_distribution();
  std::vector<double> stepped(space.size());
  op.advance(pi0, stepped);
  const std::vector<double> ref = solver.solve(space.chain, pi0, dt);
  double total = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(stepped[i], ref[i], 1e-13) << "state=" << i;
    EXPECT_GE(stepped[i], 0.0);
    total += stepped[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

// A duplex chain with a scrub jump map, as metrics.cpp builds for
// periodic-scrub BER: faults accumulate continuously, the jump repairs
// every non-fail state.
struct PeriodicFixture {
  StateSpace space;
  std::size_t fail_index;
  std::vector<std::size_t> jump_map;

  PeriodicFixture() : space(models::DuplexModel{duplex_params()}.build()) {
    fail_index = space.index_of(models::DuplexModel::fail_state());
    jump_map.resize(space.size());
    for (std::size_t i = 0; i < space.size(); ++i) {
      const PackedState s = space.states[i];
      if (models::DuplexModel::is_fail(s)) {
        jump_map[i] = i;
        continue;
      }
      const models::DuplexState d = models::DuplexModel::unpack(s);
      models::DuplexState scrubbed;
      scrubbed.x = d.x;
      scrubbed.y = d.y + d.b;
      jump_map[i] = space.index_of(models::DuplexModel::pack(scrubbed));
    }
  }
};

TEST(PeriodicIncremental, OccupancyBitwiseMatchesFromScratch) {
  const PeriodicFixture fx;
  const UniformizationSolver solver;
  const double period = 0.25;  // 900 s in hours
  const std::vector<double> times = grid(12.0, 20);
  // From-scratch reference: restart at pi(0) for every query point, which
  // is what occupancy_with_periodic_jump did before the incremental
  // rewrite.
  std::vector<double> ref;
  for (const double t : times) {
    const std::vector<double> pi = solve_with_periodic_jump(
        fx.space.chain, fx.space.chain.initial_distribution(), fx.jump_map,
        period, t, solver);
    ref.push_back(pi[fx.fail_index]);
  }
  const std::vector<double> got = occupancy_with_periodic_jump(
      fx.space.chain, fx.fail_index, fx.jump_map, period, times, solver);
  EXPECT_EQ(ref, got);
}

TEST(PeriodicIncremental, QueryAtJumpInstantAndBetween) {
  // Times landing exactly on cycle boundaries exercise the
  // jump-applied-first convention; the incremental walk must agree with
  // the single-point solver on both boundary and interior queries.
  const PeriodicFixture fx;
  const UniformizationSolver solver;
  const double period = 0.5;
  const std::vector<double> times{0.0, 0.5, 0.75, 1.0, 1.5, 1.5 + 0.25, 2.0};
  const std::vector<double> got = occupancy_with_periodic_jump(
      fx.space.chain, fx.fail_index, fx.jump_map, period, times, solver);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const std::vector<double> pi = solve_with_periodic_jump(
        fx.space.chain, fx.space.chain.initial_distribution(), fx.jump_map,
        period, times[i], solver);
    EXPECT_EQ(got[i], pi[fx.fail_index]) << "t=" << times[i];
  }
}

TEST(PeriodicIncremental, WorkspaceDefaultPolicyBitwise) {
  const PeriodicFixture fx;
  const UniformizationSolver solver;
  SolverWorkspace ws;
  const double period = 0.25;
  const std::vector<double> times = grid(12.0, 20);
  const std::vector<double> plain = occupancy_with_periodic_jump(
      fx.space.chain, fx.fail_index, fx.jump_map, period, times, solver);
  const std::vector<double> with_ws = occupancy_with_periodic_jump(
      fx.space.chain, fx.fail_index, fx.jump_map, period, times, solver, ws);
  EXPECT_EQ(plain, with_ws);

  const std::vector<double> pi_plain = solve_with_periodic_jump(
      fx.space.chain, fx.space.chain.initial_distribution(), fx.jump_map,
      period, 7.3, solver);
  const std::vector<double> pi_ws = solve_with_periodic_jump(
      fx.space.chain, fx.space.chain.initial_distribution(), fx.jump_map,
      period, 7.3, solver, ws);
  EXPECT_EQ(pi_plain, pi_ws);
}

TEST(PeriodicIncremental, WorkspaceDensePolicyClose) {
  const PeriodicFixture fx;
  const UniformizationSolver solver;
  SolverWorkspace ws;
  const double period = 0.25;  // 48 cycles over 12 h >> n states
  const std::vector<double> times = grid(12.0, 20);
  const std::vector<double> plain = occupancy_with_periodic_jump(
      fx.space.chain, fx.fail_index, fx.jump_map, period, times, solver);
  const std::vector<double> dense = occupancy_with_periodic_jump(
      fx.space.chain, fx.fail_index, fx.jump_map, period, times, solver, ws,
      StepPolicy{256});
  ASSERT_EQ(plain.size(), dense.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    const double scale =
        std::max({std::fabs(plain[i]), std::fabs(dense[i]), 1e-300});
    EXPECT_LE(std::fabs(plain[i] - dense[i]) / scale, 1e-12) << "i=" << i;
  }
}

}  // namespace
}  // namespace rsmem::markov
