// Wire-protocol unit tests: JSON round trips (bit-exact doubles),
// request/response codecs, canonical cache keys, endpoint parsing, and
// frame transport over a socketpair.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <thread>

#include "service/endpoint.h"
#include "service/json.h"
#include "service/protocol.h"
#include "sim/rng.h"

namespace rsmem::service {
namespace {

TEST(ServiceJson, ScalarRoundTrip) {
  const auto parsed = Json::parse(R"({"a":1.5,"b":true,"c":"x\n","d":null})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const Json& json = parsed.value();
  EXPECT_DOUBLE_EQ(json.number_or("a", 0), 1.5);
  EXPECT_TRUE(json.bool_or("b", false));
  EXPECT_EQ(json.string_or("c", ""), "x\n");
  ASSERT_NE(json.find("d"), nullptr);
  EXPECT_TRUE(json.find("d")->is_null());
  EXPECT_EQ(json.find("missing"), nullptr);
}

TEST(ServiceJson, DoubleSerializationIsBitExact) {
  // Values chosen to stress the 17-digit path: non-representable
  // decimals, denormal-ish magnitudes, and the paper's own rates.
  const double cases[] = {0.1,     1.0 / 3.0, 1.7e-5,     6.02214076e23,
                          5e-324,  1e-312,    0.49999999999999994,
                          1.313e-1, 2005.0};
  for (const double value : cases) {
    const std::string text = Json(value).serialize();
    const auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.ok());
    const double round_tripped = parsed.value().as_number();
    EXPECT_EQ(std::memcmp(&value, &round_tripped, sizeof value), 0)
        << "value " << value << " serialized as " << text;
  }
}

TEST(ServiceJson, NonFiniteBecomesNullBecomesNan) {
  const std::string text = Json(std::nan("")).serialize();
  EXPECT_EQ(text, "null");
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(std::isnan(parsed.value().as_number()));
}

TEST(ServiceJson, CanonicalObjectOrder) {
  const auto a = Json::parse(R"({"z":1,"a":2})");
  const auto b = Json::parse(R"({"a":2,"z":1})");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().serialize(), b.value().serialize());
}

TEST(ServiceJson, RejectsMalformed) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\":1}trailing").ok());
  EXPECT_FALSE(Json::parse("{'a':1}").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
}

TEST(ServiceJson, NumberGrammarIsStrictJson) {
  // strtod leniencies (NaN/Infinity spellings, hex floats, leading '+'
  // or zeros) must not cross the protocol boundary: a NaN smuggled into
  // a spec would defeat range validation downstream.
  EXPECT_FALSE(Json::parse("NaN").ok());
  EXPECT_FALSE(Json::parse("Infinity").ok());
  EXPECT_FALSE(Json::parse("-Infinity").ok());
  EXPECT_FALSE(Json::parse(R"({"spec":{"n":NaN}})").ok());
  EXPECT_FALSE(Json::parse("+1").ok());
  EXPECT_FALSE(Json::parse("0x1p3").ok());
  EXPECT_FALSE(Json::parse("01").ok());
  EXPECT_FALSE(Json::parse("1.").ok());
  EXPECT_FALSE(Json::parse(".5").ok());
  EXPECT_FALSE(Json::parse("1e").ok());
  EXPECT_FALSE(Json::parse("1e+").ok());
  EXPECT_FALSE(Json::parse("-").ok());
  // Valid spellings still parse.
  EXPECT_TRUE(Json::parse("-0").ok());
  EXPECT_TRUE(Json::parse("0.5e-3").ok());
  EXPECT_TRUE(Json::parse("1E6").ok());
}

TEST(ServiceJson, NumberParsingStopsAtViewEnd) {
  // Json::parse takes a string_view; the parser must not read past the
  // view's end even when the underlying buffer continues with digits
  // (strtod needs a NUL-terminated C string, the view is not one).
  const char buffer[] = "425";
  const auto parsed = Json::parse(std::string_view(buffer, 2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().as_number(), 42.0);
}

TEST(ServiceJson, NestingDepthBounded) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::parse(deep).ok());
}

Request paper_ber_request() {
  Request request;
  request.id = 7;
  request.kind = RequestKind::kBer;
  request.spec.arrangement = analysis::Arrangement::kDuplex;
  request.spec.code = {18, 16, 8, 1};
  request.spec.seu_rate_per_bit_day = 1e-2;
  request.spec.scrub_period_seconds = 3600.0;
  request.times_hours = {0.0, 24.0, 48.0};
  return request;
}

TEST(ServiceProtocol, RequestRoundTrip) {
  Request request = paper_ber_request();
  request.deadline_ms = 250.0;
  const auto decoded = Request::from_json(request.to_json());
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  const Request& back = decoded.value();
  EXPECT_EQ(back.id, request.id);
  EXPECT_EQ(back.kind, RequestKind::kBer);
  EXPECT_EQ(back.deadline_ms, 250.0);
  EXPECT_EQ(back.spec.arrangement, analysis::Arrangement::kDuplex);
  EXPECT_EQ(back.spec.code.n, 18u);
  EXPECT_EQ(back.spec.seu_rate_per_bit_day, 1e-2);
  EXPECT_EQ(back.times_hours, request.times_hours);
  EXPECT_EQ(canonical_cache_key(back), canonical_cache_key(request));
}

TEST(ServiceProtocol, SweepRoundTrip) {
  Request request;
  request.kind = RequestKind::kSweep;
  request.sweep_param = "tsc";
  request.sweep_values = {600.0, 1800.0};
  request.sweep_hours = 24.0;
  request.spec.seu_rate_per_bit_day = 1e-3;
  const auto decoded = Request::from_json(request.to_json());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sweep_param, "tsc");
  EXPECT_EQ(decoded.value().sweep_values, request.sweep_values);
  EXPECT_EQ(decoded.value().sweep_hours, 24.0);
}

TEST(ServiceProtocol, RequestRejections) {
  EXPECT_FALSE(Request::from_json("not json").ok());
  EXPECT_FALSE(Request::from_json("[]").ok());
  EXPECT_FALSE(Request::from_json(R"({"kind":"frobnicate"})").ok());
  // ber without times.
  EXPECT_FALSE(
      Request::from_json(R"({"kind":"ber","spec":{},"times_hours":[]})").ok());
  // negative deadline is a typed InvalidConfig.
  const auto rejected = Request::from_json(
      R"({"kind":"mttf","spec":{},"deadline_ms":-3})");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), core::StatusCode::kInvalidConfig);
  // sweep with an unknown parameter.
  EXPECT_FALSE(Request::from_json(
                   R"({"kind":"sweep","spec":{},"param":"zap","values":[1]})")
                   .ok());
  // malformed spec arrangement.
  EXPECT_FALSE(
      Request::from_json(
          R"({"kind":"mttf","spec":{"arrangement":"triplex"}})")
          .ok());
}

TEST(ServiceProtocol, SpecRejectsNonFiniteAndNonIntegral) {
  // 1e309 overflows to +inf in the parser; it must come back as a typed
  // InvalidConfig, never reach static_cast<unsigned> (undefined
  // behavior producing an arbitrary geometry).
  const auto inf_n =
      Request::from_json(R"({"kind":"mttf","spec":{"n":1e309}})");
  ASSERT_FALSE(inf_n.ok());
  EXPECT_EQ(inf_n.status().code(), core::StatusCode::kInvalidConfig);
  // Non-integral geometry would be silently truncated by the cast.
  EXPECT_FALSE(
      Request::from_json(R"({"kind":"mttf","spec":{"n":18.5}})").ok());
  // Rates and periods must be finite and non-negative.
  EXPECT_FALSE(
      Request::from_json(R"({"kind":"mttf","spec":{"seu":-1}})").ok());
  EXPECT_FALSE(
      Request::from_json(R"({"kind":"mttf","spec":{"tsc":1e400}})").ok());
  // JSON null maps to NaN in doubles_at (for result payloads); request
  // inputs must be real numbers.
  EXPECT_FALSE(
      Request::from_json(R"({"kind":"ber","spec":{},"times_hours":[null]})")
          .ok());
  EXPECT_FALSE(
      Request::from_json(
          R"({"kind":"sweep","spec":{},"param":"tsc","values":[1],"hours":-2})")
          .ok());
}

TEST(ServiceProtocol, ResponseRoundTrip) {
  Response response;
  response.id = 42;
  response.status = core::Status::ok();
  response.cache = CacheSource::kWait;
  response.compute_ms = 1.25;
  response.result_json = R"({"mttf_hours":34.3125})";
  const auto decoded = Response::from_json(response.to_json());
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_TRUE(decoded.value().status.is_ok());
  EXPECT_EQ(decoded.value().cache, CacheSource::kWait);
  EXPECT_EQ(decoded.value().result_json, response.result_json);
}

TEST(ServiceProtocol, ResponseCarriesTypedStatus) {
  Response response;
  response.id = 9;
  response.status = core::Status::overloaded("queue full");
  const auto decoded = Response::from_json(response.to_json());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status.code(), core::StatusCode::kOverloaded);
  EXPECT_EQ(decoded.value().status.message(), "queue full");

  response.status = core::Status::deadline_exceeded("too slow");
  const auto decoded2 = Response::from_json(response.to_json());
  ASSERT_TRUE(decoded2.ok());
  EXPECT_EQ(decoded2.value().status.code(),
            core::StatusCode::kDeadlineExceeded);
}

TEST(ServiceProtocol, CacheKeyCanonicalization) {
  const Request base = paper_ber_request();
  Request same = base;
  same.id = 999;            // ids are not semantic
  same.deadline_ms = 17.0;  // deadlines are not semantic
  EXPECT_EQ(canonical_cache_key(base), canonical_cache_key(same));

  Request different_rate = base;
  // A one-ulp rate change MUST change the key (bitwise canonicalization).
  different_rate.spec.seu_rate_per_bit_day =
      std::nextafter(base.spec.seu_rate_per_bit_day, 1.0);
  EXPECT_NE(canonical_cache_key(base), canonical_cache_key(different_rate));

  Request different_times = base;
  different_times.times_hours.back() += 1.0;
  EXPECT_NE(canonical_cache_key(base), canonical_cache_key(different_times));

  Request periodic = base;
  periodic.periodic = true;
  EXPECT_NE(canonical_cache_key(base), canonical_cache_key(periodic));

  Request control;
  control.kind = RequestKind::kPing;
  EXPECT_TRUE(canonical_cache_key(control).empty());
  control.kind = RequestKind::kStats;
  EXPECT_TRUE(canonical_cache_key(control).empty());

  EXPECT_NE(cache_key_hash(canonical_cache_key(base)),
            cache_key_hash(canonical_cache_key(different_rate)));
}

TEST(ServiceEndpoint, ParsesUnixAndTcp) {
  const auto unix_endpoint = parse_endpoint("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_endpoint.ok());
  EXPECT_EQ(unix_endpoint.value().kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_endpoint.value().path, "/tmp/x.sock");
  EXPECT_EQ(unix_endpoint.value().to_string(), "unix:/tmp/x.sock");

  const auto tcp = parse_endpoint("127.0.0.1:8080");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp.value().kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.value().host, "127.0.0.1");
  EXPECT_EQ(tcp.value().port, 8080);
  EXPECT_EQ(tcp.value().to_string(), "127.0.0.1:8080");
}

TEST(ServiceEndpoint, RejectsMalformed) {
  for (const char* bad :
       {"", "nocolon", "unix:", ":8080", "host:", "host:abc", "host:-1",
        "host:65536", "host:123456", "host:12 3"}) {
    const auto parsed = parse_endpoint(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted '" << bad << "'";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), core::StatusCode::kInvalidConfig)
          << bad;
    }
  }
}

TEST(ServiceFrames, RoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload(100000, 'x');  // forces several write() calls
  std::thread writer([&] {
    EXPECT_TRUE(write_frame(fds[0], "first").is_ok());
    EXPECT_TRUE(write_frame(fds[0], payload).is_ok());
    EXPECT_TRUE(write_frame(fds[0], "").is_ok());
    ::close(fds[0]);
  });
  auto frame = read_frame(fds[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().payload, "first");
  frame = read_frame(fds[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().payload, payload);
  frame = read_frame(fds[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().payload, "");
  frame = read_frame(fds[1]);  // orderly EOF
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame.value().eof);
  writer.join();
  ::close(fds[1]);
}

TEST(ServiceFrames, RejectsOversizedAnnouncement) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::write(fds[0], header, 4), 4);
  const auto frame = read_frame(fds[1]);
  EXPECT_FALSE(frame.ok());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServiceFrames, TruncationMidFrameIsAnError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char header[4] = {0, 0, 0, 10};  // promises 10 bytes
  ASSERT_EQ(::write(fds[0], header, 4), 4);
  ASSERT_EQ(::write(fds[0], "abc", 3), 3);
  ::close(fds[0]);
  const auto frame = read_frame(fds[1]);
  EXPECT_FALSE(frame.ok());
  ::close(fds[1]);
}

TEST(ServiceFrames, ConfigurableCapRejectsBeforeAllocation) {
  // A 2 KiB announcement against a 1 KiB cap must come back as a TYPED
  // kInvalidConfig naming the limit — before any payload bytes exist to
  // read (nothing but the header is ever written here, so a reader that
  // tried to allocate-and-read the body would block forever instead).
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char header[4] = {0, 0, 0x08, 0x00};  // 2048
  ASSERT_EQ(::write(fds[0], header, 4), 4);
  const auto frame = read_frame(fds[1], 1024);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), core::StatusCode::kInvalidConfig);
  // A frame under the cap still round-trips with the same cap.
  std::thread writer([&] { EXPECT_TRUE(write_frame(fds[0], "ok").is_ok()); });
  const auto small = read_frame(fds[1], 1024);
  writer.join();
  ASSERT_TRUE(small.ok()) << small.status().to_string();
  EXPECT_EQ(small.value().payload, "ok");
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Fuzz battery: mangled frames and mangled payloads must always land in a
// typed outcome — ok frame, typed error, or orderly EOF — never a crash,
// an out-of-bounds read (ASan covers this file), or a stuck reader.

std::string valid_request_frame() {
  Request request = paper_ber_request();
  const std::string payload = request.to_json();
  std::string frame;
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<char>((size >> 24) & 0xFF));
  frame.push_back(static_cast<char>((size >> 16) & 0xFF));
  frame.push_back(static_cast<char>((size >> 8) & 0xFF));
  frame.push_back(static_cast<char>(size & 0xFF));
  frame += payload;
  return frame;
}

// Feeds `bytes` to read_frame until EOF or error; every parsed payload is
// pushed through Request::from_json. The writer closes its end, so a
// reader waiting for more of a truncated frame sees EOF, not a hang.
void drain_mangled_stream(const std::string& bytes) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread writer([&] {
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const ssize_t wrote =
          ::write(fds[0], bytes.data() + offset, bytes.size() - offset);
      if (wrote <= 0) break;
      offset += static_cast<std::size_t>(wrote);
    }
    ::close(fds[0]);
  });
  for (int frames = 0; frames < 64; ++frames) {
    const auto frame = read_frame(fds[1], 1 << 20);
    if (!frame.ok() || frame.value().eof) break;
    const auto decoded = Request::from_json(frame.value().payload);
    if (decoded.ok()) {
      EXPECT_FALSE(canonical_cache_key(decoded.value()).empty() &&
                   decoded.value().kind == RequestKind::kBer);
    } else {
      EXPECT_FALSE(decoded.status().message().empty());
    }
  }
  writer.join();
  ::close(fds[1]);
}

TEST(ServiceFrames, FuzzTruncatedFramesNeverCrashOrHang) {
  const std::string frame = valid_request_frame();
  sim::Rng rng(2005);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t cut = static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(frame.size()));
    drain_mangled_stream(frame.substr(0, cut));
  }
}

TEST(ServiceFrames, FuzzBitFlippedFramesNeverCrashOrHang) {
  const std::string frame = valid_request_frame();
  sim::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mangled = frame + frame;  // two frames: damage can span
    const int flips = 1 + static_cast<int>(rng.uniform() * 8.0);
    for (int flip = 0; flip < flips; ++flip) {
      const std::size_t byte = static_cast<std::size_t>(
          rng.uniform() * static_cast<double>(mangled.size()));
      mangled[byte] = static_cast<char>(
          static_cast<unsigned char>(mangled[byte]) ^
          (1u << static_cast<unsigned>(rng.uniform() * 8.0)));
    }
    drain_mangled_stream(mangled);
  }
}

TEST(ServiceFrames, FuzzRandomGarbageNeverCrashesParser) {
  sim::Rng rng(425);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t size = static_cast<std::size_t>(rng.uniform() * 300.0);
    std::string garbage(size, '\0');
    for (char& byte : garbage) {
      byte = static_cast<char>(rng.uniform() * 256.0);
    }
    (void)Json::parse(garbage);
    (void)Request::from_json(garbage);
    (void)Response::from_json(garbage);
    drain_mangled_stream(garbage);
  }
}

// ---------------------------------------------------------------------------
// IPv6 literals and DNS names (endpoint.cpp routes hosts through
// getaddrinfo; parsing stays purely syntactic and offline).

TEST(ServiceEndpoint, ParsesBracketedIpv6Literal) {
  const auto endpoint = parse_endpoint("[::1]:8080");
  ASSERT_TRUE(endpoint.ok()) << endpoint.status().to_string();
  EXPECT_EQ(endpoint.value().kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(endpoint.value().host, "::1");
  EXPECT_EQ(endpoint.value().port, 8080);
  // to_string re-brackets, so the endpoint round-trips through the parser.
  EXPECT_EQ(endpoint.value().to_string(), "[::1]:8080");
  const auto again = parse_endpoint(endpoint.value().to_string());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().host, "::1");

  const auto full = parse_endpoint("[2001:db8::42]:443");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().host, "2001:db8::42");
  EXPECT_EQ(full.value().port, 443);
}

TEST(ServiceEndpoint, RejectsAmbiguousOrBrokenIpv6Forms) {
  // An unbracketed v6 literal is ambiguous ("::1:80" — host "::1" port 80,
  // or host "::1:80"?); the parser demands brackets and says so.
  const auto ambiguous = parse_endpoint("::1:8080");
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_EQ(ambiguous.status().code(), core::StatusCode::kInvalidConfig);
  EXPECT_NE(ambiguous.status().message().find("bracket"), std::string::npos)
      << ambiguous.status().message();
  for (const char* bad : {"[::1]", "[::1]:", "[::1]:abc", "[::1]x:80",
                          "[]:80", "[:80"}) {
    EXPECT_FALSE(parse_endpoint(bad).ok()) << "accepted '" << bad << "'";
  }
}

TEST(ServiceEndpoint, ResolvesDnsNameEndToEnd) {
  // "localhost" exercises the getaddrinfo path (a DNS name, not a dotted
  // quad); port 0 lets the kernel pick, bound_endpoint reports the real
  // port, and a client connects through the same resolver.
  const auto endpoint = parse_endpoint("localhost:0");
  ASSERT_TRUE(endpoint.ok()) << endpoint.status().to_string();
  const auto listener = listen_on(endpoint.value(), 4);
  ASSERT_TRUE(listener.ok()) << listener.status().to_string();
  const auto bound = bound_endpoint(listener.value(), endpoint.value());
  ASSERT_TRUE(bound.ok()) << bound.status().to_string();
  EXPECT_NE(bound.value().port, 0);
  const auto client = connect_to(bound.value());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  ::close(client.value());
  ::close(listener.value());
}

TEST(ServiceEndpoint, UnresolvableHostIsTypedInvalidConfig) {
  // RFC 2606 reserves .invalid: resolution must fail, and the failure is
  // the caller's typo (kInvalidConfig), not an internal error.
  const auto endpoint = parse_endpoint("rsmem-no-such-host.invalid:80");
  ASSERT_TRUE(endpoint.ok());
  const auto connected = connect_to(endpoint.value());
  ASSERT_FALSE(connected.ok());
  EXPECT_EQ(connected.status().code(), core::StatusCode::kInvalidConfig);
}

}  // namespace
}  // namespace rsmem::service
