// Wire-protocol unit tests: JSON round trips (bit-exact doubles),
// request/response codecs, canonical cache keys, endpoint parsing, and
// frame transport over a socketpair.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <thread>

#include "service/endpoint.h"
#include "service/json.h"
#include "service/protocol.h"

namespace rsmem::service {
namespace {

TEST(ServiceJson, ScalarRoundTrip) {
  const auto parsed = Json::parse(R"({"a":1.5,"b":true,"c":"x\n","d":null})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const Json& json = parsed.value();
  EXPECT_DOUBLE_EQ(json.number_or("a", 0), 1.5);
  EXPECT_TRUE(json.bool_or("b", false));
  EXPECT_EQ(json.string_or("c", ""), "x\n");
  ASSERT_NE(json.find("d"), nullptr);
  EXPECT_TRUE(json.find("d")->is_null());
  EXPECT_EQ(json.find("missing"), nullptr);
}

TEST(ServiceJson, DoubleSerializationIsBitExact) {
  // Values chosen to stress the 17-digit path: non-representable
  // decimals, denormal-ish magnitudes, and the paper's own rates.
  const double cases[] = {0.1,     1.0 / 3.0, 1.7e-5,     6.02214076e23,
                          5e-324,  1e-312,    0.49999999999999994,
                          1.313e-1, 2005.0};
  for (const double value : cases) {
    const std::string text = Json(value).serialize();
    const auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.ok());
    const double round_tripped = parsed.value().as_number();
    EXPECT_EQ(std::memcmp(&value, &round_tripped, sizeof value), 0)
        << "value " << value << " serialized as " << text;
  }
}

TEST(ServiceJson, NonFiniteBecomesNullBecomesNan) {
  const std::string text = Json(std::nan("")).serialize();
  EXPECT_EQ(text, "null");
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(std::isnan(parsed.value().as_number()));
}

TEST(ServiceJson, CanonicalObjectOrder) {
  const auto a = Json::parse(R"({"z":1,"a":2})");
  const auto b = Json::parse(R"({"a":2,"z":1})");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().serialize(), b.value().serialize());
}

TEST(ServiceJson, RejectsMalformed) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\":1}trailing").ok());
  EXPECT_FALSE(Json::parse("{'a':1}").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
}

TEST(ServiceJson, NumberGrammarIsStrictJson) {
  // strtod leniencies (NaN/Infinity spellings, hex floats, leading '+'
  // or zeros) must not cross the protocol boundary: a NaN smuggled into
  // a spec would defeat range validation downstream.
  EXPECT_FALSE(Json::parse("NaN").ok());
  EXPECT_FALSE(Json::parse("Infinity").ok());
  EXPECT_FALSE(Json::parse("-Infinity").ok());
  EXPECT_FALSE(Json::parse(R"({"spec":{"n":NaN}})").ok());
  EXPECT_FALSE(Json::parse("+1").ok());
  EXPECT_FALSE(Json::parse("0x1p3").ok());
  EXPECT_FALSE(Json::parse("01").ok());
  EXPECT_FALSE(Json::parse("1.").ok());
  EXPECT_FALSE(Json::parse(".5").ok());
  EXPECT_FALSE(Json::parse("1e").ok());
  EXPECT_FALSE(Json::parse("1e+").ok());
  EXPECT_FALSE(Json::parse("-").ok());
  // Valid spellings still parse.
  EXPECT_TRUE(Json::parse("-0").ok());
  EXPECT_TRUE(Json::parse("0.5e-3").ok());
  EXPECT_TRUE(Json::parse("1E6").ok());
}

TEST(ServiceJson, NumberParsingStopsAtViewEnd) {
  // Json::parse takes a string_view; the parser must not read past the
  // view's end even when the underlying buffer continues with digits
  // (strtod needs a NUL-terminated C string, the view is not one).
  const char buffer[] = "425";
  const auto parsed = Json::parse(std::string_view(buffer, 2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().as_number(), 42.0);
}

TEST(ServiceJson, NestingDepthBounded) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::parse(deep).ok());
}

Request paper_ber_request() {
  Request request;
  request.id = 7;
  request.kind = RequestKind::kBer;
  request.spec.arrangement = analysis::Arrangement::kDuplex;
  request.spec.code = {18, 16, 8, 1};
  request.spec.seu_rate_per_bit_day = 1e-2;
  request.spec.scrub_period_seconds = 3600.0;
  request.times_hours = {0.0, 24.0, 48.0};
  return request;
}

TEST(ServiceProtocol, RequestRoundTrip) {
  Request request = paper_ber_request();
  request.deadline_ms = 250.0;
  const auto decoded = Request::from_json(request.to_json());
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  const Request& back = decoded.value();
  EXPECT_EQ(back.id, request.id);
  EXPECT_EQ(back.kind, RequestKind::kBer);
  EXPECT_EQ(back.deadline_ms, 250.0);
  EXPECT_EQ(back.spec.arrangement, analysis::Arrangement::kDuplex);
  EXPECT_EQ(back.spec.code.n, 18u);
  EXPECT_EQ(back.spec.seu_rate_per_bit_day, 1e-2);
  EXPECT_EQ(back.times_hours, request.times_hours);
  EXPECT_EQ(canonical_cache_key(back), canonical_cache_key(request));
}

TEST(ServiceProtocol, SweepRoundTrip) {
  Request request;
  request.kind = RequestKind::kSweep;
  request.sweep_param = "tsc";
  request.sweep_values = {600.0, 1800.0};
  request.sweep_hours = 24.0;
  request.spec.seu_rate_per_bit_day = 1e-3;
  const auto decoded = Request::from_json(request.to_json());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sweep_param, "tsc");
  EXPECT_EQ(decoded.value().sweep_values, request.sweep_values);
  EXPECT_EQ(decoded.value().sweep_hours, 24.0);
}

TEST(ServiceProtocol, RequestRejections) {
  EXPECT_FALSE(Request::from_json("not json").ok());
  EXPECT_FALSE(Request::from_json("[]").ok());
  EXPECT_FALSE(Request::from_json(R"({"kind":"frobnicate"})").ok());
  // ber without times.
  EXPECT_FALSE(
      Request::from_json(R"({"kind":"ber","spec":{},"times_hours":[]})").ok());
  // negative deadline is a typed InvalidConfig.
  const auto rejected = Request::from_json(
      R"({"kind":"mttf","spec":{},"deadline_ms":-3})");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), core::StatusCode::kInvalidConfig);
  // sweep with an unknown parameter.
  EXPECT_FALSE(Request::from_json(
                   R"({"kind":"sweep","spec":{},"param":"zap","values":[1]})")
                   .ok());
  // malformed spec arrangement.
  EXPECT_FALSE(
      Request::from_json(
          R"({"kind":"mttf","spec":{"arrangement":"triplex"}})")
          .ok());
}

TEST(ServiceProtocol, SpecRejectsNonFiniteAndNonIntegral) {
  // 1e309 overflows to +inf in the parser; it must come back as a typed
  // InvalidConfig, never reach static_cast<unsigned> (undefined
  // behavior producing an arbitrary geometry).
  const auto inf_n =
      Request::from_json(R"({"kind":"mttf","spec":{"n":1e309}})");
  ASSERT_FALSE(inf_n.ok());
  EXPECT_EQ(inf_n.status().code(), core::StatusCode::kInvalidConfig);
  // Non-integral geometry would be silently truncated by the cast.
  EXPECT_FALSE(
      Request::from_json(R"({"kind":"mttf","spec":{"n":18.5}})").ok());
  // Rates and periods must be finite and non-negative.
  EXPECT_FALSE(
      Request::from_json(R"({"kind":"mttf","spec":{"seu":-1}})").ok());
  EXPECT_FALSE(
      Request::from_json(R"({"kind":"mttf","spec":{"tsc":1e400}})").ok());
  // JSON null maps to NaN in doubles_at (for result payloads); request
  // inputs must be real numbers.
  EXPECT_FALSE(
      Request::from_json(R"({"kind":"ber","spec":{},"times_hours":[null]})")
          .ok());
  EXPECT_FALSE(
      Request::from_json(
          R"({"kind":"sweep","spec":{},"param":"tsc","values":[1],"hours":-2})")
          .ok());
}

TEST(ServiceProtocol, ResponseRoundTrip) {
  Response response;
  response.id = 42;
  response.status = core::Status::ok();
  response.cache = CacheSource::kWait;
  response.compute_ms = 1.25;
  response.result_json = R"({"mttf_hours":34.3125})";
  const auto decoded = Response::from_json(response.to_json());
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_TRUE(decoded.value().status.is_ok());
  EXPECT_EQ(decoded.value().cache, CacheSource::kWait);
  EXPECT_EQ(decoded.value().result_json, response.result_json);
}

TEST(ServiceProtocol, ResponseCarriesTypedStatus) {
  Response response;
  response.id = 9;
  response.status = core::Status::overloaded("queue full");
  const auto decoded = Response::from_json(response.to_json());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status.code(), core::StatusCode::kOverloaded);
  EXPECT_EQ(decoded.value().status.message(), "queue full");

  response.status = core::Status::deadline_exceeded("too slow");
  const auto decoded2 = Response::from_json(response.to_json());
  ASSERT_TRUE(decoded2.ok());
  EXPECT_EQ(decoded2.value().status.code(),
            core::StatusCode::kDeadlineExceeded);
}

TEST(ServiceProtocol, CacheKeyCanonicalization) {
  const Request base = paper_ber_request();
  Request same = base;
  same.id = 999;            // ids are not semantic
  same.deadline_ms = 17.0;  // deadlines are not semantic
  EXPECT_EQ(canonical_cache_key(base), canonical_cache_key(same));

  Request different_rate = base;
  // A one-ulp rate change MUST change the key (bitwise canonicalization).
  different_rate.spec.seu_rate_per_bit_day =
      std::nextafter(base.spec.seu_rate_per_bit_day, 1.0);
  EXPECT_NE(canonical_cache_key(base), canonical_cache_key(different_rate));

  Request different_times = base;
  different_times.times_hours.back() += 1.0;
  EXPECT_NE(canonical_cache_key(base), canonical_cache_key(different_times));

  Request periodic = base;
  periodic.periodic = true;
  EXPECT_NE(canonical_cache_key(base), canonical_cache_key(periodic));

  Request control;
  control.kind = RequestKind::kPing;
  EXPECT_TRUE(canonical_cache_key(control).empty());
  control.kind = RequestKind::kStats;
  EXPECT_TRUE(canonical_cache_key(control).empty());

  EXPECT_NE(cache_key_hash(canonical_cache_key(base)),
            cache_key_hash(canonical_cache_key(different_rate)));
}

TEST(ServiceEndpoint, ParsesUnixAndTcp) {
  const auto unix_endpoint = parse_endpoint("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_endpoint.ok());
  EXPECT_EQ(unix_endpoint.value().kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_endpoint.value().path, "/tmp/x.sock");
  EXPECT_EQ(unix_endpoint.value().to_string(), "unix:/tmp/x.sock");

  const auto tcp = parse_endpoint("127.0.0.1:8080");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp.value().kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.value().host, "127.0.0.1");
  EXPECT_EQ(tcp.value().port, 8080);
  EXPECT_EQ(tcp.value().to_string(), "127.0.0.1:8080");
}

TEST(ServiceEndpoint, RejectsMalformed) {
  for (const char* bad :
       {"", "nocolon", "unix:", ":8080", "host:", "host:abc", "host:-1",
        "host:65536", "host:123456", "host:12 3"}) {
    const auto parsed = parse_endpoint(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted '" << bad << "'";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), core::StatusCode::kInvalidConfig)
          << bad;
    }
  }
}

TEST(ServiceFrames, RoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload(100000, 'x');  // forces several write() calls
  std::thread writer([&] {
    EXPECT_TRUE(write_frame(fds[0], "first").is_ok());
    EXPECT_TRUE(write_frame(fds[0], payload).is_ok());
    EXPECT_TRUE(write_frame(fds[0], "").is_ok());
    ::close(fds[0]);
  });
  auto frame = read_frame(fds[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().payload, "first");
  frame = read_frame(fds[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().payload, payload);
  frame = read_frame(fds[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().payload, "");
  frame = read_frame(fds[1]);  // orderly EOF
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame.value().eof);
  writer.join();
  ::close(fds[1]);
}

TEST(ServiceFrames, RejectsOversizedAnnouncement) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::write(fds[0], header, 4), 4);
  const auto frame = read_frame(fds[1]);
  EXPECT_FALSE(frame.ok());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServiceFrames, TruncationMidFrameIsAnError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char header[4] = {0, 0, 0, 10};  // promises 10 bytes
  ASSERT_EQ(::write(fds[0], header, 4), 4);
  ASSERT_EQ(::write(fds[0], "abc", 3), 3);
  ::close(fds[0]);
  const auto frame = read_frame(fds[1]);
  EXPECT_FALSE(frame.ok());
  ::close(fds[1]);
}

}  // namespace
}  // namespace rsmem::service
