// Unit, property and exhaustive tests for the errors-and-erasures RS codec.
#include "rs/reed_solomon.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "sim/rng.h"

namespace rsmem::rs {
namespace {

std::vector<Element> random_data(const ReedSolomon& code, sim::Rng& rng) {
  std::vector<Element> data(code.k());
  for (auto& d : data) {
    d = static_cast<Element>(rng.uniform_int(code.field().size()));
  }
  return data;
}

// Flips `word[pos]` to a different random symbol.
void corrupt_symbol(std::vector<Element>& word, unsigned pos,
                    const ReedSolomon& code, sim::Rng& rng) {
  const Element old = word[pos];
  Element nv;
  do {
    nv = static_cast<Element>(rng.uniform_int(code.field().size()));
  } while (nv == old);
  word[pos] = nv;
}

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(10, 10, 8), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(10, 12, 8), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(10, 0, 8), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(256, 250, 8), std::invalid_argument);  // n > 2^m-1
  EXPECT_THROW(ReedSolomon(18, 16, 1), std::invalid_argument);
}

TEST(ReedSolomon, PaperCodesConstruct) {
  const ReedSolomon rs1816{18, 16, 8};
  EXPECT_EQ(rs1816.parity_symbols(), 2u);
  EXPECT_EQ(rs1816.t(), 1u);
  const ReedSolomon rs3616{36, 16, 8};
  EXPECT_EQ(rs3616.parity_symbols(), 20u);
  EXPECT_EQ(rs3616.t(), 10u);
}

TEST(ReedSolomon, GeneratorHasExpectedRoots) {
  const ReedSolomon code{18, 16, 8};
  const auto& f = code.field();
  const auto& g = code.generator();
  EXPECT_EQ(g.degree(), 2);
  for (unsigned j = 0; j < code.parity_symbols(); ++j) {
    EXPECT_EQ(g.eval(f, f.alpha_pow(code.fcr() + j)), 0u);
  }
  // And no root at alpha^(fcr-1) or alpha^(fcr+n-k).
  EXPECT_NE(g.eval(f, f.alpha_pow(0)), 0u);
  EXPECT_NE(g.eval(f, f.alpha_pow(3)), 0u);
}

TEST(ReedSolomon, EncodeIsSystematic) {
  const ReedSolomon code{18, 16, 8};
  sim::Rng rng{7};
  const auto data = random_data(code, rng);
  const auto cw = code.encode(data);
  ASSERT_EQ(cw.size(), 18u);
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(cw[i], data[i]);
  EXPECT_TRUE(code.is_codeword(cw));
  EXPECT_EQ(code.extract_data(cw), data);
}

// The table-driven LFSR encoder must reproduce the Poly::mod reference
// exactly, for every code shape the paper uses plus an m > 8 code (no dense
// multiplication table) and a non-default fcr.
TEST(ReedSolomon, FastEncodeMatchesLegacyEncode) {
  const CodeParams shapes[] = {
      {18, 16, 8, 1, 0},  {36, 16, 8, 1, 0}, {255, 223, 8, 1, 0},
      {15, 11, 4, 1, 0},  {3, 1, 2, 1, 0},   {18, 16, 8, 0, 0},
      {100, 88, 10, 1, 0},
  };
  for (const CodeParams& p : shapes) {
    const ReedSolomon code{p};
    sim::Rng rng{p.n * 1000 + p.k};
    for (int rep = 0; rep < 50; ++rep) {
      const auto data = random_data(code, rng);
      std::vector<Element> fast(code.n()), legacy(code.n());
      code.encode(data, fast);
      code.encode_legacy(data, legacy);
      ASSERT_EQ(fast, legacy) << "n=" << p.n << " k=" << p.k << " m=" << p.m
                              << " fcr=" << p.fcr << " rep=" << rep;
      EXPECT_TRUE(code.is_codeword(fast));
    }
  }
}

TEST(ReedSolomon, EncodeRejectsBadSizes) {
  const ReedSolomon code{18, 16, 8};
  std::vector<Element> short_data(15, 0);
  EXPECT_THROW(code.encode(short_data), std::invalid_argument);
  std::vector<Element> bad_symbol(16, 0);
  bad_symbol[3] = 256;  // out of GF(256)
  EXPECT_THROW(code.encode(bad_symbol), std::invalid_argument);
}

TEST(ReedSolomon, CodeIsLinear) {
  const ReedSolomon code{18, 16, 8};
  sim::Rng rng{21};
  const auto d1 = random_data(code, rng);
  const auto d2 = random_data(code, rng);
  std::vector<Element> sum(code.k());
  for (unsigned i = 0; i < code.k(); ++i) {
    sum[i] = gf::GaloisField::add(d1[i], d2[i]);
  }
  const auto c1 = code.encode(d1);
  const auto c2 = code.encode(d2);
  const auto cs = code.encode(sum);
  for (unsigned i = 0; i < code.n(); ++i) {
    EXPECT_EQ(cs[i], gf::GaloisField::add(c1[i], c2[i]));
  }
}

TEST(ReedSolomon, DecodeCleanWordIsNoError) {
  const ReedSolomon code{18, 16, 8};
  sim::Rng rng{3};
  auto cw = code.encode(random_data(code, rng));
  const auto outcome = code.decode(cw);
  EXPECT_EQ(outcome.status, DecodeStatus::kNoError);
  EXPECT_FALSE(outcome.correction_flag());
}

TEST(ReedSolomon, DecodeValidatesInputs) {
  const ReedSolomon code{18, 16, 8};
  std::vector<Element> word(17, 0);
  EXPECT_THROW(code.decode(word), std::invalid_argument);
  std::vector<Element> ok(18, 0);
  const unsigned bad_pos[] = {18};
  EXPECT_THROW(code.decode(ok, bad_pos), std::invalid_argument);
  const unsigned dup[] = {3, 3};
  EXPECT_THROW(code.decode(ok, dup), std::invalid_argument);
}

// ---- Exhaustive single-error correction for the paper's RS(18,16). ----

TEST(ReedSolomon, Rs1816CorrectsEverySingleSymbolError) {
  const ReedSolomon code{18, 16, 8};
  sim::Rng rng{11};
  const auto data = random_data(code, rng);
  const auto cw = code.encode(data);
  for (unsigned pos = 0; pos < code.n(); ++pos) {
    for (unsigned bit = 0; bit < code.m(); ++bit) {
      auto word = cw;
      word[pos] ^= (1u << bit);  // an SEU is a single bit flip
      const auto outcome = code.decode(word);
      ASSERT_EQ(outcome.status, DecodeStatus::kCorrected)
          << "pos=" << pos << " bit=" << bit;
      EXPECT_EQ(outcome.errors_corrected, 1u);
      EXPECT_EQ(word, cw);
    }
  }
}

TEST(ReedSolomon, Rs1816CorrectsEveryDoubleErasure) {
  const ReedSolomon code{18, 16, 8};
  sim::Rng rng{13};
  const auto cw = code.encode(random_data(code, rng));
  for (unsigned p1 = 0; p1 < code.n(); ++p1) {
    for (unsigned p2 = p1 + 1; p2 < code.n(); ++p2) {
      auto word = cw;
      corrupt_symbol(word, p1, code, rng);
      corrupt_symbol(word, p2, code, rng);
      const unsigned erasures[] = {p1, p2};
      const auto outcome = code.decode(word, erasures);
      ASSERT_TRUE(outcome.ok()) << "p1=" << p1 << " p2=" << p2;
      EXPECT_EQ(word, cw);
      EXPECT_EQ(outcome.errors_corrected, 0u);
    }
  }
}

TEST(ReedSolomon, Rs1816ErasedPositionsMayHoldAnyGarbage) {
  const ReedSolomon code{18, 16, 8};
  sim::Rng rng{17};
  const auto cw = code.encode(random_data(code, rng));
  // The erased symbol might read as ANY value (stuck bits): all must decode.
  for (unsigned p = 0; p < code.n(); p += 5) {
    for (Element v = 0; v < code.field().size(); v += 17) {
      auto word = cw;
      word[p] = v;
      const unsigned erasures[] = {p};
      const auto outcome = code.decode(word, erasures);
      ASSERT_TRUE(outcome.ok());
      EXPECT_EQ(word, cw);
    }
  }
}

TEST(ReedSolomon, Rs1816DetectsOrMiscorrectsBeyondCapability) {
  const ReedSolomon code{18, 16, 8};
  sim::Rng rng{19};
  const auto cw = code.encode(random_data(code, rng));
  unsigned detected = 0;
  unsigned miscorrected = 0;
  for (int iter = 0; iter < 500; ++iter) {
    auto word = cw;
    // Two random errors exceed t=1.
    const unsigned p1 = static_cast<unsigned>(rng.uniform_int(code.n()));
    unsigned p2;
    do {
      p2 = static_cast<unsigned>(rng.uniform_int(code.n()));
    } while (p2 == p1);
    corrupt_symbol(word, p1, code, rng);
    corrupt_symbol(word, p2, code, rng);
    const auto outcome = code.decode(word);
    if (outcome.status == DecodeStatus::kFailure) {
      ++detected;
    } else {
      // Mis-correction: the decoder must still have produced a VALID
      // codeword (never garbage) different from the original.
      ASSERT_EQ(outcome.status, DecodeStatus::kCorrected);
      EXPECT_TRUE(code.is_codeword(word));
      EXPECT_NE(word, cw);
      ++miscorrected;
    }
  }
  // Both behaviours must actually occur for the duplex arbiter analysis to
  // be meaningful.
  EXPECT_GT(detected, 0u);
  EXPECT_GT(miscorrected, 0u);
}

TEST(ReedSolomon, Rs1816ThreeErasuresFail) {
  const ReedSolomon code{18, 16, 8};
  sim::Rng rng{23};
  auto cw = code.encode(random_data(code, rng));
  corrupt_symbol(cw, 0, code, rng);
  corrupt_symbol(cw, 5, code, rng);
  corrupt_symbol(cw, 9, code, rng);
  const unsigned erasures[] = {0, 5, 9};
  EXPECT_EQ(code.decode(cw, erasures).status, DecodeStatus::kFailure);
}

TEST(ReedSolomon, Rs1816ErasurePlusErrorFails) {
  // 1 erasure + 1 random error needs 1 + 2 = 3 > n-k = 2.
  const ReedSolomon code{18, 16, 8};
  sim::Rng rng{29};
  const auto cw = code.encode(random_data(code, rng));
  unsigned ok_count = 0;
  for (int iter = 0; iter < 200; ++iter) {
    auto word = cw;
    corrupt_symbol(word, 2, code, rng);
    corrupt_symbol(word, 11, code, rng);
    const unsigned erasures[] = {2};
    const auto outcome = code.decode(word, erasures);
    if (outcome.ok() && word == cw) ++ok_count;
  }
  // The pattern exceeds the guaranteed budget; correct decoding every time
  // would indicate the capability check is wrong.
  EXPECT_LT(ok_count, 200u);
}

// ---- Parameterized sweep over codes: every in-budget pattern decodes. ----

struct CodeCase {
  unsigned n, k, m;
};

class RsCapabilitySweep : public ::testing::TestWithParam<CodeCase> {};

TEST_P(RsCapabilitySweep, AllPatternsWithinBudgetDecode) {
  const auto [n, k, m] = GetParam();
  const ReedSolomon code{n, k, m};
  sim::Rng rng{n * 100 + k};
  const unsigned budget = code.parity_symbols();
  for (unsigned er = 0; er <= budget; ++er) {
    for (unsigned re = 0; 2 * re + er <= budget; ++re) {
      // Several random placements per (er, re) combination.
      for (int rep = 0; rep < 8; ++rep) {
        const auto data = random_data(code, rng);
        const auto cw = code.encode(data);
        auto word = cw;
        // Choose er + re distinct positions.
        std::set<unsigned> positions;
        while (positions.size() < er + re) {
          positions.insert(static_cast<unsigned>(rng.uniform_int(n)));
        }
        std::vector<unsigned> pos_list(positions.begin(), positions.end());
        std::vector<unsigned> erasures(pos_list.begin(),
                                       pos_list.begin() + er);
        for (const unsigned p : pos_list) corrupt_symbol(word, p, code, rng);
        const auto outcome = code.decode(word, erasures);
        ASSERT_TRUE(outcome.ok())
            << "n=" << n << " k=" << k << " er=" << er << " re=" << re;
        EXPECT_EQ(word, cw);
        EXPECT_EQ(outcome.errors_corrected, re);
        EXPECT_EQ(outcome.erasures_corrected, er);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, RsCapabilitySweep,
    ::testing::Values(CodeCase{18, 16, 8},   // the paper's main code
                      CodeCase{36, 16, 8},   // the paper's comparison code
                      CodeCase{15, 11, 4},   // classic full-length RS
                      CodeCase{7, 3, 3},     // small full-length
                      CodeCase{12, 8, 4},    // shortened
                      CodeCase{255, 223, 8}  // CCSDS-size
                      ));

// ---- Exhaustive decode over a whole small code. ----

TEST(ReedSolomon, ExhaustiveRs73OverGf8) {
  // RS(7,3) over GF(8): t=2. Enumerate EVERY dataword, one random 2-error
  // pattern each, plus every (er=2, re=1) pattern on a fixed word.
  const ReedSolomon code{7, 3, 3};
  sim::Rng rng{31};
  for (Element d0 = 0; d0 < 8; ++d0) {
    for (Element d1 = 0; d1 < 8; ++d1) {
      for (Element d2 = 0; d2 < 8; ++d2) {
        const std::vector<Element> data{d0, d1, d2};
        const auto cw = code.encode(data);
        auto word = cw;
        corrupt_symbol(word, static_cast<unsigned>(d0 % 7), code, rng);
        unsigned other = static_cast<unsigned>((d0 + 1 + d1 % 6) % 7);
        corrupt_symbol(word, other, code, rng);
        const auto outcome = code.decode(word);
        ASSERT_TRUE(outcome.ok());
        EXPECT_EQ(word, cw);
      }
    }
  }
  const auto cw = code.encode(std::vector<Element>{1, 2, 3});
  for (unsigned e1 = 0; e1 < 7; ++e1) {
    for (unsigned e2 = e1 + 1; e2 < 7; ++e2) {
      for (unsigned re = 0; re < 7; ++re) {
        if (re == e1 || re == e2) continue;
        auto word = cw;
        corrupt_symbol(word, e1, code, rng);
        corrupt_symbol(word, e2, code, rng);
        corrupt_symbol(word, re, code, rng);
        const unsigned erasures[] = {e1, e2};
        const auto outcome = code.decode(word, erasures);
        ASSERT_TRUE(outcome.ok()) << e1 << "," << e2 << "," << re;
        EXPECT_EQ(word, cw);
      }
    }
  }
}

TEST(ReedSolomon, FcrVariantsRoundTrip) {
  for (const unsigned fcr : {0u, 1u, 2u, 5u}) {
    const ReedSolomon code{CodeParams{18, 16, 8, fcr}};
    sim::Rng rng{fcr + 41};
    const auto cw = code.encode(random_data(code, rng));
    auto word = cw;
    corrupt_symbol(word, 7, code, rng);
    const auto outcome = code.decode(word);
    ASSERT_TRUE(outcome.ok()) << "fcr=" << fcr;
    EXPECT_EQ(word, cw);
  }
}

TEST(ReedSolomon, PureErasuresUpToBudgetOnBigCode) {
  const ReedSolomon code{36, 16, 8};
  sim::Rng rng{53};
  const auto cw = code.encode(random_data(code, rng));
  auto word = cw;
  std::vector<unsigned> erasures;
  for (unsigned i = 0; i < 20; ++i) {  // full budget n-k = 20
    erasures.push_back(i);
    corrupt_symbol(word, i, code, rng);
  }
  const auto outcome = code.decode(word, erasures);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(word, cw);
  EXPECT_EQ(outcome.erasures_corrected, 20u);
}

TEST(ReedSolomon, MixedBudgetBoundaryOnBigCode) {
  // er + 2 re = 20 exactly: 10 erasures + 5 errors.
  const ReedSolomon code{36, 16, 8};
  sim::Rng rng{59};
  const auto cw = code.encode(random_data(code, rng));
  auto word = cw;
  std::vector<unsigned> erasures;
  for (unsigned i = 0; i < 10; ++i) {
    erasures.push_back(2 * i);
    corrupt_symbol(word, 2 * i, code, rng);
  }
  for (unsigned i = 0; i < 5; ++i) {
    corrupt_symbol(word, 21 + 2 * i, code, rng);
  }
  const auto outcome = code.decode(word, erasures);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(word, cw);
  EXPECT_EQ(outcome.errors_corrected, 5u);
  EXPECT_EQ(outcome.erasures_corrected, 10u);
}

}  // namespace
}  // namespace rsmem::rs
