// Exhaustive and property tests for the SEC-DED baseline codec.
#include "codes/secded.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "models/baselines.h"
#include "sim/rng.h"

namespace rsmem::codes {
namespace {

std::vector<std::uint8_t> random_bits(sim::Rng& rng, unsigned count) {
  std::vector<std::uint8_t> bits(count);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  return bits;
}

TEST(SecDed, GeometryOfClassicConfigurations) {
  // (72, 64): r = 7 Hamming parities + overall parity.
  const SecDed h64{64};
  EXPECT_EQ(h64.parity_bits(), 8u);
  EXPECT_EQ(h64.codeword_bits(), 72u);
  EXPECT_DOUBLE_EQ(h64.overhead(), 72.0 / 64.0);
  // (39, 32) and (22, 16).
  EXPECT_EQ(SecDed{32}.codeword_bits(), 39u);
  EXPECT_EQ(SecDed{16}.codeword_bits(), 22u);
  // (8, 4): the original extended Hamming code.
  EXPECT_EQ(SecDed{4}.codeword_bits(), 8u);
  EXPECT_THROW(SecDed{0}, std::invalid_argument);
}

TEST(SecDed, EncodeIsSystematicAndValid) {
  const SecDed code{64};
  sim::Rng rng{1};
  for (int trial = 0; trial < 50; ++trial) {
    const auto data = random_bits(rng, 64);
    const auto cw = code.encode(data);
    EXPECT_TRUE(code.is_codeword(cw));
    EXPECT_EQ(code.extract_data(cw), data);
  }
}

TEST(SecDed, InputValidation) {
  const SecDed code{16};
  std::vector<std::uint8_t> short_data(15, 0);
  EXPECT_THROW(code.encode(short_data), std::invalid_argument);
  std::vector<std::uint8_t> non_binary(16, 0);
  non_binary[5] = 2;
  EXPECT_THROW(code.encode(non_binary), std::invalid_argument);
  std::vector<std::uint8_t> wrong_size(21, 0);
  EXPECT_THROW(code.decode(wrong_size), std::invalid_argument);
  EXPECT_FALSE(code.is_codeword(wrong_size));
}

TEST(SecDed, CleanDecode) {
  const SecDed code{64};
  sim::Rng rng{2};
  auto cw = code.encode(random_bits(rng, 64));
  const SecDedOutcome outcome = code.decode(cw);
  EXPECT_EQ(outcome.status, SecDedStatus::kClean);
}

TEST(SecDed, CorrectsEverySingleBitExhaustively) {
  const SecDed code{64};
  sim::Rng rng{3};
  const auto data = random_bits(rng, 64);
  const auto cw = code.encode(data);
  for (unsigned bit = 0; bit < code.codeword_bits(); ++bit) {
    auto word = cw;
    word[bit] ^= 1u;
    const SecDedOutcome outcome = code.decode(word);
    ASSERT_EQ(outcome.status, SecDedStatus::kCorrected) << "bit " << bit;
    EXPECT_EQ(outcome.corrected_bit, bit);
    EXPECT_EQ(word, cw);
  }
}

TEST(SecDed, DetectsEveryDoubleBitExhaustively) {
  const SecDed code{64};
  sim::Rng rng{4};
  const auto cw = code.encode(random_bits(rng, 64));
  for (unsigned b1 = 0; b1 < code.codeword_bits(); ++b1) {
    for (unsigned b2 = b1 + 1; b2 < code.codeword_bits(); ++b2) {
      auto word = cw;
      word[b1] ^= 1u;
      word[b2] ^= 1u;
      const SecDedOutcome outcome = code.decode(word);
      ASSERT_EQ(outcome.status, SecDedStatus::kDetectedDouble)
          << "bits " << b1 << "," << b2;
    }
  }
}

TEST(SecDed, SmallCodeFullyExhaustive) {
  // (8,4): every dataword, every single and double error.
  const SecDed code{4};
  for (unsigned d = 0; d < 16; ++d) {
    std::vector<std::uint8_t> data(4);
    for (unsigned i = 0; i < 4; ++i) data[i] = (d >> i) & 1u;
    const auto cw = code.encode(data);
    ASSERT_TRUE(code.is_codeword(cw));
    for (unsigned b1 = 0; b1 < 8; ++b1) {
      auto word = cw;
      word[b1] ^= 1u;
      ASSERT_EQ(code.decode(word).status, SecDedStatus::kCorrected);
      ASSERT_EQ(word, cw);
      for (unsigned b2 = b1 + 1; b2 < 8; ++b2) {
        auto w2 = cw;
        w2[b1] ^= 1u;
        w2[b2] ^= 1u;
        ASSERT_EQ(code.decode(w2).status, SecDedStatus::kDetectedDouble);
      }
    }
  }
}

TEST(SecDed, TripleErrorsNeverSilentlyPassAsClean) {
  // Distance 4: a triple error can mis-correct (to a wrong codeword) but
  // can never look clean. Check a sweep.
  const SecDed code{64};
  sim::Rng rng{5};
  const auto cw = code.encode(random_bits(rng, 64));
  int miscorrected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    auto word = cw;
    unsigned bits[3];
    bits[0] = static_cast<unsigned>(rng.uniform_int(72));
    do {
      bits[1] = static_cast<unsigned>(rng.uniform_int(72));
    } while (bits[1] == bits[0]);
    do {
      bits[2] = static_cast<unsigned>(rng.uniform_int(72));
    } while (bits[2] == bits[0] || bits[2] == bits[1]);
    for (const unsigned b : bits) word[b] ^= 1u;
    const SecDedOutcome outcome = code.decode(word);
    ASSERT_NE(outcome.status, SecDedStatus::kClean);
    if (outcome.status == SecDedStatus::kCorrected) {
      // Must have produced a VALID (if wrong) codeword.
      EXPECT_TRUE(code.is_codeword(word));
      EXPECT_NE(word, cw);
      ++miscorrected;
    }
  }
  // Odd-weight patterns with a used-position syndrome mis-correct; both
  // behaviours exist.
  EXPECT_GT(miscorrected, 0);
  EXPECT_LT(miscorrected, 2000);
}

TEST(SecDed, ClosedFormMatchesMonteCarlo) {
  // Failure = >= 2 wrong bits in the 72-bit word; cross-check the analytic
  // model against the real codec under random per-bit flips.
  models::BaselineParams p;
  p.seu_rate_per_bit_hour = 1e-3;
  const double t = 48.0;
  const double q = models::bit_wrong_probability(p, t);
  const double predicted = models::secded_word_fail(p, t, 72);

  const SecDed code{64};
  sim::Rng rng{6};
  int failures = 0;
  const int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto data = random_bits(rng, 64);
    auto cw = code.encode(data);
    const auto truth = cw;
    for (unsigned b = 0; b < 72; ++b) {
      if (rng.uniform() < q) cw[b] ^= 1u;
    }
    const SecDedOutcome outcome = code.decode(cw);
    failures += (!outcome.ok() || cw != truth);
  }
  const double p_hat = static_cast<double>(failures) / kTrials;
  const double se = std::sqrt(predicted * (1.0 - predicted) / kTrials);
  EXPECT_NEAR(p_hat, predicted, 4.0 * se + 1e-3);
}

TEST(SecDed, ClosedFormValidation) {
  models::BaselineParams p;
  EXPECT_THROW(models::secded_word_fail(p, 1.0, 1), std::invalid_argument);
  p.seu_rate_per_bit_hour = 1e-4;
  EXPECT_DOUBLE_EQ(models::secded_word_fail(p, 0.0, 72), 0.0);
}

}  // namespace
}  // namespace rsmem::codes
