// Tests for the whole-array SSMM simulation and multi-bit-upset support.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "markov/uniformization.h"
#include "memory/fault_injector.h"
#include "memory/interleaved_array.h"
#include "memory/ssmm.h"
#include "models/ber.h"
#include "sim/event_queue.h"

namespace rsmem::memory {
namespace {

TEST(Ssmm, ValidatesInputs) {
  SsmmConfig cfg;
  cfg.words = 0;
  const double times[] = {1.0};
  EXPECT_THROW(run_ssmm_mission(cfg, times), std::invalid_argument);
  cfg.words = 4;
  const double unsorted[] = {2.0, 1.0};
  EXPECT_THROW(run_ssmm_mission(cfg, unsorted), std::invalid_argument);
}

TEST(Ssmm, NoFaultsMeansZeroBer) {
  SsmmConfig cfg;
  cfg.words = 16;
  const double times[] = {24.0, 48.0};
  const auto checkpoints = run_ssmm_mission(cfg, times);
  ASSERT_EQ(checkpoints.size(), 2u);
  for (const auto& cp : checkpoints) {
    EXPECT_EQ(cp.words_read, 16u);
    EXPECT_EQ(cp.bits_read, 16u * 16 * 8);
    EXPECT_EQ(cp.bits_in_error, 0u);
    EXPECT_DOUBLE_EQ(cp.measured_ber(), 0.0);
  }
}

TEST(Ssmm, MeasuredBerTracksMarkovAtAcceleratedRates) {
  SsmmConfig cfg;
  cfg.words = 600;
  cfg.rates.seu_rate_per_bit_hour = 1e-4;
  cfg.seed = 99;
  const double times[] = {48.0};
  const auto checkpoints = run_ssmm_mission(cfg, times);
  const auto& cp = checkpoints.front();

  models::SimplexParams params;
  params.n = 18;
  params.k = 16;
  params.m = 8;
  params.seu_rate_per_bit_hour = 1e-4;
  const std::vector<double> t{48.0};
  const double predicted =
      models::simplex_ber_curve(params, t, markov::UniformizationSolver{})
          .fail_probability[0];
  // Word-level failure fraction ~ Binomial(600, predicted): 4-sigma band.
  const double se = std::sqrt(predicted * (1.0 - predicted) / 600.0);
  EXPECT_NEAR(cp.word_fail_fraction(), predicted, 4.0 * se + 1e-3);
  // Failed reads dominate the operational BER (every failed word counts all
  // its bits), so measured BER ~ word failure fraction here.
  EXPECT_NEAR(cp.measured_ber(), cp.word_fail_fraction(),
              0.3 * cp.word_fail_fraction() + 1e-3);
}

TEST(Ssmm, CumulativeCheckpointsAreMonotoneUnderPureDecay) {
  // With no scrubbing, damage only accumulates, so the failure fraction at
  // the later checkpoint must be >= the earlier one (same words).
  SsmmConfig cfg;
  cfg.words = 300;
  cfg.rates.seu_rate_per_bit_hour = 6e-5;
  cfg.seed = 123;
  const double times[] = {24.0, 48.0};
  const auto checkpoints = run_ssmm_mission(cfg, times);
  EXPECT_GE(checkpoints[1].word_fail_fraction(),
            checkpoints[0].word_fail_fraction());
}

TEST(Ssmm, DuplexArrayBeatsSimplexUnderPermanentFaults) {
  SsmmConfig cfg;
  cfg.words = 200;
  cfg.rates.perm_rate_per_symbol_hour = 5e-3;
  cfg.seed = 7;
  const double times[] = {48.0};
  const auto simplex = run_ssmm_mission(cfg, times);
  cfg.duplex = true;
  const auto duplex = run_ssmm_mission(cfg, times);
  EXPECT_LT(duplex[0].word_fail_fraction() + 1e-12,
            simplex[0].word_fail_fraction());
}

TEST(Ssmm, ScrubbedArrayOutlivesUnscrubbed) {
  SsmmConfig cfg;
  cfg.words = 150;
  cfg.rates.seu_rate_per_bit_hour = 1e-3;
  cfg.seed = 31;
  const double times[] = {48.0};
  const auto plain = run_ssmm_mission(cfg, times);
  cfg.scrub_policy = ScrubPolicy::kPeriodic;
  cfg.scrub_period_hours = 0.1;
  const auto scrubbed = run_ssmm_mission(cfg, times);
  EXPECT_LT(scrubbed[0].word_fail_fraction(),
            plain[0].word_fail_fraction() * 0.5);
}

TEST(Mbu, InjectorValidation) {
  sim::EventQueue q;
  MemoryModule mod{18, 8};
  FaultRates rates;
  rates.seu_rate_per_bit_hour = 1.0;
  rates.mbu_probability = 1.5;
  EXPECT_THROW(FaultInjector(rates, sim::Rng{1}, q, mod),
               std::invalid_argument);
  rates.mbu_probability = 0.5;
  rates.mbu_span_bits = 1;
  EXPECT_THROW(FaultInjector(rates, sim::Rng{1}, q, mod),
               std::invalid_argument);
  rates.mbu_span_bits = 18 * 8 + 1;
  EXPECT_THROW(FaultInjector(rates, sim::Rng{1}, q, mod),
               std::invalid_argument);
}

TEST(Mbu, BurstsFlipAdjacentBits) {
  sim::EventQueue q;
  MemoryModule mod{4, 8};
  mod.write(std::vector<Element>(4, 0));
  FaultRates rates;
  rates.seu_rate_per_bit_hour = 1.0;
  rates.mbu_probability = 1.0;  // every arrival is a burst
  rates.mbu_span_bits = 2;
  FaultInjector inj{rates, sim::Rng{3}, q, mod};
  inj.start();
  // Run until exactly one arrival happened.
  while (inj.seu_injected() == 0) q.step();
  // Exactly two bits flipped, adjacent in linear order.
  unsigned flipped = 0;
  int first = -1, second = -1;
  const auto word = mod.read();
  for (unsigned s = 0; s < 4; ++s) {
    for (unsigned b = 0; b < 8; ++b) {
      if (word[s] & (1u << b)) {
        ++flipped;
        if (first < 0) {
          first = static_cast<int>(s * 8 + b);
        } else {
          second = static_cast<int>(s * 8 + b);
        }
      }
    }
  }
  ASSERT_EQ(flipped, 2u);
  EXPECT_EQ(second - first, 1);
}

TEST(Mbu, ModelValidation) {
  models::SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1.0;
  p.mbu_probability = -0.1;
  EXPECT_THROW(models::SimplexModel{p}, std::invalid_argument);
  p.mbu_probability = 0.5;
  p.mbu_span_bits = 9;  // > m
  EXPECT_THROW(models::SimplexModel{p}, std::invalid_argument);
}

TEST(Mbu, ChainDegradesBerAsMbuFractionGrows) {
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  double prev = 0.0;
  for (const double p_mbu : {0.0, 0.1, 0.5, 1.0}) {
    models::SimplexParams p;
    p.n = 18;
    p.k = 16;
    p.m = 8;
    p.seu_rate_per_bit_hour = 1e-4;
    p.mbu_probability = p_mbu;
    const double ber =
        models::simplex_ber_curve(p, times, solver).fail_probability[0];
    EXPECT_GT(ber, prev) << "p_mbu=" << p_mbu;
    prev = ber;
  }
}

TEST(Mbu, FunctionalMatchesMeanFieldChain) {
  // 2-bit bursts at 50% MBU fraction, accelerated: the mean-field chain
  // must predict the functional failure fraction within a 4-sigma band.
  SsmmConfig cfg;
  cfg.words = 600;
  cfg.rates.seu_rate_per_bit_hour = 1e-4;
  cfg.rates.mbu_probability = 0.5;
  cfg.rates.mbu_span_bits = 2;
  cfg.seed = 777;
  const double times[] = {48.0};
  const auto checkpoints = run_ssmm_mission(cfg, times);

  models::SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1e-4;
  p.mbu_probability = 0.5;
  p.mbu_span_bits = 2;
  const std::vector<double> t{48.0};
  const double predicted =
      models::simplex_ber_curve(p, t, markov::UniformizationSolver{})
          .fail_probability[0];
  const double se = std::sqrt(predicted * (1.0 - predicted) / 600.0);
  EXPECT_NEAR(checkpoints[0].word_fail_fraction(), predicted,
              4.0 * se + 2e-3);
}

TEST(Mbu, InSymbolBurstsAreAbsorbedByTheCode) {
  // Bursts confined inside one symbol (span=2 with aligned flips crossing
  // rarely): compare pure single-bit flips against 100% MBU bursts of span
  // 2 -- the failure fraction rises only by the boundary-crossing fraction
  // q = (n-1)/(n*m-1) ~ 12%, NOT by 2x, because RS corrects symbols.
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  models::SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 5e-5;
  const double single =
      models::simplex_ber_curve(p, times, solver).fail_probability[0];
  p.mbu_probability = 1.0;
  const double burst =
      models::simplex_ber_curve(p, times, solver).fail_probability[0];
  EXPECT_GT(burst, single);
  EXPECT_LT(burst, single * 2.0);
}

TEST(InterleavedArray, Validation) {
  InterleavedArrayConfig cfg;
  cfg.depth = 0;
  EXPECT_THROW(run_interleaved_trial(cfg, 1.0), std::invalid_argument);
  cfg.depth = 1;
  EXPECT_THROW(run_interleaved_trial(cfg, -1.0), std::invalid_argument);
  cfg.rates.mbu_probability = 0.5;
  cfg.rates.mbu_span_bits = 1;
  EXPECT_THROW(run_interleaved_trial(cfg, 1.0), std::invalid_argument);
  EXPECT_THROW(interleaved_fail_fraction(InterleavedArrayConfig{}, 1.0, 0),
               std::invalid_argument);
}

TEST(InterleavedArray, NoFaultsNoFailures) {
  InterleavedArrayConfig cfg;
  cfg.depth = 4;
  const InterleavedTrialResult r = run_interleaved_trial(cfg, 48.0);
  EXPECT_EQ(r.words, 4u);
  EXPECT_EQ(r.failed_words(), 0u);
  EXPECT_EQ(r.seu_arrivals, 0u);
  EXPECT_DOUBLE_EQ(r.fail_fraction(), 0.0);
}

TEST(InterleavedArray, DeterministicGivenSeed) {
  InterleavedArrayConfig cfg;
  cfg.depth = 2;
  cfg.rates.seu_rate_per_bit_hour = 1e-3;
  cfg.seed = 1234;
  const InterleavedTrialResult a = run_interleaved_trial(cfg, 48.0);
  const InterleavedTrialResult b = run_interleaved_trial(cfg, 48.0);
  EXPECT_EQ(a.seu_arrivals, b.seu_arrivals);
  EXPECT_EQ(a.failed_words(), b.failed_words());
}

TEST(InterleavedArray, SingleBitSeuMatchesPlainLayoutStatistics) {
  // Without bursts, depth must not change the per-word failure statistics
  // (the interleaving map is a bijection on bits).
  InterleavedArrayConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 8e-5;
  cfg.seed = 777;
  cfg.depth = 1;
  const double d1 = interleaved_fail_fraction(cfg, 48.0, 20000);
  cfg.depth = 4;
  const double d4 = interleaved_fail_fraction(cfg, 48.0, 5000);
  // Same expected value; allow 4-sigma binomial wiggle on ~20k words each.
  const double se = std::sqrt(d1 * (1.0 - d1) / 20000.0);
  EXPECT_NEAR(d4, d1, 4.0 * se + 1e-3);
}

TEST(InterleavedArray, DepthAtLeastSpanSuppressesBurstKills) {
  // Rare-burst regime: with depth >= span, one burst can no longer put two
  // symbol errors into the same codeword, so the fail fraction drops well
  // below the plain layout's.
  InterleavedArrayConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 2e-6;
  cfg.rates.mbu_probability = 1.0;
  cfg.rates.mbu_span_bits = 4;
  cfg.seed = 4242;
  cfg.depth = 1;
  const double d1 = interleaved_fail_fraction(cfg, 48.0, 60000);
  cfg.depth = 4;
  const double d4 = interleaved_fail_fraction(cfg, 48.0, 15000);
  EXPECT_GT(d1, 0.0);
  EXPECT_LT(d4, d1 * 0.6);
}

}  // namespace
}  // namespace rsmem::memory
