// Tests for the modular-sparing (dynamic redundancy) model.
#include "models/sparing_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "markov/absorption.h"

namespace rsmem::models {
namespace {

TEST(SparingModel, Validation) {
  SparingParams p;
  p.active_modules = 0;
  EXPECT_THROW(SparingModel{p}, std::invalid_argument);
  p.active_modules = 4;
  p.coverage = 1.5;
  EXPECT_THROW(SparingModel{p}, std::invalid_argument);
  p.coverage = 1.0;
  p.spare_ageing_fraction = -0.5;
  EXPECT_THROW(SparingModel{p}, std::invalid_argument);
  p.spare_ageing_fraction = 0.0;
  p.module_fail_rate_per_hour = -1.0;
  EXPECT_THROW(SparingModel{p}, std::invalid_argument);
}

TEST(SparingModel, NoSparesIsSeriesSystem) {
  // S = 0: first failure of any of M modules is fatal:
  // R(t) = exp(-M lambda t), MTTF = 1/(M lambda).
  SparingParams p;
  p.active_modules = 8;
  p.spares = 0;
  p.module_fail_rate_per_hour = 1e-3;
  const SparingModel model{p};
  const double t = 200.0;
  EXPECT_NEAR(model.reliability_at(t), std::exp(-8e-3 * t), 1e-12);
  EXPECT_NEAR(model.mttf_hours(), 1.0 / 8e-3, 1e-9);
}

TEST(SparingModel, ColdSparesPerfectCoverageIsErlang) {
  // Cold spares, c = 1: time to Down is the sum of S+1 iid exp(M lambda)
  // stages -> Erlang(S+1, M lambda): MTTF = (S+1)/(M lambda).
  SparingParams p;
  p.active_modules = 4;
  p.spares = 3;
  p.module_fail_rate_per_hour = 2e-3;
  const SparingModel model{p};
  EXPECT_NEAR(model.mttf_hours(), 4.0 / (4.0 * 2e-3), 1e-9);
  // Erlang CDF check at one point: P(N_Poisson(M lambda t) >= S+1).
  const double t = 300.0;
  const double mu = 4.0 * 2e-3 * t;
  double cdf = 0.0;  // P(fewer than 4 events)
  double term = std::exp(-mu);
  for (int i = 0; i < 4; ++i) {
    cdf += term;
    term *= mu / (i + 1);
  }
  EXPECT_NEAR(model.reliability_at(t), cdf, 1e-10);
}

TEST(SparingModel, MoreSparesNeverHurt) {
  double prev = 0.0;
  for (const unsigned spares : {0u, 1u, 2u, 4u}) {
    SparingParams p;
    p.active_modules = 8;
    p.spares = spares;
    p.module_fail_rate_per_hour = 1e-3;
    const double r = SparingModel{p}.reliability_at(500.0);
    EXPECT_GT(r, prev) << "spares=" << spares;
    prev = r;
  }
}

TEST(SparingModel, ImperfectCoverageCapsTheGain) {
  // With c < 1, even infinite spares cannot beat the uncovered-failure
  // exposure: R(t) <= exp(-M lambda (1-c) t) in the limit... check the
  // ordering c=0.9 < c=1.0 and that c=0 makes spares useless.
  SparingParams p;
  p.active_modules = 8;
  p.spares = 4;
  p.module_fail_rate_per_hour = 1e-3;
  p.coverage = 1.0;
  const double perfect = SparingModel{p}.reliability_at(500.0);
  p.coverage = 0.9;
  const double partial = SparingModel{p}.reliability_at(500.0);
  p.coverage = 0.0;
  const double none = SparingModel{p}.reliability_at(500.0);
  EXPECT_GT(perfect, partial);
  EXPECT_GT(partial, none);
  // c = 0: every failure is fatal regardless of spares.
  EXPECT_NEAR(none, std::exp(-8e-3 * 500.0), 1e-12);
}

TEST(SparingModel, HotSparesAgeAndCostReliability) {
  SparingParams p;
  p.active_modules = 8;
  p.spares = 3;
  p.module_fail_rate_per_hour = 1e-3;
  p.spare_ageing_fraction = 0.0;
  const double cold = SparingModel{p}.reliability_at(800.0);
  p.spare_ageing_fraction = 1.0;
  const double hot = SparingModel{p}.reliability_at(800.0);
  EXPECT_GT(cold, hot);
  // Hot spares still beat no spares.
  SparingParams bare = p;
  bare.spares = 0;
  EXPECT_GT(hot, SparingModel{bare}.reliability_at(800.0));
}

TEST(SparingModel, ZeroRateNeverFails) {
  SparingParams p;
  p.active_modules = 4;
  p.spares = 1;
  const SparingModel model{p};
  EXPECT_DOUBLE_EQ(model.reliability_at(1e6), 1.0);
  EXPECT_THROW(model.mttf_hours(), std::domain_error);
}

TEST(SparingModel, StateSpaceIsSparesPlusTwo) {
  SparingParams p;
  p.active_modules = 4;
  p.spares = 5;
  p.module_fail_rate_per_hour = 1e-3;
  const markov::StateSpace space = SparingModel{p}.build();
  EXPECT_EQ(space.size(), 7u);  // spares 5..0 plus Down
}

}  // namespace
}  // namespace rsmem::models
