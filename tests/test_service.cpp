// End-to-end rsmem-serve tests: a real Server on a Unix socket, real
// Clients, concurrent traffic. Pins the headline guarantees:
//   * responses are BIT-IDENTICAL to direct core:: calls for the paper
//     presets (RS(18,16) duplex, RS(36,16) simplex) — at EVERY shard
//     count: the sharded-vs-unsharded differential proves --shards 1 and
//     --shards 4 answer byte-for-byte identically;
//   * concurrent identical requests single-flight (compute once);
//   * admission control rejects with typed kOverloaded, never drops —
//     per shard AND at the router's global backstop;
//   * expired deadlines answer kDeadlineExceeded, both when the
//     dispatcher drains them late and when they expire while queued
//     behind a slow group on a shard worker;
//   * merged `stats` counters are exactly the sum of the per-shard ones;
//   * shutdown drains every admitted request.
// The whole file runs under TSan via tools/run_sanitizers.sh (label
// `service`) against both the lock-free and mutex MPMC queue builds.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/api.h"
#include "service/client.h"
#include "service/loadgen.h"
#include "service/scheduler.h"
#include "service/server.h"
#include "service/shard_router.h"

namespace rsmem::service {
namespace {

Endpoint test_endpoint(const char* tag) {
  return Endpoint::unix_socket("/tmp/rsmem-test-" + std::string(tag) + "-" +
                               std::to_string(::getpid()) + ".sock");
}

core::MemorySystemSpec paper_duplex_spec() {
  core::MemorySystemSpec spec;
  spec.arrangement = analysis::Arrangement::kDuplex;
  spec.code = {18, 16, 8, 1};
  spec.seu_rate_per_bit_day = 1e-2;
  spec.scrub_period_seconds = 3600.0;
  return spec;
}

core::MemorySystemSpec paper_simplex_spec() {
  core::MemorySystemSpec spec;
  spec.arrangement = analysis::Arrangement::kSimplex;
  spec.code = {36, 16, 8, 1};
  spec.seu_rate_per_bit_day = 1.7e-5;
  spec.erasure_rate_per_symbol_day = 1e-4;
  return spec;
}

std::vector<double> result_doubles(const Response& response,
                                   const char* field) {
  const auto parsed = Json::parse(response.result_json);
  EXPECT_TRUE(parsed.ok()) << response.result_json;
  if (!parsed.ok()) return {};
  auto values = parsed.value().doubles_at(field);
  EXPECT_TRUE(values.ok()) << field;
  return values.ok() ? std::move(values).value() : std::vector<double>{};
}

void expect_bit_identical(const std::vector<double>& service_values,
                          const std::vector<double>& direct_values,
                          const char* what) {
  ASSERT_EQ(service_values.size(), direct_values.size()) << what;
  for (std::size_t i = 0; i < direct_values.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison: bit-identity, not epsilon.
    EXPECT_EQ(service_values[i], direct_values[i])
        << what << " diverges at index " << i;
  }
}

TEST(ServiceE2E, BerResponsesBitIdenticalToDirectCalls) {
  ServerConfig config;
  config.endpoint = test_endpoint("diff");
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto& server = started.value();

  auto client = Client::connect(server->endpoint());
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  const std::vector<double> times = {0.0, 12.0, 24.0, 48.0};
  for (const core::MemorySystemSpec& spec :
       {paper_duplex_spec(), paper_simplex_spec()}) {
    Request request;
    request.kind = RequestKind::kBer;
    request.spec = spec;
    request.times_hours = times;
    auto response = client.value().call(request);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_TRUE(response.value().status.is_ok())
        << response.value().status.to_string();

    const models::BerCurve direct = rsmem::analyze_ber(spec, times);
    expect_bit_identical(result_doubles(response.value(), "fail_probability"),
                         direct.fail_probability, "P_fail");
    expect_bit_identical(result_doubles(response.value(), "ber"), direct.ber,
                         "BER");
    expect_bit_identical(result_doubles(response.value(), "times_hours"),
                         direct.times_hours, "times");

    // Second ask: served from cache, still the same bytes.
    auto cached = client.value().call(request);
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(cached.value().cache, CacheSource::kHit);
    EXPECT_EQ(cached.value().result_json, response.value().result_json);
  }
  server->shutdown();
}

TEST(ServiceE2E, SweepAndMttfBitIdenticalToDirectCalls) {
  ServerConfig config;
  config.endpoint = test_endpoint("sweep");
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto& server = started.value();
  auto client = Client::connect(server->endpoint());
  ASSERT_TRUE(client.ok());

  Request request;
  request.kind = RequestKind::kSweep;
  request.spec = paper_duplex_spec();
  request.sweep_param = "tsc";
  request.sweep_values = {600.0, 1800.0, 3600.0, 7200.0};
  request.sweep_hours = 48.0;
  auto response = client.value().call(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.value().status.is_ok())
      << response.value().status.to_string();

  std::vector<double> direct_pfail, direct_ber;
  for (const double value : request.sweep_values) {
    core::MemorySystemSpec spec = request.spec;
    spec.scrub_period_seconds = value;
    const double times[] = {request.sweep_hours};
    const models::BerCurve curve = rsmem::analyze_ber(spec, times);
    direct_pfail.push_back(curve.fail_probability.front());
    direct_ber.push_back(curve.ber.front());
  }
  expect_bit_identical(result_doubles(response.value(), "fail_probability"),
                       direct_pfail, "sweep P_fail");
  expect_bit_identical(result_doubles(response.value(), "ber"), direct_ber,
                       "sweep BER");

  Request mttf;
  mttf.kind = RequestKind::kMttf;
  mttf.spec = paper_duplex_spec();
  auto mttf_response = client.value().call(mttf);
  ASSERT_TRUE(mttf_response.ok());
  ASSERT_TRUE(mttf_response.value().status.is_ok());
  const auto parsed = Json::parse(mttf_response.value().result_json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().number_or("mttf_hours", -1.0),
            rsmem::mttf_hours(mttf.spec));
  server->shutdown();
}

TEST(ServiceE2E, ConcurrentIdenticalSweepsComputeOnce) {
  ServerConfig config;
  config.endpoint = test_endpoint("flight");
  config.router.scheduler.threads = 4;
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto& server = started.value();

  constexpr int kClients = 8;
  std::vector<std::string> payloads(kClients);
  std::vector<core::Status> statuses(kClients);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        auto client = Client::connect(server->endpoint());
        if (!client.ok()) {
          statuses[i] = client.status();
          return;
        }
        Request request;
        request.kind = RequestKind::kBer;
        request.spec = paper_duplex_spec();
        request.times_hours = {0.0, 24.0, 48.0};
        auto response = client.value().call(request);
        statuses[i] =
            response.ok() ? response.value().status : response.status();
        if (response.ok()) payloads[i] = response.value().result_json;
      });
    }
    for (auto& thread : threads) thread.join();
  }
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(statuses[i].is_ok()) << i << ": " << statuses[i].to_string();
    EXPECT_EQ(payloads[i], payloads[0]) << "client " << i;
  }
  // Single-flight + cache: the chain was computed exactly once.
  const ResultCache::Stats cache = server->cache_stats();
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits + cache.waits, static_cast<std::uint64_t>(kClients - 1));
  server->shutdown();
}

// Bare socket, no Client: lets a test send a frame and vanish without
// waiting for the response.
int raw_connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::size_t open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(ServiceE2E, SurvivesClientGoneBeforeResponse) {
  // A client that submits an analysis request and disconnects before the
  // scheduler worker writes the response makes that write hit a closed
  // socket. It must surface as an EPIPE Status, not a SIGPIPE that kills
  // the daemon (which lives in this test process).
  ServerConfig config;
  config.endpoint = test_endpoint("gone");
  config.router.scheduler.threads = 1;
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto& server = started.value();

  for (int i = 0; i < 3; ++i) {
    const int fd = raw_connect_unix(server->endpoint().path);
    ASSERT_GE(fd, 0);
    Request request;
    request.id = 1;
    request.kind = RequestKind::kBer;
    request.spec = paper_duplex_spec();
    // Distinct times => distinct cache keys => real compute after close.
    request.times_hours = {24.0 + i};
    ASSERT_TRUE(write_frame(fd, request.to_json()).is_ok());
    ::close(fd);
  }

  // The daemon is still alive: a fresh client gets answers.
  auto client = Client::connect(server->endpoint());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  Request ping;
  ping.kind = RequestKind::kPing;
  auto response = client.value().call(ping);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_TRUE(response.value().status.is_ok());

  server->shutdown();  // drains the three orphaned requests
  EXPECT_EQ(server->scheduler_stats().completed, 3u);
}

TEST(ServiceE2E, ReapsDisconnectedClients) {
  // Connection churn must not accumulate fds or threads: each
  // disconnected client is reaped when its reader sees EOF, not hoarded
  // until shutdown.
  ServerConfig config;
  config.endpoint = test_endpoint("churn");
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto& server = started.value();

  const auto ping_once = [&] {
    auto client = Client::connect(server->endpoint());
    ASSERT_TRUE(client.ok()) << client.status().to_string();
    Request ping;
    ping.kind = RequestKind::kPing;
    ASSERT_TRUE(client.value().call(ping).ok());
  };

  // Settle lazily-created fds before taking the baseline.
  ping_once();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::size_t baseline = open_fd_count();
  ASSERT_GT(baseline, 0u);

  for (int i = 0; i < 32; ++i) ping_once();  // each closes on scope exit

  bool reaped = false;
  for (int i = 0; i < 250 && !reaped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    reaped = open_fd_count() <= baseline + 2;
  }
  EXPECT_TRUE(reaped) << open_fd_count() << " open fds vs baseline "
                      << baseline;
  server->shutdown();
}

TEST(ServiceE2E, ControlPlaneAndErrors) {
  ServerConfig config;
  config.endpoint = test_endpoint("ctl");
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok());
  auto& server = started.value();
  auto client = Client::connect(server->endpoint());
  ASSERT_TRUE(client.ok());

  Request ping;
  ping.kind = RequestKind::kPing;
  auto response = client.value().call(ping);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().status.is_ok());
  EXPECT_NE(response.value().result_json.find(rsmem::version()),
            std::string::npos);

  // An invalid spec comes back as a typed InvalidConfig response.
  Request bad;
  bad.kind = RequestKind::kMttf;
  bad.spec = paper_duplex_spec();
  bad.spec.code.k = bad.spec.code.n;  // k must be < n
  response = client.value().call(bad);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status.code(), core::StatusCode::kInvalidConfig);

  Request stats;
  stats.kind = RequestKind::kStats;
  response = client.value().call(stats);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.value().status.is_ok());
  const auto parsed = Json::parse(response.value().result_json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed.value().find("scheduler"), nullptr);
  EXPECT_NE(parsed.value().find("cache"), nullptr);

  // Shutdown over the wire; the server acknowledges, then tears down.
  Request shutdown;
  shutdown.kind = RequestKind::kShutdown;
  response = client.value().call(shutdown);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().status.is_ok());
  EXPECT_TRUE(server->wait_for_shutdown(std::chrono::seconds(5)));
  server->shutdown();
  // The socket file is gone after an orderly shutdown.
  EXPECT_NE(::access(server->endpoint().path.c_str(), F_OK), 0);
}

// ---------------------------------------------------------------------------
// Sharding: routing, bit-identity across shard counts, stats merge, and
// the router's global admission backstop.

TEST(ShardRouting, ShardOfKeyIsDeterministicAndCoversAllShards) {
  // Control-plane kinds have empty keys and pin to shard 0, as does a
  // single-shard deployment.
  EXPECT_EQ(shard_of_key("", 4), 0u);
  EXPECT_EQ(shard_of_key("any key at all", 1), 0u);
  EXPECT_EQ(shard_of_key("any key at all", 0), 0u);

  std::set<std::uint32_t> seen;
  for (int i = 0; i < 256; ++i) {
    const std::string key = "ber|duplex|18,16|t=" + std::to_string(i);
    const std::uint32_t shard = shard_of_key(key, 4);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, shard_of_key(key, 4));  // deterministic
    // The routing rule is pinned: xor-fold of the 64-bit FNV-1a, mod N.
    const std::uint64_t hash = cache_key_hash(key);
    EXPECT_EQ(shard,
              static_cast<std::uint32_t>(hash ^ (hash >> 32)) % 4u);
    seen.insert(shard);
  }
  // FNV-1a spreads these near-identical keys across every shard.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardRouting, RouterSendsEqualKeysToTheSameShard) {
  ShardRouterConfig config;
  config.shards = 4;
  config.scheduler.threads = 1;
  ShardRouter router(config);
  ASSERT_EQ(router.shard_count(), 4u);

  Request request;
  request.kind = RequestKind::kBer;
  request.spec = paper_duplex_spec();
  request.times_hours = {0.0, 24.0, 48.0};
  const std::size_t home = router.shard_of(request);
  Request identical = request;
  identical.id = 999;          // ids are not semantic content
  identical.deadline_ms = 50;  // neither are deadlines
  EXPECT_EQ(router.shard_of(identical), home);
  EXPECT_EQ(home, shard_of_key(canonical_cache_key(request), 4));

  // Execute twice through the router: the second is a HIT — the per-shard
  // cache works because equal keys always land on the same shard.
  const Response first = router.execute(request);
  ASSERT_TRUE(first.status.is_ok()) << first.status.to_string();
  EXPECT_EQ(first.cache, CacheSource::kMiss);
  const Response second = router.execute(identical);
  ASSERT_TRUE(second.status.is_ok());
  EXPECT_EQ(second.cache, CacheSource::kHit);
  EXPECT_EQ(second.result_json, first.result_json);
  router.stop();
}

// The tentpole differential: one identical request mix against a
// 1-shard and a 4-shard server must produce byte-identical responses
// (and match direct core:: calls), and the 4-shard server's merged stats
// must be exactly the sum of its per-shard counters.
TEST(ShardRouting, ShardedAndUnshardedServersAnswerByteIdentically) {
  ServerConfig config_1;
  config_1.endpoint = test_endpoint("shards1");
  config_1.router.shards = 1;
  config_1.router.scheduler.threads = 2;
  ServerConfig config_4;
  config_4.endpoint = test_endpoint("shards4");
  config_4.router.shards = 4;
  config_4.router.scheduler.threads = 2;
  auto started_1 = Server::start(config_1);
  auto started_4 = Server::start(config_4);
  ASSERT_TRUE(started_1.ok()) << started_1.status().to_string();
  ASSERT_TRUE(started_4.ok()) << started_4.status().to_string();
  auto& server_1 = started_1.value();
  auto& server_4 = started_4.value();
  auto client_1 = Client::connect(server_1->endpoint());
  auto client_4 = Client::connect(server_4->endpoint());
  ASSERT_TRUE(client_1.ok());
  ASSERT_TRUE(client_4.ok());

  // The request mix: both paper presets, all three analysis kinds.
  std::vector<Request> mix;
  {
    Request ber_duplex;
    ber_duplex.kind = RequestKind::kBer;
    ber_duplex.spec = paper_duplex_spec();
    ber_duplex.times_hours = {0.0, 12.0, 24.0, 48.0};
    mix.push_back(ber_duplex);
    Request ber_simplex = ber_duplex;
    ber_simplex.spec = paper_simplex_spec();
    mix.push_back(ber_simplex);
    Request ber_periodic = ber_duplex;
    ber_periodic.periodic = true;
    mix.push_back(ber_periodic);
    Request sweep;
    sweep.kind = RequestKind::kSweep;
    sweep.spec = paper_duplex_spec();
    sweep.sweep_param = "tsc";
    sweep.sweep_values = {600.0, 1800.0, 3600.0, 7200.0};
    sweep.sweep_hours = 48.0;
    mix.push_back(sweep);
    Request mttf_duplex;
    mttf_duplex.kind = RequestKind::kMttf;
    mttf_duplex.spec = paper_duplex_spec();
    mix.push_back(mttf_duplex);
    Request mttf_simplex = mttf_duplex;
    mttf_simplex.spec = paper_simplex_spec();
    mix.push_back(mttf_simplex);
  }

  // Two passes: pass 0 computes (misses), pass 1 is served per-shard-hot.
  // Byte identity must hold between servers on every pass.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < mix.size(); ++i) {
      auto from_1 = client_1.value().call(mix[i]);
      auto from_4 = client_4.value().call(mix[i]);
      ASSERT_TRUE(from_1.ok()) << from_1.status().to_string();
      ASSERT_TRUE(from_4.ok()) << from_4.status().to_string();
      ASSERT_TRUE(from_1.value().status.is_ok())
          << from_1.value().status.to_string();
      ASSERT_TRUE(from_4.value().status.is_ok())
          << from_4.value().status.to_string();
      EXPECT_EQ(from_1.value().result_json, from_4.value().result_json)
          << "request " << i << " pass " << pass
          << " differs between 1 and 4 shards";
      if (pass == 1) {
        EXPECT_EQ(from_4.value().cache, CacheSource::kHit)
            << "request " << i << ": per-shard cache missed on replay";
      }
    }
  }
  // And against direct core:: calls (the wire adds nothing, removes
  // nothing, at any shard count).
  {
    auto response = client_4.value().call(mix[0]);
    ASSERT_TRUE(response.ok());
    const models::BerCurve direct =
        rsmem::analyze_ber(mix[0].spec, mix[0].times_hours);
    expect_bit_identical(result_doubles(response.value(), "fail_probability"),
                         direct.fail_probability, "sharded P_fail");
    expect_bit_identical(result_doubles(response.value(), "ber"), direct.ber,
                         "sharded BER");
  }

  // Stats merge semantics: the top-level merged counters are exactly the
  // sums of the per-shard entries, and the work actually spread out.
  Request stats;
  stats.kind = RequestKind::kStats;
  auto stats_response = client_4.value().call(stats);
  ASSERT_TRUE(stats_response.ok());
  ASSERT_TRUE(stats_response.value().status.is_ok());
  const auto parsed = Json::parse(stats_response.value().result_json);
  ASSERT_TRUE(parsed.ok());
  const Json& json = parsed.value();
  EXPECT_EQ(json.number_or("shard_count", 0.0), 4.0);
  EXPECT_EQ(json.string_or("queue_backend", ""), kQueueBackendName);
  EXPECT_EQ(json.number_or("rejected_global", -1.0), 0.0);
  const Json* shards = json.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->as_array().size(), 4u);
  double accepted_sum = 0.0, completed_sum = 0.0;
  double hits_sum = 0.0, misses_sum = 0.0, size_sum = 0.0;
  std::size_t shards_with_work = 0;
  for (const Json& shard : shards->as_array()) {
    const Json* scheduler = shard.find("scheduler");
    const Json* cache = shard.find("cache");
    ASSERT_NE(scheduler, nullptr);
    ASSERT_NE(cache, nullptr);
    accepted_sum += scheduler->number_or("accepted", 0.0);
    completed_sum += scheduler->number_or("completed", 0.0);
    hits_sum += cache->number_or("hits", 0.0);
    misses_sum += cache->number_or("misses", 0.0);
    size_sum += cache->number_or("size", 0.0);
    if (scheduler->number_or("accepted", 0.0) > 0.0) ++shards_with_work;
  }
  const Json* merged_scheduler = json.find("scheduler");
  const Json* merged_cache = json.find("cache");
  ASSERT_NE(merged_scheduler, nullptr);
  ASSERT_NE(merged_cache, nullptr);
  EXPECT_EQ(merged_scheduler->number_or("accepted", -1.0), accepted_sum);
  EXPECT_EQ(merged_scheduler->number_or("completed", -1.0), completed_sum);
  EXPECT_EQ(merged_cache->number_or("hits", -1.0), hits_sum);
  EXPECT_EQ(merged_cache->number_or("misses", -1.0), misses_sum);
  EXPECT_EQ(merged_cache->number_or("size", -1.0), size_sum);
  // 6 distinct keys hashed over 4 shards: more than one shard saw work.
  EXPECT_GT(shards_with_work, 1u);
  // Every distinct key computed exactly once across the whole fleet.
  EXPECT_EQ(misses_sum, static_cast<double>(mix.size()));

  server_1->shutdown();
  server_4->shutdown();
}

TEST(ShardRouterAdmission, GlobalBackstopRejectsTypedOverload) {
  ShardRouterConfig config;
  config.shards = 2;
  config.scheduler.threads = 1;
  config.scheduler.max_queue = 64;  // roomy per-shard queues...
  config.global_max_pending = 2;    // ...but a tight global backstop
  ShardRouter router(config);
  EXPECT_EQ(router.global_max_pending(), 2u);

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t completed = 0;
  const auto on_done = [&](Response) {
    std::lock_guard<std::mutex> lock(mutex);
    ++completed;
    cv.notify_all();
  };

  std::size_t accepted = 0, rejected = 0;
  for (int i = 0; i < 64; ++i) {
    Request request;
    request.kind = RequestKind::kBer;
    request.spec = paper_duplex_spec();
    request.times_hours = {24.0 + i};  // distinct keys: real work each
    const core::Status status = router.submit(request, on_done);
    if (status.is_ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(status.code(), core::StatusCode::kOverloaded)
          << status.to_string();
      ++rejected;
    }
  }
  // The per-shard queues never filled, so every rejection came from the
  // global backstop and was typed kOverloaded.
  EXPECT_GT(rejected, 0u);
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                            [&] { return completed == accepted; }));
  }
  const ShardRouter::Stats stats = router.stats();
  EXPECT_EQ(stats.rejected_global, rejected);
  EXPECT_EQ(stats.scheduler.accepted, accepted);
  EXPECT_EQ(stats.scheduler.completed, accepted);
  EXPECT_EQ(stats.scheduler.rejected_overload, 0u);  // shards never refused
  EXPECT_EQ(stats.global_pending, 0u);  // every reservation was released
  router.stop();
}

// Scheduler-level behaviours that need precise control (no sockets).

TEST(SchedulerAdmission, RejectsWithTypedOverloadWhenQueueFull) {
  SchedulerConfig config;
  config.threads = 1;
  config.max_queue = 2;
  config.batch_max = 1;
  AnalysisScheduler scheduler(config);

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t completed = 0;
  const auto on_done = [&](Response) {
    std::lock_guard<std::mutex> lock(mutex);
    ++completed;
    cv.notify_all();
  };

  Request request;
  request.kind = RequestKind::kBer;
  request.spec = paper_duplex_spec();
  request.times_hours = {0.0, 24.0, 48.0};

  // Flood far beyond the queue bound; every submission either succeeds or
  // is rejected with a typed status — kOverloaded when the ring is full,
  // kBrownout once the in-flight watermark trips — never anything
  // untyped, never dropped.
  std::size_t accepted = 0, rejected = 0;
  for (int i = 0; i < 200; ++i) {
    Request variant = request;
    variant.id = static_cast<std::uint64_t>(i + 1);
    // Distinct times => distinct cache keys => real work per request.
    variant.times_hours.back() += static_cast<double>(i);
    const core::Status status = scheduler.submit(variant, on_done);
    if (status.is_ok()) {
      ++accepted;
    } else {
      ASSERT_TRUE(status.code() == core::StatusCode::kOverloaded ||
                  status.code() == core::StatusCode::kBrownout)
          << status.to_string();
      ++rejected;
    }
  }
  EXPECT_GT(accepted, 0u);
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return completed == accepted; }));
  }
  const AnalysisScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.accepted, accepted);
  EXPECT_EQ(stats.rejected_overload + stats.brownout_shed, rejected);
  EXPECT_EQ(stats.completed, accepted);
  scheduler.stop();
  // With max_queue=2 a 200-deep flood must have tripped admission.
  EXPECT_GT(rejected, 0u);
}

TEST(SchedulerDeadlines, ExpiredDeadlineAnswersTyped) {
  SchedulerConfig config;
  config.threads = 1;
  AnalysisScheduler scheduler(config);
  Request request;
  request.kind = RequestKind::kMttf;
  request.spec = paper_duplex_spec();
  // A deadline that has effectively already expired when the dispatcher
  // reaches it (sub-microsecond).
  request.deadline_ms = 1e-9;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Response final_response;
  const core::Status status =
      scheduler.submit(request, [&](Response response) {
        std::lock_guard<std::mutex> lock(mutex);
        final_response = std::move(response);
        done = true;
        cv.notify_all();
      });
  ASSERT_TRUE(status.is_ok());
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(10), [&] { return done; }));
  }
  EXPECT_EQ(final_response.status.code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(final_response.result_json.empty());
  EXPECT_EQ(scheduler.stats().deadline_expired, 1u);
}

TEST(SchedulerDeadlines, DeadlineExpiringInQueueAnswersTypedNotLate) {
  // The dispatch-time check alone is not enough: a request can pass it,
  // then sit on the single worker's queue behind a slow group while its
  // deadline runs out. The worker re-checks at dequeue, so the victim
  // gets kDeadlineExceeded — never a late success.
  SchedulerConfig config;
  config.threads = 1;
  config.batch_max = 16;
  AnalysisScheduler scheduler(config);

  std::mutex mutex;
  std::condition_variable cv;
  bool blocker_done = false, victim_done = false;
  Response victim_response;

  // Blocker: a wide scrub-period sweep on the duplex chain. Each value is
  // ~50us of solver work even with warm chain replay, so 4096 values keep
  // the only worker busy for hundreds of milliseconds — over 20x the
  // victim's deadline, and a slow machine only widens the margin.
  Request blocker;
  blocker.kind = RequestKind::kSweep;
  blocker.spec = paper_duplex_spec();
  blocker.sweep_param = "tsc";
  blocker.sweep_hours = 48.0;
  for (int i = 0; i < 4096; ++i) {
    blocker.sweep_values.push_back(600.0 + 1.0 * i);
  }
  ASSERT_TRUE(scheduler
                  .submit(blocker,
                          [&](Response) {
                            std::lock_guard<std::mutex> lock(mutex);
                            blocker_done = true;
                            cv.notify_all();
                          })
                  .is_ok());
  // Let the dispatcher hand the blocker to the (only) worker before the
  // victim is even submitted, so the worker-queue ordering is fixed.
  for (int i = 0; i < 2000 && scheduler.stats().batch_groups == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(scheduler.stats().batch_groups, 1u);

  // Victim: a different compatibility group (simplex), with a deadline
  // that is alive at dispatch but dead long before the blocker finishes.
  Request victim;
  victim.kind = RequestKind::kMttf;
  victim.spec = paper_simplex_spec();
  victim.deadline_ms = 10.0;
  ASSERT_TRUE(scheduler
                  .submit(victim,
                          [&](Response response) {
                            std::lock_guard<std::mutex> lock(mutex);
                            victim_response = std::move(response);
                            victim_done = true;
                            cv.notify_all();
                          })
                  .is_ok());
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                            [&] { return blocker_done && victim_done; }));
  }
  EXPECT_EQ(victim_response.status.code(),
            core::StatusCode::kDeadlineExceeded)
      << victim_response.status.to_string();
  EXPECT_TRUE(victim_response.result_json.empty());
  EXPECT_EQ(scheduler.stats().deadline_expired, 1u);
  // The rejection was never cached: a fresh ask computes and succeeds.
  Request retry = victim;
  retry.deadline_ms = 0.0;
  const Response fresh = scheduler.execute(retry);
  EXPECT_TRUE(fresh.status.is_ok()) << fresh.status.to_string();
  EXPECT_EQ(fresh.cache, CacheSource::kMiss);
  scheduler.stop();
}

TEST(SchedulerBatching, CompatibilityKeysGroupChainStructures) {
  Request a;
  a.kind = RequestKind::kBer;
  a.spec = paper_duplex_spec();
  a.times_hours = {1.0};
  Request b = a;
  b.spec.seu_rate_per_bit_day = 5e-3;  // different magnitude, same structure
  b.times_hours = {2.0};
  EXPECT_EQ(batch_compatibility_key(a), batch_compatibility_key(b));

  Request c = a;
  c.spec.seu_rate_per_bit_day = 0.0;  // different rate zero-pattern
  EXPECT_NE(batch_compatibility_key(a), batch_compatibility_key(c));
  Request d = a;
  d.spec.arrangement = analysis::Arrangement::kSimplex;
  EXPECT_NE(batch_compatibility_key(a), batch_compatibility_key(d));
  Request e = a;
  e.spec.code.n = 36;
  EXPECT_NE(batch_compatibility_key(a), batch_compatibility_key(e));
}

TEST(SchedulerShutdown, StopDrainsEveryAdmittedRequest) {
  SchedulerConfig config;
  config.threads = 2;
  AnalysisScheduler scheduler(config);
  std::atomic<int> answered{0};
  constexpr int kRequests = 24;
  int accepted = 0;
  for (int i = 0; i < kRequests; ++i) {
    Request request;
    request.kind = RequestKind::kBer;
    request.spec = paper_duplex_spec();
    request.times_hours = {static_cast<double>(i + 1)};
    if (scheduler
            .submit(request, [&](Response) { answered.fetch_add(1); })
            .is_ok()) {
      ++accepted;
    }
  }
  scheduler.stop();  // drain-and-stop: every admitted request answered
  EXPECT_EQ(answered.load(), accepted);
  EXPECT_EQ(accepted, kRequests);
  // After stop, admission rejects with a typed status.
  Request late;
  late.kind = RequestKind::kMttf;
  late.spec = paper_duplex_spec();
  const core::Status status = scheduler.submit(late, [](Response) {});
  EXPECT_EQ(status.code(), core::StatusCode::kOverloaded);
}

TEST(ServiceLoadgen, SelfHostedRunMeetsCacheTargets) {
  LoadgenConfig config;
  config.self_host = true;
  config.clients = 8;
  config.requests_per_client = 12;
  config.distinct = 3;
  config.scheduler.threads = 2;
  config.request.kind = RequestKind::kSweep;
  config.request.spec = paper_duplex_spec();
  config.request.sweep_param = "tsc";
  config.request.sweep_values = {600.0, 1800.0, 3600.0};
  config.request.sweep_hours = 48.0;
  auto ran = run_loadgen(config);
  ASSERT_TRUE(ran.ok()) << ran.status().to_string();
  const LoadgenReport& report = ran.value();
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.requests,
            static_cast<std::size_t>(config.clients) *
                config.requests_per_client);
  // The acceptance bar: a repeated sweep from 8 concurrent clients runs
  // mostly hot. 3 distinct keys over 96 requests => >= 93 hits/waits.
  EXPECT_GT(report.hit_rate, 0.5);
  EXPECT_GT(report.p50_ms, 0.0);
  EXPECT_GE(report.p99_ms, report.p50_ms);
  EXPECT_FALSE(report.server_stats_json.empty());
  // JSON snapshot is parseable and carries the headline metrics.
  const auto snapshot = Json::parse(loadgen_report_json(config, report));
  ASSERT_TRUE(snapshot.ok());
  EXPECT_NE(snapshot.value().find("latency_ms"), nullptr);
  EXPECT_NE(snapshot.value().find("cache"), nullptr);
  EXPECT_NE(snapshot.value().find("hot_query_speedup"), nullptr);
}

TEST(ServiceLoadgen, OpenLoopShardedRunAccountsForEveryRequest) {
  LoadgenConfig config;
  config.self_host = true;
  config.open_loop = true;
  config.shards = 2;
  config.clients = 4;
  config.requests_per_client = 10;
  config.distinct = 2;
  config.scheduler.threads = 2;
  config.scheduler.max_queue = 256;  // roomy: no rejections expected
  config.request.kind = RequestKind::kSweep;
  config.request.spec = paper_duplex_spec();
  config.request.sweep_param = "tsc";
  config.request.sweep_values = {600.0, 3600.0};
  config.request.sweep_hours = 48.0;
  auto ran = run_loadgen(config);
  ASSERT_TRUE(ran.ok()) << ran.status().to_string();
  const LoadgenReport& report = ran.value();
  // Open loop accounts for every request exactly once: ok + rejected +
  // errors covers the whole offered load, and with a roomy queue nothing
  // is rejected or lost.
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.requests,
            static_cast<std::size_t>(config.clients) *
                config.requests_per_client);
  EXPECT_GT(report.offered_rps, 0.0);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_FALSE(report.server_stats_json.empty());
}

TEST(ServiceLoadgen, OpenLoopOverloadCountsRejectionsNotErrors) {
  // Deliberate overload: 1 worker, a queue of 1, a global backstop of 2,
  // and a flood of distinct keys pipelined flat-out. The relief valve is
  // typed kOverloaded — the loadgen must file those under `rejected`,
  // keep `errors` at zero, and still account for every request.
  LoadgenConfig config;
  config.self_host = true;
  config.open_loop = true;
  config.shards = 2;
  config.clients = 4;
  config.requests_per_client = 16;
  config.distinct = 64;  // (clients + i) spread: nearly all keys distinct
  config.scheduler.threads = 1;
  config.scheduler.max_queue = 1;
  config.request.kind = RequestKind::kBer;
  config.request.spec = paper_duplex_spec();
  config.request.times_hours = {24.0, 48.0};
  auto ran = run_loadgen(config);
  ASSERT_TRUE(ran.ok()) << ran.status().to_string();
  const LoadgenReport& report = ran.value();
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_EQ(report.requests + report.rejected,
            static_cast<std::size_t>(config.clients) *
                config.requests_per_client);
}

TEST(ServiceLoadgen, ShardScalingSweepReportsEveryPoint) {
  LoadgenConfig base;
  base.clients = 2;
  base.requests_per_client = 6;
  base.distinct = 2;
  base.scheduler.threads = 1;
  base.scheduler.max_queue = 128;
  base.request.kind = RequestKind::kSweep;
  base.request.spec = paper_duplex_spec();
  base.request.sweep_param = "tsc";
  base.request.sweep_values = {600.0, 3600.0};
  base.request.sweep_hours = 48.0;
  auto swept = run_shard_scaling(base, {1u, 2u});
  ASSERT_TRUE(swept.ok()) << swept.status().to_string();
  const auto& points = swept.value();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].shards, 1u);
  EXPECT_EQ(points[1].shards, 2u);
  for (const ShardScalingPoint& point : points) {
    EXPECT_EQ(point.report.errors, 0u) << point.shards << " shards";
    EXPECT_GT(point.report.throughput_rps, 0.0);
  }
  // The JSON section carries one entry per point plus the core count.
  const Json json = shard_scaling_json(points);
  EXPECT_GT(json.number_or("cores", 0.0), 0.0);
  EXPECT_EQ(json.string_or("queue_backend", ""), kQueueBackendName);
  const Json* entries = json.find("points");
  ASSERT_NE(entries, nullptr);
  ASSERT_TRUE(entries->is_array());
  ASSERT_EQ(entries->as_array().size(), 2u);
  EXPECT_EQ(entries->as_array()[0].number_or("speedup_vs_1_shard", 0.0), 1.0);
  EXPECT_FALSE(format_shard_scaling(points).empty());

  EXPECT_EQ(run_shard_scaling(base, {}).status().code(),
            core::StatusCode::kInvalidConfig);
  EXPECT_EQ(run_shard_scaling(base, {0u}).status().code(),
            core::StatusCode::kInvalidConfig);
}

TEST(ServiceLoadgen, RejectsNonsenseConfigs) {
  LoadgenConfig config;
  config.clients = 0;
  EXPECT_EQ(run_loadgen(config).status().code(),
            core::StatusCode::kInvalidConfig);
  config.clients = 1;
  config.requests_per_client = 1;
  config.request.kind = RequestKind::kPing;  // not an analysis kind
  EXPECT_EQ(run_loadgen(config).status().code(),
            core::StatusCode::kInvalidConfig);
  config.request.kind = RequestKind::kSweep;
  config.request.spec = paper_duplex_spec();
  config.request.sweep_param = "tsc";
  config.request.sweep_values = {600.0};
  config.shards = 0;
  EXPECT_EQ(run_loadgen(config).status().code(),
            core::StatusCode::kInvalidConfig);
  config.shards = 1;
  config.arrival_rate_rps = -1.0;
  EXPECT_EQ(run_loadgen(config).status().code(),
            core::StatusCode::kInvalidConfig);
}

}  // namespace
}  // namespace rsmem::service
