// End-to-end rsmem-serve tests: a real Server on a Unix socket, real
// Clients, concurrent traffic. Pins the PR's headline guarantees:
//   * responses are BIT-IDENTICAL to direct core:: calls for the paper
//     presets (RS(18,16) duplex, RS(36,16) simplex);
//   * concurrent identical requests single-flight (compute once);
//   * admission control rejects with typed kOverloaded, never drops;
//   * expired deadlines answer kDeadlineExceeded without computing;
//   * shutdown drains every admitted request.
// The whole file runs under TSan via tools/run_sanitizers.sh (label
// `service`).
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "core/api.h"
#include "service/client.h"
#include "service/loadgen.h"
#include "service/scheduler.h"
#include "service/server.h"

namespace rsmem::service {
namespace {

Endpoint test_endpoint(const char* tag) {
  return Endpoint::unix_socket("/tmp/rsmem-test-" + std::string(tag) + "-" +
                               std::to_string(::getpid()) + ".sock");
}

core::MemorySystemSpec paper_duplex_spec() {
  core::MemorySystemSpec spec;
  spec.arrangement = analysis::Arrangement::kDuplex;
  spec.code = {18, 16, 8, 1};
  spec.seu_rate_per_bit_day = 1e-2;
  spec.scrub_period_seconds = 3600.0;
  return spec;
}

core::MemorySystemSpec paper_simplex_spec() {
  core::MemorySystemSpec spec;
  spec.arrangement = analysis::Arrangement::kSimplex;
  spec.code = {36, 16, 8, 1};
  spec.seu_rate_per_bit_day = 1.7e-5;
  spec.erasure_rate_per_symbol_day = 1e-4;
  return spec;
}

std::vector<double> result_doubles(const Response& response,
                                   const char* field) {
  const auto parsed = Json::parse(response.result_json);
  EXPECT_TRUE(parsed.ok()) << response.result_json;
  if (!parsed.ok()) return {};
  auto values = parsed.value().doubles_at(field);
  EXPECT_TRUE(values.ok()) << field;
  return values.ok() ? std::move(values).value() : std::vector<double>{};
}

void expect_bit_identical(const std::vector<double>& service_values,
                          const std::vector<double>& direct_values,
                          const char* what) {
  ASSERT_EQ(service_values.size(), direct_values.size()) << what;
  for (std::size_t i = 0; i < direct_values.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison: bit-identity, not epsilon.
    EXPECT_EQ(service_values[i], direct_values[i])
        << what << " diverges at index " << i;
  }
}

TEST(ServiceE2E, BerResponsesBitIdenticalToDirectCalls) {
  ServerConfig config;
  config.endpoint = test_endpoint("diff");
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto& server = started.value();

  auto client = Client::connect(server->endpoint());
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  const std::vector<double> times = {0.0, 12.0, 24.0, 48.0};
  for (const core::MemorySystemSpec& spec :
       {paper_duplex_spec(), paper_simplex_spec()}) {
    Request request;
    request.kind = RequestKind::kBer;
    request.spec = spec;
    request.times_hours = times;
    auto response = client.value().call(request);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_TRUE(response.value().status.is_ok())
        << response.value().status.to_string();

    const models::BerCurve direct = rsmem::analyze_ber(spec, times);
    expect_bit_identical(result_doubles(response.value(), "fail_probability"),
                         direct.fail_probability, "P_fail");
    expect_bit_identical(result_doubles(response.value(), "ber"), direct.ber,
                         "BER");
    expect_bit_identical(result_doubles(response.value(), "times_hours"),
                         direct.times_hours, "times");

    // Second ask: served from cache, still the same bytes.
    auto cached = client.value().call(request);
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(cached.value().cache, CacheSource::kHit);
    EXPECT_EQ(cached.value().result_json, response.value().result_json);
  }
  server->shutdown();
}

TEST(ServiceE2E, SweepAndMttfBitIdenticalToDirectCalls) {
  ServerConfig config;
  config.endpoint = test_endpoint("sweep");
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto& server = started.value();
  auto client = Client::connect(server->endpoint());
  ASSERT_TRUE(client.ok());

  Request request;
  request.kind = RequestKind::kSweep;
  request.spec = paper_duplex_spec();
  request.sweep_param = "tsc";
  request.sweep_values = {600.0, 1800.0, 3600.0, 7200.0};
  request.sweep_hours = 48.0;
  auto response = client.value().call(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.value().status.is_ok())
      << response.value().status.to_string();

  std::vector<double> direct_pfail, direct_ber;
  for (const double value : request.sweep_values) {
    core::MemorySystemSpec spec = request.spec;
    spec.scrub_period_seconds = value;
    const double times[] = {request.sweep_hours};
    const models::BerCurve curve = rsmem::analyze_ber(spec, times);
    direct_pfail.push_back(curve.fail_probability.front());
    direct_ber.push_back(curve.ber.front());
  }
  expect_bit_identical(result_doubles(response.value(), "fail_probability"),
                       direct_pfail, "sweep P_fail");
  expect_bit_identical(result_doubles(response.value(), "ber"), direct_ber,
                       "sweep BER");

  Request mttf;
  mttf.kind = RequestKind::kMttf;
  mttf.spec = paper_duplex_spec();
  auto mttf_response = client.value().call(mttf);
  ASSERT_TRUE(mttf_response.ok());
  ASSERT_TRUE(mttf_response.value().status.is_ok());
  const auto parsed = Json::parse(mttf_response.value().result_json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().number_or("mttf_hours", -1.0),
            rsmem::mttf_hours(mttf.spec));
  server->shutdown();
}

TEST(ServiceE2E, ConcurrentIdenticalSweepsComputeOnce) {
  ServerConfig config;
  config.endpoint = test_endpoint("flight");
  config.scheduler.threads = 4;
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto& server = started.value();

  constexpr int kClients = 8;
  std::vector<std::string> payloads(kClients);
  std::vector<core::Status> statuses(kClients);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        auto client = Client::connect(server->endpoint());
        if (!client.ok()) {
          statuses[i] = client.status();
          return;
        }
        Request request;
        request.kind = RequestKind::kBer;
        request.spec = paper_duplex_spec();
        request.times_hours = {0.0, 24.0, 48.0};
        auto response = client.value().call(request);
        statuses[i] =
            response.ok() ? response.value().status : response.status();
        if (response.ok()) payloads[i] = response.value().result_json;
      });
    }
    for (auto& thread : threads) thread.join();
  }
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(statuses[i].is_ok()) << i << ": " << statuses[i].to_string();
    EXPECT_EQ(payloads[i], payloads[0]) << "client " << i;
  }
  // Single-flight + cache: the chain was computed exactly once.
  const ResultCache::Stats cache = server->cache_stats();
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits + cache.waits, static_cast<std::uint64_t>(kClients - 1));
  server->shutdown();
}

// Bare socket, no Client: lets a test send a frame and vanish without
// waiting for the response.
int raw_connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::size_t open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(ServiceE2E, SurvivesClientGoneBeforeResponse) {
  // A client that submits an analysis request and disconnects before the
  // scheduler worker writes the response makes that write hit a closed
  // socket. It must surface as an EPIPE Status, not a SIGPIPE that kills
  // the daemon (which lives in this test process).
  ServerConfig config;
  config.endpoint = test_endpoint("gone");
  config.scheduler.threads = 1;
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto& server = started.value();

  for (int i = 0; i < 3; ++i) {
    const int fd = raw_connect_unix(server->endpoint().path);
    ASSERT_GE(fd, 0);
    Request request;
    request.id = 1;
    request.kind = RequestKind::kBer;
    request.spec = paper_duplex_spec();
    // Distinct times => distinct cache keys => real compute after close.
    request.times_hours = {24.0 + i};
    ASSERT_TRUE(write_frame(fd, request.to_json()).is_ok());
    ::close(fd);
  }

  // The daemon is still alive: a fresh client gets answers.
  auto client = Client::connect(server->endpoint());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  Request ping;
  ping.kind = RequestKind::kPing;
  auto response = client.value().call(ping);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_TRUE(response.value().status.is_ok());

  server->shutdown();  // drains the three orphaned requests
  EXPECT_EQ(server->scheduler_stats().completed, 3u);
}

TEST(ServiceE2E, ReapsDisconnectedClients) {
  // Connection churn must not accumulate fds or threads: each
  // disconnected client is reaped when its reader sees EOF, not hoarded
  // until shutdown.
  ServerConfig config;
  config.endpoint = test_endpoint("churn");
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto& server = started.value();

  const auto ping_once = [&] {
    auto client = Client::connect(server->endpoint());
    ASSERT_TRUE(client.ok()) << client.status().to_string();
    Request ping;
    ping.kind = RequestKind::kPing;
    ASSERT_TRUE(client.value().call(ping).ok());
  };

  // Settle lazily-created fds before taking the baseline.
  ping_once();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::size_t baseline = open_fd_count();
  ASSERT_GT(baseline, 0u);

  for (int i = 0; i < 32; ++i) ping_once();  // each closes on scope exit

  bool reaped = false;
  for (int i = 0; i < 250 && !reaped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    reaped = open_fd_count() <= baseline + 2;
  }
  EXPECT_TRUE(reaped) << open_fd_count() << " open fds vs baseline "
                      << baseline;
  server->shutdown();
}

TEST(ServiceE2E, ControlPlaneAndErrors) {
  ServerConfig config;
  config.endpoint = test_endpoint("ctl");
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok());
  auto& server = started.value();
  auto client = Client::connect(server->endpoint());
  ASSERT_TRUE(client.ok());

  Request ping;
  ping.kind = RequestKind::kPing;
  auto response = client.value().call(ping);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().status.is_ok());
  EXPECT_NE(response.value().result_json.find(rsmem::version()),
            std::string::npos);

  // An invalid spec comes back as a typed InvalidConfig response.
  Request bad;
  bad.kind = RequestKind::kMttf;
  bad.spec = paper_duplex_spec();
  bad.spec.code.k = bad.spec.code.n;  // k must be < n
  response = client.value().call(bad);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status.code(), core::StatusCode::kInvalidConfig);

  Request stats;
  stats.kind = RequestKind::kStats;
  response = client.value().call(stats);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.value().status.is_ok());
  const auto parsed = Json::parse(response.value().result_json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed.value().find("scheduler"), nullptr);
  EXPECT_NE(parsed.value().find("cache"), nullptr);

  // Shutdown over the wire; the server acknowledges, then tears down.
  Request shutdown;
  shutdown.kind = RequestKind::kShutdown;
  response = client.value().call(shutdown);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().status.is_ok());
  EXPECT_TRUE(server->wait_for_shutdown(std::chrono::seconds(5)));
  server->shutdown();
  // The socket file is gone after an orderly shutdown.
  EXPECT_NE(::access(server->endpoint().path.c_str(), F_OK), 0);
}

// Scheduler-level behaviours that need precise control (no sockets).

TEST(SchedulerAdmission, RejectsWithTypedOverloadWhenQueueFull) {
  SchedulerConfig config;
  config.threads = 1;
  config.max_queue = 2;
  config.batch_max = 1;
  AnalysisScheduler scheduler(config);

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t completed = 0;
  const auto on_done = [&](Response) {
    std::lock_guard<std::mutex> lock(mutex);
    ++completed;
    cv.notify_all();
  };

  Request request;
  request.kind = RequestKind::kBer;
  request.spec = paper_duplex_spec();
  request.times_hours = {0.0, 24.0, 48.0};

  // Flood far beyond the queue bound; every submission either succeeds or
  // is rejected with kOverloaded — never anything untyped, never dropped.
  std::size_t accepted = 0, rejected = 0;
  for (int i = 0; i < 200; ++i) {
    Request variant = request;
    variant.id = static_cast<std::uint64_t>(i + 1);
    // Distinct times => distinct cache keys => real work per request.
    variant.times_hours.back() += static_cast<double>(i);
    const core::Status status = scheduler.submit(variant, on_done);
    if (status.is_ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(status.code(), core::StatusCode::kOverloaded)
          << status.to_string();
      ++rejected;
    }
  }
  EXPECT_GT(accepted, 0u);
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return completed == accepted; }));
  }
  const AnalysisScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.accepted, accepted);
  EXPECT_EQ(stats.rejected_overload, rejected);
  EXPECT_EQ(stats.completed, accepted);
  scheduler.stop();
  // With max_queue=2 a 200-deep flood must have tripped admission.
  EXPECT_GT(rejected, 0u);
}

TEST(SchedulerDeadlines, ExpiredDeadlineAnswersTyped) {
  SchedulerConfig config;
  config.threads = 1;
  AnalysisScheduler scheduler(config);
  Request request;
  request.kind = RequestKind::kMttf;
  request.spec = paper_duplex_spec();
  // A deadline that has effectively already expired when the dispatcher
  // reaches it (sub-microsecond).
  request.deadline_ms = 1e-9;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Response final_response;
  const core::Status status =
      scheduler.submit(request, [&](Response response) {
        std::lock_guard<std::mutex> lock(mutex);
        final_response = std::move(response);
        done = true;
        cv.notify_all();
      });
  ASSERT_TRUE(status.is_ok());
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(10), [&] { return done; }));
  }
  EXPECT_EQ(final_response.status.code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(final_response.result_json.empty());
  EXPECT_EQ(scheduler.stats().deadline_expired, 1u);
}

TEST(SchedulerBatching, CompatibilityKeysGroupChainStructures) {
  Request a;
  a.kind = RequestKind::kBer;
  a.spec = paper_duplex_spec();
  a.times_hours = {1.0};
  Request b = a;
  b.spec.seu_rate_per_bit_day = 5e-3;  // different magnitude, same structure
  b.times_hours = {2.0};
  EXPECT_EQ(batch_compatibility_key(a), batch_compatibility_key(b));

  Request c = a;
  c.spec.seu_rate_per_bit_day = 0.0;  // different rate zero-pattern
  EXPECT_NE(batch_compatibility_key(a), batch_compatibility_key(c));
  Request d = a;
  d.spec.arrangement = analysis::Arrangement::kSimplex;
  EXPECT_NE(batch_compatibility_key(a), batch_compatibility_key(d));
  Request e = a;
  e.spec.code.n = 36;
  EXPECT_NE(batch_compatibility_key(a), batch_compatibility_key(e));
}

TEST(SchedulerShutdown, StopDrainsEveryAdmittedRequest) {
  SchedulerConfig config;
  config.threads = 2;
  AnalysisScheduler scheduler(config);
  std::atomic<int> answered{0};
  constexpr int kRequests = 24;
  int accepted = 0;
  for (int i = 0; i < kRequests; ++i) {
    Request request;
    request.kind = RequestKind::kBer;
    request.spec = paper_duplex_spec();
    request.times_hours = {static_cast<double>(i + 1)};
    if (scheduler
            .submit(request, [&](Response) { answered.fetch_add(1); })
            .is_ok()) {
      ++accepted;
    }
  }
  scheduler.stop();  // drain-and-stop: every admitted request answered
  EXPECT_EQ(answered.load(), accepted);
  EXPECT_EQ(accepted, kRequests);
  // After stop, admission rejects with a typed status.
  Request late;
  late.kind = RequestKind::kMttf;
  late.spec = paper_duplex_spec();
  const core::Status status = scheduler.submit(late, [](Response) {});
  EXPECT_EQ(status.code(), core::StatusCode::kOverloaded);
}

TEST(ServiceLoadgen, SelfHostedRunMeetsCacheTargets) {
  LoadgenConfig config;
  config.self_host = true;
  config.clients = 8;
  config.requests_per_client = 12;
  config.distinct = 3;
  config.scheduler.threads = 2;
  config.request.kind = RequestKind::kSweep;
  config.request.spec = paper_duplex_spec();
  config.request.sweep_param = "tsc";
  config.request.sweep_values = {600.0, 1800.0, 3600.0};
  config.request.sweep_hours = 48.0;
  auto ran = run_loadgen(config);
  ASSERT_TRUE(ran.ok()) << ran.status().to_string();
  const LoadgenReport& report = ran.value();
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.requests,
            static_cast<std::size_t>(config.clients) *
                config.requests_per_client);
  // The acceptance bar: a repeated sweep from 8 concurrent clients runs
  // mostly hot. 3 distinct keys over 96 requests => >= 93 hits/waits.
  EXPECT_GT(report.hit_rate, 0.5);
  EXPECT_GT(report.p50_ms, 0.0);
  EXPECT_GE(report.p99_ms, report.p50_ms);
  EXPECT_FALSE(report.server_stats_json.empty());
  // JSON snapshot is parseable and carries the headline metrics.
  const auto snapshot = Json::parse(loadgen_report_json(config, report));
  ASSERT_TRUE(snapshot.ok());
  EXPECT_NE(snapshot.value().find("latency_ms"), nullptr);
  EXPECT_NE(snapshot.value().find("cache"), nullptr);
  EXPECT_NE(snapshot.value().find("hot_query_speedup"), nullptr);
}

TEST(ServiceLoadgen, RejectsNonsenseConfigs) {
  LoadgenConfig config;
  config.clients = 0;
  EXPECT_EQ(run_loadgen(config).status().code(),
            core::StatusCode::kInvalidConfig);
  config.clients = 1;
  config.requests_per_client = 1;
  config.request.kind = RequestKind::kPing;  // not an analysis kind
  EXPECT_EQ(run_loadgen(config).status().code(),
            core::StatusCode::kInvalidConfig);
}

}  // namespace
}  // namespace rsmem::service
