// Tests for the physical memory module and the fault injector.
#include <gtest/gtest.h>

#include <stdexcept>

#include "memory/fault_injector.h"
#include "memory/memory_module.h"
#include "sim/event_queue.h"

namespace rsmem::memory {
namespace {

TEST(MemoryModule, ConstructionChecks) {
  EXPECT_THROW(MemoryModule(0, 8), std::invalid_argument);
  EXPECT_THROW(MemoryModule(18, 0), std::invalid_argument);
  EXPECT_THROW(MemoryModule(18, 17), std::invalid_argument);
  const MemoryModule mod{18, 8};
  EXPECT_EQ(mod.n(), 18u);
  EXPECT_EQ(mod.m(), 8u);
}

TEST(MemoryModule, WriteReadRoundTrip) {
  MemoryModule mod{4, 8};
  const std::vector<Element> data{0x12, 0x34, 0x56, 0x78};
  mod.write(data);
  EXPECT_EQ(mod.read(), data);
  EXPECT_EQ(mod.read_symbol(2), 0x56u);
}

TEST(MemoryModule, WriteValidation) {
  MemoryModule mod{4, 8};
  EXPECT_THROW(mod.write(std::vector<Element>{1, 2}), std::invalid_argument);
  EXPECT_THROW(mod.write_symbol(0, 0x100), std::invalid_argument);
  EXPECT_THROW(mod.write_symbol(4, 0x10), std::invalid_argument);
}

TEST(MemoryModule, FlipBitTogglesValue) {
  MemoryModule mod{2, 8};
  mod.write(std::vector<Element>{0x00, 0xFF});
  mod.flip_bit(0, 3);
  EXPECT_EQ(mod.read_symbol(0), 0x08u);
  mod.flip_bit(0, 3);
  EXPECT_EQ(mod.read_symbol(0), 0x00u);
  EXPECT_THROW(mod.flip_bit(0, 8), std::invalid_argument);
  EXPECT_THROW(mod.flip_bit(2, 0), std::invalid_argument);
}

TEST(MemoryModule, StuckBitOverridesWritesAndFlips) {
  MemoryModule mod{2, 8};
  mod.write(std::vector<Element>{0x00, 0x00});
  mod.stick_bit(0, 4, /*level=*/true, /*detected=*/true);
  EXPECT_EQ(mod.read_symbol(0), 0x10u);
  mod.write_symbol(0, 0x00);  // write cannot clear a stuck-at-1
  EXPECT_EQ(mod.read_symbol(0), 0x10u);
  mod.flip_bit(0, 4);  // SEU on a stuck cell has no visible effect
  EXPECT_EQ(mod.read_symbol(0), 0x10u);
  // stuck-at-0 masks a written 1.
  mod.stick_bit(1, 0, /*level=*/false, /*detected=*/true);
  mod.write_symbol(1, 0xFF);
  EXPECT_EQ(mod.read_symbol(1), 0xFEu);
}

TEST(MemoryModule, DetectionBookkeeping) {
  MemoryModule mod{5, 8};
  mod.stick_bit(1, 0, true, /*detected=*/true);
  mod.stick_bit(3, 2, false, /*detected=*/false);
  EXPECT_TRUE(mod.symbol_has_stuck_bit(1));
  EXPECT_TRUE(mod.symbol_has_stuck_bit(3));
  EXPECT_TRUE(mod.symbol_has_detected_fault(1));
  EXPECT_FALSE(mod.symbol_has_detected_fault(3));
  EXPECT_EQ(mod.detected_erasures(), (std::vector<unsigned>{1}));
  EXPECT_EQ(mod.stuck_symbols(), (std::vector<unsigned>{1, 3}));
  mod.detect_all_faults();
  EXPECT_EQ(mod.detected_erasures(), (std::vector<unsigned>{1, 3}));
  EXPECT_EQ(mod.stuck_bit_count(), 2u);
}

TEST(FaultInjector, RejectsNegativeRates) {
  sim::EventQueue q;
  MemoryModule mod{18, 8};
  FaultRates rates;
  rates.seu_rate_per_bit_hour = -1.0;
  EXPECT_THROW(FaultInjector(rates, sim::Rng{1}, q, mod),
               std::invalid_argument);
}

TEST(FaultInjector, InjectsAtExpectedRate) {
  sim::EventQueue q;
  MemoryModule mod{18, 8};
  mod.write(std::vector<Element>(18, 0));
  FaultRates rates;
  rates.seu_rate_per_bit_hour = 0.01;   // total 18*8*0.01 = 1.44/h
  rates.perm_rate_per_symbol_hour = 0.005;  // total 0.09/h
  FaultInjector inj{rates, sim::Rng{5}, q, mod};
  inj.start();
  inj.start();  // idempotent
  q.run_until(1000.0);
  // Expectations: 1440 SEUs (sd ~38), 90 permanents (sd ~9.5).
  EXPECT_NEAR(static_cast<double>(inj.seu_injected()), 1440.0, 200.0);
  EXPECT_NEAR(static_cast<double>(inj.permanent_injected()), 90.0, 40.0);
  EXPECT_GT(mod.stuck_bit_count(), 0u);
  // Ideal detection: every stuck symbol is a detected erasure.
  EXPECT_EQ(mod.detected_erasures(), mod.stuck_symbols());
}

TEST(FaultInjector, ZeroRatesInjectNothing) {
  sim::EventQueue q;
  MemoryModule mod{18, 8};
  FaultInjector inj{FaultRates{}, sim::Rng{5}, q, mod};
  inj.start();
  q.run_until(1000.0);
  EXPECT_EQ(inj.seu_injected(), 0u);
  EXPECT_EQ(inj.permanent_injected(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(FaultInjector, DetectionLatencyDefersErasureInfo) {
  sim::EventQueue q;
  MemoryModule mod{18, 8};
  mod.write(std::vector<Element>(18, 0));
  FaultRates rates;
  rates.perm_rate_per_symbol_hour = 1.0;  // frequent
  rates.detection_latency_hours = 5.0;
  FaultInjector inj{rates, sim::Rng{6}, q, mod};
  inj.start();
  // Run just far enough that some faults exist whose detection is pending.
  q.run_until(0.5);
  ASSERT_GT(inj.permanent_injected(), 0u);
  EXPECT_LT(mod.detected_erasures().size(), mod.stuck_symbols().size() + 1);
  const auto undetected_at_half =
      mod.stuck_symbols().size() - mod.detected_erasures().size();
  EXPECT_GT(undetected_at_half, 0u);
  // After the latency elapses, those faults are detected.
  q.run_until(6.0);
  EXPECT_GE(mod.detected_erasures().size(), undetected_at_half);
}

}  // namespace
}  // namespace rsmem::memory
