// Deep cross-checks: brute-force state-space enumeration vs BFS, decoder
// mis-correction statistics vs coding-theory estimates, periodic-jump
// identities, and field/codec interop variants.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "gf/galois_field.h"
#include "markov/periodic.h"
#include "markov/uniformization.h"
#include "models/duplex_model.h"
#include "models/simplex_model.h"
#include "rs/reed_solomon.h"
#include "sim/rng.h"

namespace rsmem {
namespace {

// ---- every GF(2^m) constructs and satisfies the inverse law. ----

TEST(DeepGf, AllSupportedFieldsConstruct) {
  for (unsigned m = 2; m <= 16; ++m) {
    const gf::GaloisField f{m};
    EXPECT_EQ(f.size(), 1u << m);
    // alpha generates: alpha^(order) == 1 and alpha^(order/2) != 1 when
    // order is even (it is for 2^m - 1 only when m = 1, so just check a
    // few random inverses instead).
    sim::Rng rng{m};
    for (int i = 0; i < 50; ++i) {
      const gf::Element a =
          1 + static_cast<gf::Element>(rng.uniform_int(f.order()));
      EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
    }
  }
}

// ---- RS over an alternative primitive polynomial. ----

TEST(DeepRs, AlternativePrimitivePolynomialInteroperates) {
  // 0x187 (x^8+x^7+x^2+x+1) is another primitive polynomial for GF(2^8),
  // used by several storage codecs.
  rs::CodeParams params{18, 16, 8, 1, 0x187};
  const rs::ReedSolomon code{params};
  EXPECT_EQ(code.field().primitive_poly(), 0x187u);
  sim::Rng rng{404};
  std::vector<gf::Element> data(16);
  for (auto& d : data) d = static_cast<gf::Element>(rng.uniform_int(256));
  auto cw = code.encode(data);
  EXPECT_TRUE(code.is_codeword(cw));
  cw[3] ^= 0x40;
  const auto outcome = code.decode(cw);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(code.extract_data(cw), data);

  // Codewords of the default-poly code are generally NOT codewords here.
  const rs::ReedSolomon default_code{18, 16, 8};
  const auto other = default_code.encode(data);
  EXPECT_FALSE(code.is_codeword(other));

  // Non-primitive polynomial is rejected through the codec too.
  rs::CodeParams bad{18, 16, 8, 1, 0x11B};
  EXPECT_THROW(rs::ReedSolomon{bad}, std::invalid_argument);
}

// ---- mis-correction statistics vs coding-theory estimate. ----

TEST(DeepRs, MiscorrectionRateMatchesSpherePackingEstimate) {
  // For a t=1 code, a random word beyond the correction radius decodes to
  // SOME codeword with probability ~ (fraction of space covered by radius-1
  // balls) = q^k * (1 + n(q-1)) / q^n = (1 + 18*255)/65536 ~ 0.0701.
  // Words at distance 2 from a codeword are nearly random w.r.t. other
  // codewords, so the measured mis-correction fraction must sit near that.
  const rs::ReedSolomon code{18, 16, 8};
  sim::Rng rng{777};
  std::vector<gf::Element> data(16);
  for (auto& d : data) d = static_cast<gf::Element>(rng.uniform_int(256));
  const auto cw = code.encode(data);

  int miscorrected = 0;
  const int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto word = cw;
    const unsigned p1 = static_cast<unsigned>(rng.uniform_int(18));
    unsigned p2;
    do {
      p2 = static_cast<unsigned>(rng.uniform_int(18));
    } while (p2 == p1);
    word[p1] ^= static_cast<gf::Element>(1 + rng.uniform_int(255));
    word[p2] ^= static_cast<gf::Element>(1 + rng.uniform_int(255));
    const auto outcome = code.decode(word);
    if (outcome.status == rs::DecodeStatus::kCorrected) ++miscorrected;
  }
  const double measured = static_cast<double>(miscorrected) / kTrials;
  const double estimate = (1.0 + 18.0 * 255.0) / 65536.0;
  // Distance-2 words are not exactly uniform; allow a generous band.
  EXPECT_GT(measured, estimate * 0.5);
  EXPECT_LT(measured, estimate * 1.6);
}

TEST(DeepRs, StrongCodeAlmostAlwaysDetectsOverload) {
  // RS(36,16), t=10: with 11 random errors the decodable fraction of space
  // is astronomically small, so detection (kFailure) must dominate.
  const rs::ReedSolomon code{36, 16, 8};
  sim::Rng rng{888};
  std::vector<gf::Element> data(16);
  for (auto& d : data) d = static_cast<gf::Element>(rng.uniform_int(256));
  const auto cw = code.encode(data);
  int detected = 0;
  const int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto word = cw;
    std::set<unsigned> positions;
    while (positions.size() < 11) {
      positions.insert(static_cast<unsigned>(rng.uniform_int(36)));
    }
    for (const unsigned p : positions) {
      word[p] ^= static_cast<gf::Element>(1 + rng.uniform_int(255));
    }
    detected += (code.decode(word).status == rs::DecodeStatus::kFailure);
  }
  EXPECT_GE(detected, kTrials - 1);
}

// ---- duplex state space: BFS reachability vs brute-force enumeration. ----

TEST(DeepDuplex, StateSpaceMatchesBruteForceEnumeration) {
  models::DuplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1.0;
  p.erasure_rate_per_symbol_hour = 1.0;
  p.scrub_rate_per_hour = 1.0;
  const models::DuplexModel model{p};
  const markov::StateSpace space = model.build();

  // Brute-force: all 6-tuples within geometric and budget limits.
  std::set<markov::PackedState> brute;
  for (unsigned x = 0; x <= 18; ++x) {
    for (unsigned y = 0; x + y <= 18; ++y) {
      for (unsigned b = 0; x + y + b <= 18; ++b) {
        for (unsigned e1 = 0; x + y + b + e1 <= 18; ++e1) {
          for (unsigned e2 = 0; x + y + b + e1 + e2 <= 18; ++e2) {
            for (unsigned ec = 0; x + y + b + e1 + e2 + ec <= 18; ++ec) {
              const models::DuplexState s{x, y, b, e1, e2, ec};
              if (model.recoverable(s)) {
                brute.insert(models::DuplexModel::pack(s));
              }
            }
          }
        }
      }
    }
  }
  // Every reachable state is a valid recoverable tuple (or Fail).
  unsigned reachable_valid = 0;
  for (const markov::PackedState s : space.states) {
    if (models::DuplexModel::is_fail(s)) continue;
    EXPECT_EQ(brute.count(s), 1u) << "unexpected reachable state";
    ++reachable_valid;
  }
  // And reachability covers the full recoverable set: from the empty pair
  // every recoverable tuple is constructible via C/A/L/M/N/O/G chains.
  EXPECT_EQ(reachable_valid, brute.size());
  EXPECT_EQ(space.size(), brute.size() + 1);  // + Fail
}

// ---- simplex state space brute force (same idea). ----

TEST(DeepSimplex, StateSpaceMatchesBruteForce) {
  models::SimplexParams p;
  p.n = 36;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1.0;
  p.erasure_rate_per_symbol_hour = 1.0;
  const markov::StateSpace space = models::SimplexModel{p}.build();
  unsigned brute = 0;
  for (unsigned er = 0; er <= 20; ++er) {
    for (unsigned re = 0; er + 2 * re <= 20; ++re) ++brute;
  }
  EXPECT_EQ(space.size(), brute + 1);
}

// ---- state-count closed form across parity budgets. ----

class SimplexStateCount : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimplexStateCount, MatchesClosedForm) {
  const unsigned parity = GetParam();
  models::SimplexParams p;
  p.n = 16 + parity;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1.0;
  p.erasure_rate_per_symbol_hour = 1.0;
  const markov::StateSpace space = models::SimplexModel{p}.build();
  // #{(er,re): er + 2re <= parity} = sum over re of (parity - 2re + 1).
  unsigned expected = 0;
  for (unsigned re = 0; 2 * re <= parity; ++re) {
    expected += parity - 2 * re + 1;
  }
  EXPECT_EQ(space.size(), expected + 1);  // + Fail
}

INSTANTIATE_TEST_SUITE_P(ParityBudgets, SimplexStateCount,
                         ::testing::Values(2u, 4u, 6u, 8u, 12u, 20u));

// ---- periodic jump identities. ----

TEST(DeepPeriodic, IdentityJumpEqualsPlainTransient) {
  models::SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1e-3;
  const markov::StateSpace space = models::SimplexModel{p}.build();
  const markov::UniformizationSolver solver;
  std::vector<std::size_t> identity(space.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  const std::vector<double> pi0 = space.chain.initial_distribution();
  const auto jumped = markov::solve_with_periodic_jump(
      space.chain, pi0, identity, 7.0, 48.0, solver);
  const auto plain = solver.solve(space.chain, pi0, 48.0);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_NEAR(jumped[i], plain[i], 1e-12);
  }
}

TEST(DeepPeriodic, JumpExactlyAtQueryTimeApplies) {
  // Query at t == period: the scrub at that instant must already apply.
  models::SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1e-4;  // ~0.14 expected flips per period
  const markov::StateSpace space = models::SimplexModel{p}.build();
  const markov::UniformizationSolver solver;
  // Jump map: everything to the initial state (an aggressive full repair).
  std::vector<std::size_t> reset(space.size(), space.initial_index);
  const std::size_t fail = space.index_of(models::SimplexModel::fail_state());
  reset[fail] = fail;
  const auto pi = markov::solve_with_periodic_jump(
      space.chain, space.chain.initial_distribution(), reset, 10.0, 10.0,
      solver);
  // All surviving mass is back at the initial state.
  EXPECT_NEAR(pi[space.initial_index] + pi[fail], 1.0, 1e-10);
  EXPECT_GT(pi[space.initial_index], 0.99);
}

}  // namespace
}  // namespace rsmem
