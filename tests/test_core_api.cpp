// Tests for units, the top-level configuration struct, and the facade API.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/api.h"
#include "core/units.h"

namespace rsmem {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(core::per_day_to_per_hour(24.0), 1.0);
  EXPECT_DOUBLE_EQ(core::per_hour_to_per_day(1.0), 24.0);
  EXPECT_DOUBLE_EQ(core::seconds_to_hours(1800.0), 0.5);
  EXPECT_DOUBLE_EQ(core::hours_to_seconds(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(core::days_to_hours(2.0), 48.0);
  EXPECT_NEAR(core::months_to_hours(12.0), 8760.0, 1e-9);
  EXPECT_NEAR(core::hours_to_months(core::months_to_hours(7.0)), 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(core::scrub_rate_per_hour(900.0), 4.0);
  EXPECT_DOUBLE_EQ(core::scrub_rate_per_hour(0.0), 0.0);
}

TEST(MemorySystemSpec, Validation) {
  core::MemorySystemSpec spec;
  spec.code = {18, 18, 8, 1};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.code = {18, 16, 4, 1};  // n > 2^4-1
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.code = {18, 16, 8, 1};
  spec.scrub_period_seconds = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.scrub_period_seconds = 0.0;
  EXPECT_NO_THROW(spec.validate());
}

TEST(MemorySystemSpec, ConvertsUnitsToModelParams) {
  core::MemorySystemSpec spec;
  spec.seu_rate_per_bit_day = 2.4;
  spec.erasure_rate_per_symbol_day = 4.8;
  spec.scrub_period_seconds = 1800.0;
  const models::SimplexParams sp = spec.to_simplex_params();
  EXPECT_DOUBLE_EQ(sp.seu_rate_per_bit_hour, 0.1);
  EXPECT_DOUBLE_EQ(sp.erasure_rate_per_symbol_hour, 0.2);
  EXPECT_DOUBLE_EQ(sp.scrub_rate_per_hour, 2.0);
  const models::DuplexParams dp = spec.to_duplex_params();
  EXPECT_DOUBLE_EQ(dp.seu_rate_per_bit_hour, 0.1);
  EXPECT_EQ(dp.convention, models::RateConvention::kPaper);
}

TEST(MemorySystemSpec, ConvertsToSystemConfigs) {
  core::MemorySystemSpec spec;
  spec.scrub_period_seconds = 900.0;
  const memory::SimplexSystemConfig cfg = spec.to_simplex_system_config(42);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.scrub_policy, memory::ScrubPolicy::kExponential);
  EXPECT_DOUBLE_EQ(cfg.scrub_period_hours, 0.25);

  core::MemorySystemSpec no_scrub;
  const memory::DuplexSystemConfig dcfg =
      no_scrub.to_duplex_system_config(7, memory::ScrubPolicy::kPeriodic);
  EXPECT_EQ(dcfg.scrub_policy, memory::ScrubPolicy::kNone);
}

TEST(Api, VersionIsSemantic) {
  const std::string v = version();
  EXPECT_EQ(std::count(v.begin(), v.end(), '.'), 2);
}

TEST(Api, AnalyzeBerSimplexVsDuplex) {
  core::MemorySystemSpec spec;
  spec.seu_rate_per_bit_day = 1.7e-5;
  const double times[] = {24.0, 48.0};
  const models::BerCurve simplex = analyze_ber(spec, times);
  spec.arrangement = analysis::Arrangement::kDuplex;
  const models::BerCurve duplex = analyze_ber(spec, times);
  ASSERT_EQ(simplex.ber.size(), 2u);
  ASSERT_EQ(duplex.ber.size(), 2u);
  EXPECT_GT(simplex.ber[1], 0.0);
  EXPECT_GT(duplex.ber[1], 0.0);
}

TEST(Api, FailProbabilityMatchesCurve) {
  core::MemorySystemSpec spec;
  spec.seu_rate_per_bit_day = 1.7e-5;
  const double times[] = {48.0};
  EXPECT_DOUBLE_EQ(fail_probability(spec, 48.0),
                   analyze_ber(spec, times).fail_probability[0]);
}

TEST(Api, SimulateRunsBothArrangements) {
  core::MemorySystemSpec spec;
  spec.seu_rate_per_bit_day = 1e-2;  // accelerated
  analysis::MonteCarloConfig mc;
  mc.trials = 50;
  mc.t_end_hours = 48.0;
  const analysis::MonteCarloResult s = simulate(spec, mc);
  EXPECT_EQ(s.failure.trials, 50u);
  spec.arrangement = analysis::Arrangement::kDuplex;
  const analysis::MonteCarloResult d = simulate(spec, mc);
  EXPECT_EQ(d.failure.trials, 50u);
}

TEST(Api, MttfHours) {
  core::MemorySystemSpec spec;
  spec.erasure_rate_per_symbol_day = 1e-3;
  const double simplex = mttf_hours(spec);
  EXPECT_GT(simplex, 0.0);
  spec.arrangement = analysis::Arrangement::kDuplex;
  EXPECT_GT(mttf_hours(spec), simplex);
  core::MemorySystemSpec no_faults;
  EXPECT_THROW(mttf_hours(no_faults), std::domain_error);
}

TEST(Api, PeriodicScrubFacade) {
  core::MemorySystemSpec spec;
  spec.seu_rate_per_bit_day = 1e-2;
  spec.scrub_period_seconds = 1800.0;
  const double times[] = {48.0};
  const models::BerCurve periodic = analyze_ber_periodic_scrub(spec, times);
  const models::BerCurve exponential = analyze_ber(spec, times);
  EXPECT_GT(periodic.ber[0], 0.0);
  EXPECT_LT(periodic.ber[0], exponential.ber[0]);
  spec.scrub_period_seconds = 0.0;
  EXPECT_THROW(analyze_ber_periodic_scrub(spec, times),
               std::invalid_argument);
}

TEST(Api, CodecCostMatchesPaper) {
  core::MemorySystemSpec duplex1816;
  duplex1816.arrangement = analysis::Arrangement::kDuplex;
  core::MemorySystemSpec simplex3616;
  simplex3616.code = {36, 16, 8, 1};
  const auto d = codec_cost(duplex1816);
  const auto s = codec_cost(simplex3616);
  EXPECT_DOUBLE_EQ(d.decode_cycles, 74.0);
  EXPECT_DOUBLE_EQ(s.decode_cycles, 308.0);
  EXPECT_GT(s.area_gates, d.area_gates);
}

}  // namespace
}  // namespace rsmem
