// Tests for derived metrics: MTTF, deterministic-periodic scrubbing,
// array-level figures, the detection-latency model and scrub overhead.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>

#include "core/units.h"
#include "markov/periodic.h"
#include "markov/uniformization.h"
#include "models/detection_model.h"
#include "models/memory_array.h"
#include "models/metrics.h"
#include "reliability/scrub_overhead.h"

namespace rsmem::models {
namespace {

SimplexParams simplex_base() {
  SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  return p;
}

TEST(Mttf, ErasureOnlySimplexClosedForm) {
  // Pure birth chain: MTTF = 1/(18 le) + 1/(17 le) + 1/(16 le).
  SimplexParams p = simplex_base();
  const double le = 0.01;
  p.erasure_rate_per_symbol_hour = le;
  const double expected =
      1.0 / (18 * le) + 1.0 / (17 * le) + 1.0 / (16 * le);
  EXPECT_NEAR(simplex_mttf_hours(p), expected, 1e-9);
}

TEST(Mttf, ScrubbingExtendsLife) {
  SimplexParams p = simplex_base();
  p.seu_rate_per_bit_hour = 1e-3;
  const double no_scrub = simplex_mttf_hours(p);
  p.scrub_rate_per_hour = 10.0;
  const double with_scrub = simplex_mttf_hours(p);
  EXPECT_GT(with_scrub, 5.0 * no_scrub);
}

TEST(Mttf, DuplexOutlivesSimplexUnderPermanentFaults) {
  SimplexParams sp = simplex_base();
  sp.erasure_rate_per_symbol_hour = 1e-4;
  DuplexParams dp;
  dp.n = 18;
  dp.k = 16;
  dp.m = 8;
  dp.erasure_rate_per_symbol_hour = 1e-4;
  EXPECT_GT(duplex_mttf_hours(dp), 3.0 * simplex_mttf_hours(sp));
}

TEST(Mttf, ThrowsWhenFailUnreachable) {
  EXPECT_THROW(simplex_mttf_hours(simplex_base()), std::domain_error);
  EXPECT_THROW(duplex_mttf_hours(DuplexParams{}), std::domain_error);
}

TEST(PeriodicScrub, MatchesNoScrubWhenPeriodExceedsHorizon) {
  SimplexParams p = simplex_base();
  p.seu_rate_per_bit_hour = 1e-4;
  const markov::UniformizationSolver solver;
  const std::vector<double> times{10.0, 40.0};
  const BerCurve periodic =
      simplex_periodic_scrub_ber(p, 1000.0, times, solver);
  const BerCurve none = simplex_ber_curve(p, times, solver);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(periodic.fail_probability[i], none.fail_probability[i],
                1e-12);
  }
}

TEST(PeriodicScrub, ImprovesOverNoScrubAndTracksExponential) {
  SimplexParams p = simplex_base();
  p.seu_rate_per_bit_hour = 5e-4;
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  const double tsc = 0.5;  // hours

  const double none =
      simplex_ber_curve(p, times, solver).fail_probability[0];
  const double periodic =
      simplex_periodic_scrub_ber(p, tsc, times, solver).fail_probability[0];
  SimplexParams pe = p;
  pe.scrub_rate_per_hour = 1.0 / tsc;
  const double exponential =
      simplex_ber_curve(pe, times, solver).fail_probability[0];

  EXPECT_LT(periodic, none / 10.0);
  // The exponential approximation sometimes scrubs late (memoryless), so it
  // must be PESSIMISTIC relative to the deterministic policy...
  EXPECT_GT(exponential, periodic);
  // ...but within a small factor at these rates.
  EXPECT_LT(exponential, periodic * 4.0);
}

TEST(PeriodicScrub, DuplexScrubMapKeepsPermanentDamage) {
  DuplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 2e-4;
  p.erasure_rate_per_symbol_hour = 1e-4;
  const markov::UniformizationSolver solver;
  const std::vector<double> times{24.0, 48.0};
  const BerCurve periodic = duplex_periodic_scrub_ber(p, 0.5, times, solver);
  const BerCurve none = duplex_ber_curve(p, times, solver);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_LT(periodic.fail_probability[i], none.fail_probability[i]);
    EXPECT_GT(periodic.fail_probability[i], 0.0);
  }
}

TEST(PeriodicJump, ValidatesInputs) {
  SimplexParams p = simplex_base();
  p.seu_rate_per_bit_hour = 1e-4;
  const markov::StateSpace space = SimplexModel{p}.build();
  const markov::UniformizationSolver solver;
  const std::vector<double> pi0 = space.chain.initial_distribution();
  std::vector<std::size_t> map(space.size(), 0);
  EXPECT_THROW(markov::solve_with_periodic_jump(space.chain, pi0, map, 0.0,
                                                1.0, solver),
               std::invalid_argument);
  map[0] = space.size();  // out of range
  EXPECT_THROW(markov::solve_with_periodic_jump(space.chain, pi0, map, 1.0,
                                                1.0, solver),
               std::invalid_argument);
  std::vector<std::size_t> short_map(space.size() - 1, 0);
  EXPECT_THROW(markov::solve_with_periodic_jump(space.chain, pi0, short_map,
                                                1.0, 1.0, solver),
               std::invalid_argument);
}

TEST(DetectionModel, InstantDetectionRecoversBaseModel) {
  // delta very large: undetected faults convert immediately; BER must match
  // the base simplex chain closely.
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  SimplexParams base = simplex_base();
  base.erasure_rate_per_symbol_hour = 2e-3;
  const double base_ber =
      simplex_ber_curve(base, times, solver).fail_probability[0];

  DetectionParams det;
  det.n = 18;
  det.k = 16;
  det.m = 8;
  det.erasure_rate_per_symbol_hour = 2e-3;
  // Location within ~1 minute is "instant" next to fault inter-arrival
  // times of hours; much larger deltas only make the chain stiffer.
  det.detection_rate_per_hour = 50.0;
  const DetectionModel model{det};
  const markov::StateSpace space = model.build();
  const double det_ber =
      model.fail_probability(space, times, solver).front();
  EXPECT_NEAR(det_ber, base_ber, base_ber * 0.01);
}

TEST(DetectionModel, SlowerDetectionDegradesReliability) {
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  double prev = 0.0;
  // delta from near-instant to never: fail probability must increase.
  for (const double delta : {50.0, 1.0, 0.1, 0.0}) {
    DetectionParams det;
    det.n = 18;
    det.k = 16;
    det.m = 8;
    det.erasure_rate_per_symbol_hour = 2e-3;
    det.detection_rate_per_hour = delta;
    const DetectionModel model{det};
    const markov::StateSpace space = model.build();
    const double p_fail =
        model.fail_probability(space, times, solver).front();
    EXPECT_GT(p_fail, prev) << "delta=" << delta;
    prev = p_fail;
  }
}

TEST(DetectionModel, TransitionStructure) {
  DetectionParams det;
  det.n = 36;
  det.k = 16;
  det.m = 8;
  det.seu_rate_per_bit_hour = 1.0;
  det.erasure_rate_per_symbol_hour = 2.0;
  det.detection_rate_per_hour = 5.0;
  det.scrub_rate_per_hour = 7.0;
  const DetectionModel model{det};
  std::map<markov::PackedState, double> t;
  model.for_each_transition(
      DetectionModel::pack(DetectionState{2, 1, 3}),
      [&](double rate, markov::PackedState to) { t[to] += rate; });
  const unsigned untouched = 36 - 6;
  // SEU on untouched -> re+1.
  EXPECT_DOUBLE_EQ(t.at(DetectionModel::pack({2, 1, 4})), 8.0 * untouched);
  // Permanent on untouched -> eu+1.
  EXPECT_DOUBLE_EQ(t.at(DetectionModel::pack({3, 1, 3})), 2.0 * untouched);
  // Permanent on an SEU symbol -> eu+1, re-1.
  EXPECT_DOUBLE_EQ(t.at(DetectionModel::pack({3, 1, 2})), 2.0 * 3.0);
  // Detection -> eu-1, ed+1.
  EXPECT_DOUBLE_EQ(t.at(DetectionModel::pack({1, 2, 3})), 5.0 * 2.0);
  // Scrub -> re=0.
  EXPECT_DOUBLE_EQ(t.at(DetectionModel::pack({2, 1, 0})), 7.0);
}

TEST(DetectionModel, ValidatesParams) {
  DetectionParams det;
  det.n = 18;
  det.k = 18;
  EXPECT_THROW(DetectionModel{det}, std::invalid_argument);
  det.k = 16;
  det.detection_rate_per_hour = -1.0;
  EXPECT_THROW(DetectionModel{det}, std::invalid_argument);
}

TEST(MemoryArray, SurvivalFormulas) {
  EXPECT_DOUBLE_EQ(array_survival(0.0, 1000), 1.0);
  EXPECT_DOUBLE_EQ(array_survival(1.0, 1000), 0.0);
  EXPECT_NEAR(array_survival(0.5, 2), 0.25, 1e-15);
  EXPECT_NEAR(array_loss_probability(1e-12, 1u << 20),
              1e-12 * (1u << 20),
              1e-6 * 1e-12 * (1u << 20));  // tiny regime: ~W*p
  EXPECT_DOUBLE_EQ(expected_failed_words(0.25, 8), 2.0);
  EXPECT_THROW(array_survival(-0.1, 10), std::invalid_argument);
  EXPECT_THROW(array_survival(1.5, 10), std::invalid_argument);
}

TEST(MemoryArray, HugeArrayStaysAccurate) {
  // 1e9 words with p = 1e-15: loss ~ 1e-6 without catastrophic rounding.
  const double loss = array_loss_probability(1e-15, 1'000'000'000);
  EXPECT_NEAR(loss, 1e-6, 1e-9);
}

TEST(MemoryArray, MttdlScalesInverselyWithLogOfWords) {
  SimplexParams p = simplex_base();
  p.erasure_rate_per_symbol_hour = 1e-3;
  const double one = array_mttdl_hours(p, 1, 20000.0);
  const double many = array_mttdl_hours(p, 1024, 20000.0);
  EXPECT_GT(one, many);
  // Single-word MTTDL must agree with the absorption-based MTTF.
  EXPECT_NEAR(one, simplex_mttf_hours(p), one * 0.01);
}

TEST(MemoryArray, MttdlValidation) {
  SimplexParams p = simplex_base();
  EXPECT_THROW(array_mttdl_hours(p, 10, -1.0), std::invalid_argument);
  EXPECT_THROW(array_mttdl_hours(p, 10, 100.0), std::domain_error);
}

}  // namespace
}  // namespace rsmem::models

namespace rsmem::reliability {
namespace {

TEST(ScrubOverhead, BasicAccounting) {
  const DecoderCostModel model;
  ScrubOverheadParams params;
  params.words = 1u << 20;
  params.clock_hz = 50e6;
  const ScrubOverhead oh = scrub_overhead(model, 18, 16, 3600.0, params);
  // Per word: 2 + 74 + 0.05*2 = 76.1 cycles; 2^20 words.
  EXPECT_NEAR(oh.cycles_per_pass, 76.1 * 1048576.0, 1.0);
  EXPECT_NEAR(oh.pass_seconds, oh.cycles_per_pass / 50e6, 1e-9);
  EXPECT_NEAR(oh.duty_fraction, oh.pass_seconds / 3600.0, 1e-12);
  EXPECT_NEAR(oh.availability, 1.0 - oh.duty_fraction, 1e-15);
  EXPECT_GT(oh.average_power_watts, 0.0);
}

TEST(ScrubOverhead, WideCodeCostsMoreAvailability) {
  const DecoderCostModel model;
  ScrubOverheadParams params;
  const ScrubOverhead narrow = scrub_overhead(model, 18, 16, 900.0, params);
  const ScrubOverhead wide = scrub_overhead(model, 36, 16, 900.0, params);
  EXPECT_GT(wide.duty_fraction, narrow.duty_fraction);
  // Two parallel engines (duplex) halve the pass time.
  ScrubOverheadParams two = params;
  two.decoders = 2;
  const ScrubOverhead dual = scrub_overhead(model, 18, 16, 900.0, two);
  EXPECT_NEAR(dual.pass_seconds, narrow.pass_seconds / 2.0, 1e-9);
}

TEST(ScrubOverhead, Validation) {
  const DecoderCostModel model;
  ScrubOverheadParams params;
  EXPECT_THROW(scrub_overhead(model, 18, 16, 0.0, params),
               std::invalid_argument);
  params.write_back_fraction = 1.5;
  EXPECT_THROW(scrub_overhead(model, 18, 16, 900.0, params),
               std::invalid_argument);
  // A pass that cannot fit: enormous array, tiny period.
  ScrubOverheadParams huge;
  huge.words = 1u << 30;
  huge.clock_hz = 1e6;
  EXPECT_THROW(scrub_overhead(model, 18, 16, 1.0, huge),
               std::invalid_argument);
}

}  // namespace
}  // namespace rsmem::reliability
