// Robustness layer: status taxonomy, config validation, thread-pool
// exception propagation, the guarded solver fallback chain, graceful
// degradation policies, and the adversarial fault-injection campaign.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "analysis/fault_campaign.h"
#include "core/api.h"
#include "core/config.h"
#include "core/status.h"
#include "linalg/csr_matrix.h"
#include "markov/ctmc.h"
#include "markov/solver_guard.h"
#include "markov/solver_workspace.h"
#include "markov/uniformization.h"
#include "memory/degradation.h"
#include "memory/duplex_system.h"
#include "memory/simplex_system.h"
#include "rs/reed_solomon.h"
#include "sim/thread_pool.h"

namespace rsmem {
namespace {

using core::Status;
using core::StatusCode;
using gf::Element;

// ---- status taxonomy ----

TEST(Status, TaxonomyAndContextChain) {
  EXPECT_TRUE(Status::ok().is_ok());
  EXPECT_STREQ(core::to_string(StatusCode::kInvalidConfig), "InvalidConfig");
  EXPECT_STREQ(core::to_string(StatusCode::kSolverDivergence),
               "SolverDivergence");
  Status s = Status::decode_failure("pattern beyond capability");
  s.with_context("read").with_context("duplex");
  EXPECT_EQ(s.code(), StatusCode::kDecodeFailure);
  EXPECT_EQ(s.message(), "duplex: read: pattern beyond capability");
  EXPECT_NE(s.to_string().find("DecodeFailure"), std::string::npos);
}

TEST(Status, ResultValueAndError) {
  core::Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(-1), 7);

  core::Result<int> bad(Status::invalid_config("k >= n"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidConfig);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW(bad.value(), core::StatusError);
  try {
    (void)bad.value();
  } catch (const core::StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidConfig);
  }
}

// ---- config validation hardening ----

core::MemorySystemSpec valid_spec() {
  core::MemorySystemSpec spec;
  spec.seu_rate_per_bit_day = 1e-5;
  spec.scrub_period_seconds = 900.0;
  return spec;
}

TEST(ConfigValidation, AcceptsPaperSpec) {
  EXPECT_TRUE(valid_spec().validate_status().is_ok());
  EXPECT_NO_THROW(valid_spec().validate());
}

TEST(ConfigValidation, RejectsZeroK) {
  core::MemorySystemSpec spec = valid_spec();
  spec.code.k = 0;
  const Status s = spec.validate_status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidConfig);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ConfigValidation, RejectsKNotBelowN) {
  core::MemorySystemSpec spec = valid_spec();
  spec.code.k = spec.code.n;  // zero parity symbols
  const Status s = spec.validate_status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidConfig);
  // The message must be actionable: name the constraint and the values.
  EXPECT_NE(s.message().find("parity"), std::string::npos);
  EXPECT_NE(s.message().find("18"), std::string::npos);
}

TEST(ConfigValidation, RejectsSymbolWidthOutOfRange) {
  core::MemorySystemSpec spec = valid_spec();
  spec.code.m = 1;
  EXPECT_EQ(spec.validate_status().code(), StatusCode::kInvalidConfig);
  spec.code.m = 17;
  EXPECT_EQ(spec.validate_status().code(), StatusCode::kInvalidConfig);
}

TEST(ConfigValidation, RejectsCodeLongerThanField) {
  core::MemorySystemSpec spec = valid_spec();
  spec.code = {300, 16, 8, 1};  // n > 2^8 - 1
  const Status s = spec.validate_status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidConfig);
  EXPECT_NE(s.message().find("255"), std::string::npos);
}

TEST(ConfigValidation, RejectsBadRates) {
  core::MemorySystemSpec spec = valid_spec();
  spec.seu_rate_per_bit_day = -1.0;
  EXPECT_EQ(spec.validate_status().code(), StatusCode::kInvalidConfig);
  spec = valid_spec();
  spec.seu_rate_per_bit_day = std::nan("");
  EXPECT_EQ(spec.validate_status().code(), StatusCode::kInvalidConfig);
  spec = valid_spec();
  spec.erasure_rate_per_symbol_day = -2.0;
  EXPECT_EQ(spec.validate_status().code(), StatusCode::kInvalidConfig);
  spec = valid_spec();
  spec.scrub_period_seconds = -900.0;
  EXPECT_EQ(spec.validate_status().code(), StatusCode::kInvalidConfig);
}

TEST(ConfigValidation, ScrubbedVariantRequiresPositivePeriod) {
  core::MemorySystemSpec spec = valid_spec();
  spec.scrub_period_seconds = 0.0;  // fine in general (no scrubbing)...
  EXPECT_TRUE(spec.validate_status().is_ok());
  // ...but not for analyses that model the scrubbing process.
  EXPECT_EQ(spec.validate_scrubbed_status().code(),
            StatusCode::kInvalidConfig);
}

TEST(ConfigValidation, TryApiReturnsInvalidConfigInsteadOfThrowing) {
  core::MemorySystemSpec spec = valid_spec();
  spec.code.k = spec.code.n;
  const double times[] = {1.0, 2.0};
  const core::Result<models::BerCurve> curve = try_analyze_ber(spec, times);
  ASSERT_FALSE(curve.ok());
  EXPECT_EQ(curve.status().code(), StatusCode::kInvalidConfig);
  const core::Result<double> p = try_fail_probability(spec, 1.0);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidConfig);

  // Periodic-scrub analysis additionally needs a scrub period.
  core::MemorySystemSpec no_scrub = valid_spec();
  no_scrub.scrub_period_seconds = 0.0;
  const core::Result<models::BerCurve> periodic =
      try_analyze_ber_periodic_scrub(no_scrub, times);
  ASSERT_FALSE(periodic.ok());
  EXPECT_EQ(periodic.status().code(), StatusCode::kInvalidConfig);
}

TEST(ConfigValidation, TryApiMatchesThrowingApiOnValidSpec) {
  const core::MemorySystemSpec spec = valid_spec();
  const double times[] = {1.0, 24.0, 48.0};
  const models::BerCurve direct = analyze_ber(spec, times);
  const core::Result<models::BerCurve> guarded = try_analyze_ber(spec, times);
  ASSERT_TRUE(guarded.ok());
  ASSERT_EQ(guarded.value().ber.size(), direct.ber.size());
  for (std::size_t i = 0; i < direct.ber.size(); ++i) {
    EXPECT_EQ(guarded.value().ber[i], direct.ber[i]) << "point " << i;
  }
  const core::Result<double> mttf = try_mttf_hours(spec);
  ASSERT_TRUE(mttf.ok());
  EXPECT_EQ(mttf.value(), mttf_hours(spec));
}

// ---- thread-pool exception propagation ----

TEST(ThreadPoolExceptions, FirstExceptionRethrownFromWaitIdle) {
  sim::ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([i, &completed] {
      if (i == 3) throw std::runtime_error("task 3 failed");
      ++completed;
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 7);  // the other tasks all ran
}

TEST(ThreadPoolExceptions, PoolUsableAfterFailure) {
  sim::ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  // The exception slot is cleared: new work runs normally.
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) pool.submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolExceptions, OnlyFirstOfManyIsReported) {
  sim::ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.submit([] { throw std::runtime_error("each task throws"); });
  }
  // Exactly one throw surfaces; the pool still drains completely.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_NO_THROW(pool.wait_idle());
}

// ---- guarded solver fallback chain ----

markov::Ctmc small_chain() {
  return markov::Ctmc(
      linalg::CsrMatrix(
          3, 3, {{0, 0, -2.0}, {0, 1, 2.0}, {1, 1, -1.0}, {1, 2, 1.0}}),
      0);
}

TEST(SolverGuard, DistributionChecks) {
  markov::SolverGuardConfig cfg;
  const std::vector<double> good = {0.25, 0.5, 0.25};
  EXPECT_EQ(markov::check_distribution(good, 1.0, cfg),
            markov::GuardTrip::kNone);
  const std::vector<double> nan_dist = {0.5, std::nan(""), 0.0};
  EXPECT_EQ(markov::check_distribution(nan_dist, 1.0, cfg),
            markov::GuardTrip::kNonFinite);
  const std::vector<double> negative = {1.1, -0.1, 0.0};
  EXPECT_EQ(markov::check_distribution(negative, 1.0, cfg),
            markov::GuardTrip::kNegativeMass);
  const std::vector<double> drifted = {0.6, 0.6, 0.0};
  EXPECT_EQ(markov::check_distribution(drifted, 1.0, cfg),
            markov::GuardTrip::kMassDrift);
  // Sub-distributions conserve THEIR OWN mass (absorption-style solves).
  const std::vector<double> sub = {0.2, 0.3, 0.0};
  EXPECT_EQ(markov::check_distribution(sub, 0.5, cfg),
            markov::GuardTrip::kNone);
}

TEST(SolverGuard, BitwiseIdenticalWhenNoGuardTrips) {
  const markov::Ctmc chain = small_chain();
  const markov::UniformizationSolver plain;
  const markov::GuardedTransientSolver guarded;
  for (const double t : {0.1, 1.0, 10.0}) {
    const std::vector<double> expected = plain.solve(chain, t);
    const std::vector<double> got = guarded.solve(chain, t);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "t=" << t << " state " << i;
    }
    EXPECT_EQ(guarded.last_report().answered_by,
              markov::SolverStage::kUniformization);
    EXPECT_FALSE(guarded.last_report().fallback_used);
  }
  EXPECT_EQ(guarded.fallbacks_taken(), 0u);
}

TEST(SolverGuard, ForcedTripFallsBackToRk45) {
  markov::SolverGuardConfig cfg;
  cfg.force_uniformization_trip = true;
  const markov::GuardedTransientSolver guarded(cfg);
  const markov::Ctmc chain = small_chain();
  const std::vector<double> reference =
      markov::UniformizationSolver().solve(chain, 1.0);
  const std::vector<double> got = guarded.solve(chain, 1.0);
  const markov::GuardedSolveReport& report = guarded.last_report();
  EXPECT_TRUE(report.fallback_used);
  EXPECT_EQ(report.answered_by, markov::SolverStage::kRk45);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].trip, markov::GuardTrip::kForced);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], reference[i], 1e-7);
  }
  EXPECT_EQ(guarded.fallbacks_taken(), 1u);
}

TEST(SolverGuard, ExhaustedChainThrowsSolverDivergence) {
  markov::SolverGuardConfig cfg;
  cfg.force_uniformization_trip = true;
  cfg.force_rk45_trip = true;
  cfg.force_expm_trip = true;
  const markov::GuardedTransientSolver guarded(cfg);
  const markov::Ctmc chain = small_chain();
  try {
    (void)guarded.solve(chain, 1.0);
    FAIL() << "expected StatusError";
  } catch (const core::StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kSolverDivergence);
    // The message names every rejected stage.
    EXPECT_NE(e.status().message().find("uniformization"), std::string::npos);
    EXPECT_NE(e.status().message().find("expm"), std::string::npos);
  }
}

TEST(SolverGuard, NoFallbackModeFailsFast) {
  markov::SolverGuardConfig cfg;
  cfg.force_uniformization_trip = true;
  cfg.enable_fallback = false;
  const markov::GuardedTransientSolver guarded(cfg);
  EXPECT_THROW((void)guarded.solve(small_chain(), 1.0), core::StatusError);
  EXPECT_EQ(guarded.last_report().attempts.size(), 1u);
}

// ---- graceful degradation ----

TEST(Degradation, RetryWithDetectionRecoversUndetectedStuck) {
  memory::SimplexSystemConfig cfg;
  cfg.code = {18, 16, 8, 1};
  cfg.degradation.retry_with_detection = true;
  cfg.degradation.max_retries = 1;
  memory::SimplexSystem sys(cfg);
  const std::vector<Element> data(16, 0xAB);
  sys.store(data);
  // Two UNDETECTED stuck bits in different symbols, stuck at the opposite
  // of the stored bit so they really corrupt: as random errors they cost 2x
  // (4 > n-k = 2, uncorrectable); once the rung-1 self-test locates them
  // they are two erasures (2 <= n-k, correctable).
  const std::vector<Element> codeword = sys.code().encode(data);
  sys.inject_stuck_bit(2, 0, ((codeword[2] >> 0) & 1u) == 0u,
                       /*detected=*/false);
  sys.inject_stuck_bit(9, 0, ((codeword[9] >> 0) & 1u) == 0u,
                       /*detected=*/false);
  const memory::ReadResult read = sys.read();
  EXPECT_TRUE(read.success);
  EXPECT_TRUE(read.data_correct);
  EXPECT_EQ(sys.degradation().retries_attempted, 1u);
  EXPECT_EQ(sys.degradation().retry_recoveries, 1u);
}

TEST(Degradation, DefaultPolicyNeverEngages) {
  memory::SimplexSystemConfig cfg;
  cfg.code = {18, 16, 8, 1};
  memory::SimplexSystem sys(cfg);
  const std::vector<Element> data(16, 0x5A);
  sys.store(data);
  const std::vector<Element> codeword = sys.code().encode(data);
  sys.inject_stuck_bit(2, 0, ((codeword[2] >> 0) & 1u) == 0u, false);
  sys.inject_stuck_bit(9, 0, ((codeword[9] >> 0) & 1u) == 0u, false);
  const memory::ReadResult read = sys.read();
  EXPECT_FALSE(read.success);  // fails, and no rung is allowed to help
  EXPECT_FALSE(sys.degradation().any_engaged());
  EXPECT_EQ(sys.degradation().unrecovered_failures, 1u);
}

TEST(Degradation, CondemnBanksWidensErasures) {
  memory::MemoryModule module(18, 8);
  module.stick_bit(4, 0, true, true);  // bank [3,6) has 1 detected stuck
  memory::DegradationPolicy policy;
  policy.erasure_only_fallback = true;
  policy.bank_symbols = 3;
  policy.bank_stuck_threshold = 1;
  std::vector<unsigned> erasures = module.detected_erasures();
  ASSERT_EQ(erasures.size(), 1u);
  const unsigned condemned = memory::condemn_banks(module, policy, erasures);
  EXPECT_EQ(condemned, 1u);
  EXPECT_EQ(erasures, (std::vector<unsigned>{3, 4, 5}));

  // Disabled policy is a strict no-op.
  memory::DegradationPolicy off;
  std::vector<unsigned> untouched = module.detected_erasures();
  EXPECT_EQ(memory::condemn_banks(module, off, untouched), 0u);
  EXPECT_EQ(untouched.size(), 1u);
}

TEST(Degradation, RetirementAfterConsecutiveFailures) {
  memory::SimplexSystemConfig cfg;
  cfg.code = {18, 16, 8, 1};
  cfg.degradation.retire_after_failures = 2;
  memory::SimplexSystem sys(cfg);
  sys.store(std::vector<Element>(16, 0x11));
  // Three transient symbol errors: beyond capability, detected failure.
  sys.inject_bit_flip(1, 0);
  sys.inject_bit_flip(5, 1);
  sys.inject_bit_flip(11, 2);
  EXPECT_FALSE(sys.read().success);
  EXPECT_FALSE(sys.retired());
  EXPECT_FALSE(sys.read().success);
  EXPECT_TRUE(sys.retired());
  const memory::ReadResult degraded = sys.read();
  EXPECT_FALSE(degraded.success);
  EXPECT_EQ(sys.degradation().words_retired, 1u);
  EXPECT_EQ(sys.degradation().reads_in_degraded_mode, 1u);
  EXPECT_EQ(sys.degradation().unrecovered_failures, 2u);
}

TEST(Degradation, ScrubSuspensionSkipsAndResumes) {
  memory::SimplexSystemConfig cfg;
  cfg.code = {18, 16, 8, 1};
  cfg.scrub_policy = memory::ScrubPolicy::kPeriodic;
  cfg.scrub_period_hours = 1.0;
  memory::SimplexSystem sys(cfg);
  sys.store(std::vector<Element>(16, 0x42));
  sys.advance_to(0.5);
  sys.suspend_scrubbing();
  sys.inject_bit_flip(3, 0);
  sys.advance_to(2.5);  // scrubs at t=1, t=2 are skipped
  EXPECT_EQ(sys.stats().scrubs_skipped, 2u);
  EXPECT_EQ(sys.stats().scrubs_attempted, 0u);
  EXPECT_EQ(sys.damage().corrupted, 1u);  // damage still pending
  sys.resume_scrubbing();
  sys.advance_to(3.5);  // scrub at t=3 runs and purges
  EXPECT_EQ(sys.stats().scrubs_attempted, 1u);
  EXPECT_EQ(sys.damage().corrupted, 0u);
}

TEST(Degradation, DuplexDemotionRecoversFromPoisonedPair) {
  memory::DuplexSystemConfig cfg;
  cfg.code = {18, 16, 8, 1};
  cfg.degradation.retry_with_detection = true;
  cfg.degradation.max_retries = 1;
  cfg.degradation.demote_on_dead_module = true;
  memory::DuplexSystem sys(cfg);
  sys.store(std::vector<Element>(16, 0x7E));
  // Module 1 (survivor): two DETECTED stuck symbols -- decodable alone as
  // erasures. Module 0: transient flips at the SAME positions (poisoning
  // the erasure masking) plus two more symbols (beyond capability alone).
  sys.inject_stuck_bit(1, 4, 0, true, true);
  sys.inject_stuck_bit(1, 7, 0, true, true);
  sys.inject_bit_flip(0, 4, 1);
  sys.inject_bit_flip(0, 7, 2);
  sys.inject_bit_flip(0, 11, 3);
  sys.inject_bit_flip(0, 14, 4);
  const memory::DuplexReadResult read = sys.read();
  EXPECT_TRUE(read.read.success);
  EXPECT_TRUE(read.read.data_correct);
  EXPECT_TRUE(read.degraded);
  EXPECT_TRUE(sys.demoted());
  EXPECT_EQ(sys.dead_module(), 0);
  EXPECT_EQ(sys.degradation().demotions, 1u);
  EXPECT_GE(sys.degradation().retries_attempted, 1u);
}

// ---- fault-injection campaign ----

TEST(FaultCampaign, PaperDuplexPresetPasses) {
  analysis::FaultCampaignConfig cfg;
  cfg.seed = 2005;
  cfg.threads = 1;
  const std::vector<analysis::FaultScenario> scenarios =
      analysis::paper_duplex_scenarios(cfg.code);
  ASSERT_GE(scenarios.size(), 20u);
  const analysis::FaultCampaignReport report =
      analysis::run_fault_campaign(cfg, scenarios);
  EXPECT_TRUE(report.passed())
      << analysis::format_campaign_report(report);
  // The simplex mis-correction baseline is the ONLY expected silent case.
  EXPECT_EQ(report.silent_corruptions, 1u);
  EXPECT_EQ(report.unexpected, 0u);
  EXPECT_EQ(report.inconsistent, 0u);
  EXPECT_GT(report.degraded, 0u);
  // Every single-module stuck-bank scenario must be masked by the arbiter.
  for (const analysis::ScenarioOutcome& o : report.outcomes) {
    if (o.scenario.kind == analysis::ScenarioKind::kStuckBankGrowth) {
      EXPECT_TRUE(o.data_correct) << o.scenario.name << ": " << o.detail;
      EXPECT_TRUE(o.counters_consistent) << o.scenario.name;
    }
  }
}

TEST(FaultCampaign, DeterministicAcrossThreadCounts) {
  analysis::FaultCampaignConfig cfg;
  cfg.seed = 77;
  const std::vector<analysis::FaultScenario> scenarios =
      analysis::paper_duplex_scenarios(cfg.code);
  cfg.threads = 1;
  const analysis::FaultCampaignReport one =
      analysis::run_fault_campaign(cfg, scenarios);
  cfg.threads = 4;
  const analysis::FaultCampaignReport four =
      analysis::run_fault_campaign(cfg, scenarios);
  // Bit-identical report for any thread count, down to the formatted text.
  EXPECT_EQ(analysis::format_campaign_report(one),
            analysis::format_campaign_report(four));
}

}  // namespace
}  // namespace rsmem
