// Tests for the structural codec hardware model.
#include <gtest/gtest.h>

#include <stdexcept>

#include "hw/codec_hw_model.h"
#include "reliability/decoder_cost.h"

namespace rsmem::hw {
namespace {

TEST(GfGateModel, Validation) {
  GfGateModel bad;
  bad.m = 1;
  EXPECT_THROW(bad.adder_gates(), std::invalid_argument);
  bad.m = 8;
  bad.gates_per_flop = 0.0;
  EXPECT_THROW(bad.register_gates(), std::invalid_argument);
}

TEST(GfGateModel, OperatorCostOrdering) {
  GfGateModel gf;
  gf.m = 8;
  EXPECT_LT(gf.adder_gates(), gf.const_multiplier_gates());
  EXPECT_LT(gf.const_multiplier_gates(), gf.multiplier_gates());
  EXPECT_LT(gf.multiplier_gates(), gf.inverter_gates());
  // Adder is exactly m XORs; multiplier ~ 2 m^2.
  EXPECT_DOUBLE_EQ(gf.adder_gates(), 8.0);
  EXPECT_DOUBLE_EQ(gf.multiplier_gates(), 64.0 + 63.0);
}

TEST(GfGateModel, ItohTsujiiChainLengths) {
  // Known addition-chain lengths: m=8 -> e=7=111b: 2+3-1=4 mults;
  // m=16 -> e=15: 3+4-1=6; m=4 -> e=3: 1+2-1=2.
  EXPECT_EQ(GfGateModel::itoh_tsujii_multiplications(8), 4u);
  EXPECT_EQ(GfGateModel::itoh_tsujii_multiplications(16), 6u);
  EXPECT_EQ(GfGateModel::itoh_tsujii_multiplications(4), 2u);
  EXPECT_THROW(GfGateModel::itoh_tsujii_multiplications(1),
               std::invalid_argument);
}

TEST(CodecHw, ValidatesCode) {
  EXPECT_THROW(encoder_estimate(16, 16, 8), std::invalid_argument);
  EXPECT_THROW(decoder_estimate(300, 16, 8), std::invalid_argument);
}

TEST(CodecHw, EncoderShape) {
  const HwEstimate e = encoder_estimate(18, 16, 8);
  EXPECT_DOUBLE_EQ(e.latency_cycles, 16.0);  // symbol-serial data feed
  EXPECT_EQ(e.register_bits, 2.0 * 8);
  EXPECT_GT(e.gate_count, 0.0);
  // Parity stages scale the area.
  const HwEstimate wide = encoder_estimate(36, 16, 8);
  EXPECT_NEAR(wide.gate_count / e.gate_count, 10.0, 0.5);  // 20 vs 2 stages
}

TEST(CodecHw, DecodeLatencyHasThePapersAffineShape) {
  // latency = 2n + 4(n-k) + c with erasure support: same 'a*n + b*(n-k)'
  // form as the paper's Td = 3n + 10(n-k).
  const DecodeLatencyBreakdown b1816 = decode_latency_breakdown(18, 16, 8);
  EXPECT_DOUBLE_EQ(b1816.syndrome, 18.0);
  EXPECT_DOUBLE_EQ(b1816.key_equation, 4.0);  // 2 * 2t with erasures
  EXPECT_DOUBLE_EQ(b1816.chien_forney, 18.0);
  const DecodeLatencyBreakdown b3616 = decode_latency_breakdown(36, 16, 8);
  // Fixed k: both n and n-k terms grow.
  EXPECT_GT(b3616.total(), b1816.total());
  // Latency ratio between the paper's two codes: the paper's fit gives
  // 308/74 = 4.16; the structural model must land in the same regime
  // (the exact b coefficient depends on the key-equation architecture).
  const double ratio = b3616.total() / b1816.total();
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(CodecHw, DecoderAreaScalesLikeThePaperSays) {
  // "The number of logic gates ... is almost linearly dependent on m and
  // the number of check symbols n-k."
  const double a1816 = decoder_estimate(18, 16, 8).gate_count;
  const double a3616 = decoder_estimate(36, 16, 8).gate_count;
  // 10x the check symbols: close-to-linear growth in n-k.
  EXPECT_GT(a3616 / a1816, 5.0);
  EXPECT_LT(a3616 / a1816, 15.0);
  // One RS(36,16) decoder out-areas two RS(18,16) decoders (paper claim).
  EXPECT_GT(a3616, 2.0 * a1816);

  // m scaling at fixed (n, k): close to quadratic per multiplier but the
  // paper's "almost linear in m" refers to the dominant register/cell
  // count; verify monotonicity at least.
  CodecHwOptions opt;
  const double m6 = decoder_estimate(18, 16, 6, opt).gate_count;
  const double m10 = decoder_estimate(18, 16, 10, opt).gate_count;
  EXPECT_GT(m10, m6);
}

TEST(CodecHw, ErasureSupportCostsLatencyAndArea) {
  CodecHwOptions with;
  CodecHwOptions without;
  without.erasure_support = false;
  const HwEstimate w = decoder_estimate(36, 16, 8, with);
  const HwEstimate wo = decoder_estimate(36, 16, 8, without);
  EXPECT_GT(w.latency_cycles, wo.latency_cycles);
  EXPECT_GT(w.gate_count, wo.gate_count);
  EXPECT_DOUBLE_EQ(w.latency_cycles - wo.latency_cycles, 20.0);  // +2t
}

TEST(CodecHw, StructuralModelBracketsThePaperFit) {
  // The fitted DecoderCostModel and the structural model must agree on the
  // ORDERING and rough magnitude of the two paper codes' latencies.
  const reliability::DecoderCostModel fit;
  for (const unsigned n : {18u, 36u}) {
    const double fitted = fit.decode_cycles(n, 16);
    const double structural = decoder_estimate(n, 16, 8).latency_cycles;
    EXPECT_GT(structural, fitted * 0.2) << "n=" << n;
    EXPECT_LT(structural, fitted * 5.0) << "n=" << n;
  }
}

}  // namespace
}  // namespace rsmem::hw
