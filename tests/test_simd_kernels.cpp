// Differential suite for the SIMD GF(2^m) kernel layer (gf/simd_mul.h).
//
// The kernel layer's contract is BIT-IDENTITY: every backend (swar, ssse3,
// avx2) must produce exactly the bytes of the scalar reference, and the
// codec must produce exactly the same outcomes and corrected words whether
// it runs kernels or its original scalar loops. This binary pins that
// contract at three levels:
//
//   1. kernel level   — mul_const_acc/xor_acc for every backend, every
//                       constant of every m in {2,3,4,8}, lengths crossing
//                       each backend's vector width, unaligned buffers;
//   2. codec level    — exhaustive weight-1..4 error/erasure patterns on
//                       small codes and randomized RS(36,16) noise, decoded
//                       under every backend in turn, against decode_legacy;
//   3. batch level    — encode_batch/decode_batch planes at counts that are
//                       not a multiple of any vector width, plus misaligned
//                       caller planes, against the forced-scalar control.
//
// It lives in its own test binary (label `codec`) because force_backend()
// swaps the process-wide kernel selection, which must not race with other
// suites exercising the codec.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/monte_carlo.h"
#include "gf/aligned.h"
#include "gf/galois_field.h"
#include "gf/simd_mul.h"
#include "rs/reed_solomon.h"

namespace {

using rsmem::gf::Element;
using rsmem::gf::GaloisField;
using rsmem::rs::CodeParams;
using rsmem::rs::DecodeOutcome;
using rsmem::rs::DecoderWorkspace;
using rsmem::rs::ReedSolomon;
namespace simd = rsmem::gf::simd;

// Restores the process-wide backend selection on scope exit so a failing
// test cannot leak a forced backend into later tests.
class BackendGuard {
 public:
  BackendGuard() : prev_(simd::active().backend) {}
  ~BackendGuard() { simd::force_backend(prev_); }

 private:
  simd::Backend prev_;
};

std::vector<simd::Backend> supported_backends() {
  std::vector<simd::Backend> out;
  for (const simd::Backend b : simd::kAllBackends) {
    if (simd::backend_supported(b)) out.push_back(b);
  }
  return out;
}

const simd::Kernels* kernels_of(simd::Backend b) {
  switch (b) {
    case simd::Backend::kScalar:
      return simd::scalar_kernels();
    case simd::Backend::kSwar:
      return simd::swar_kernels();
    case simd::Backend::kSsse3:
      return simd::ssse3_kernels();
    case simd::Backend::kAvx2:
      return simd::avx2_kernels();
    case simd::Backend::kGfni:
      return simd::gfni_kernels();
  }
  return nullptr;
}

// Lengths that straddle every backend's step size (8, 16, 32) plus the
// scalar tails on either side of each boundary.
const std::size_t kLengths[] = {0,  1,  3,  7,  8,  9,  15, 16, 17,
                                31, 32, 33, 63, 64, 65, 100};

TEST(SimdKernels, BaselineBackendsAlwaysSupported) {
  EXPECT_TRUE(simd::backend_supported(simd::Backend::kScalar));
  EXPECT_TRUE(simd::backend_supported(simd::Backend::kSwar));
  EXPECT_NE(kernels_of(simd::Backend::kScalar), nullptr);
  EXPECT_NE(kernels_of(simd::Backend::kSwar), nullptr);
  // The process selection is one of the supported backends.
  EXPECT_TRUE(simd::backend_supported(simd::active().backend));
  EXPECT_STREQ(simd::to_string(simd::active().backend), simd::active().name);
}

TEST(SimdKernels, ForceBackendRejectsUnsupported) {
  BackendGuard guard;
  for (const simd::Backend b : {simd::Backend::kSsse3, simd::Backend::kAvx2,
                                simd::Backend::kGfni}) {
    if (simd::backend_supported(b)) continue;
    EXPECT_FALSE(simd::force_backend(b));
  }
  ASSERT_TRUE(simd::force_backend(simd::Backend::kSwar));
  EXPECT_EQ(simd::active().backend, simd::Backend::kSwar);
}

// The scalar kernel IS the reference, so it gets its own independent check:
// mul_one through the split-nibble tables against GaloisField::mul for
// every (c, x) pair of every byte-sized field.
TEST(SimdKernels, ScalarKernelMatchesFieldExhaustively) {
  for (const unsigned m : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const GaloisField field(m);
    simd::MulTables t;
    for (Element c = 0; c < field.size(); ++c) {
      simd::build_tables(t, field, c);
      for (Element x = 0; x < field.size(); ++x) {
        ASSERT_EQ(simd::mul_one(t, static_cast<std::uint8_t>(x)),
                  field.mul(c, x))
            << "m=" << m << " c=" << c << " x=" << x;
      }
    }
  }
}

// Every compiled backend against the scalar kernels: all constants of
// m in {2,3,4,8}, all boundary-straddling lengths, unaligned src/dst.
TEST(SimdKernels, MulConstAccBitIdenticalAcrossBackends) {
  const auto* scalar = simd::scalar_kernels();
  const auto backends = supported_backends();
  for (const unsigned m : {2u, 3u, 4u, 8u}) {
    const GaloisField field(m);
    std::mt19937 rng(0xC0DEC0 + m);
    std::uniform_int_distribution<unsigned> sym(0, field.size() - 1);
    simd::MulTables t;
    for (Element c = 0; c < field.size(); ++c) {
      simd::build_tables(t, field, c);
      for (const std::size_t len : kLengths) {
        for (const std::size_t src_off : {0u, 1u, 3u}) {
          for (const std::size_t dst_off : {0u, 5u}) {
            std::vector<std::uint8_t> src(src_off + len);
            std::vector<std::uint8_t> dst(dst_off + len);
            for (auto& b : src) b = static_cast<std::uint8_t>(sym(rng));
            for (auto& b : dst) b = static_cast<std::uint8_t>(sym(rng));
            std::vector<std::uint8_t> want(dst.begin() + dst_off, dst.end());
            scalar->mul_const_acc(want.data(), src.data() + src_off, t, len);
            for (const simd::Backend b : backends) {
              std::vector<std::uint8_t> got(dst.begin() + dst_off, dst.end());
              kernels_of(b)->mul_const_acc(got.data(), src.data() + src_off,
                                           t, len);
              ASSERT_EQ(got, want)
                  << simd::to_string(b) << " m=" << m << " c=" << c
                  << " len=" << len << " soff=" << src_off
                  << " doff=" << dst_off;
            }
          }
        }
      }
    }
  }
}

TEST(SimdKernels, XorAccBitIdenticalAcrossBackends) {
  const auto* scalar = simd::scalar_kernels();
  const auto backends = supported_backends();
  std::mt19937 rng(0xA5A5);
  std::uniform_int_distribution<unsigned> byte(0, 255);
  for (const std::size_t len : kLengths) {
    for (const std::size_t off : {0u, 1u, 7u}) {
      std::vector<std::uint8_t> src(off + len);
      std::vector<std::uint8_t> dst(off + len);
      for (auto& b : src) b = static_cast<std::uint8_t>(byte(rng));
      for (auto& b : dst) b = static_cast<std::uint8_t>(byte(rng));
      std::vector<std::uint8_t> want(dst.begin() + off, dst.end());
      scalar->xor_acc(want.data(), src.data() + off, len);
      for (const simd::Backend b : backends) {
        std::vector<std::uint8_t> got(dst.begin() + off, dst.end());
        kernels_of(b)->xor_acc(got.data(), src.data() + off, len);
        ASSERT_EQ(got, want)
            << simd::to_string(b) << " len=" << len << " off=" << off;
      }
    }
  }
}

// The fused multi-row kernel against a scalar mul_const_acc loop: random
// constants (zeros included), boundary-straddling lengths, row counts
// around the codec's two_t sweeps, rows packed at stride = len + slack so
// out-of-row writes would corrupt a neighbour and fail the compare.
TEST(SimdKernels, MulRowsAccMatchesMulConstAccLoop) {
  const auto* scalar = simd::scalar_kernels();
  for (const unsigned m : {3u, 8u}) {
    const GaloisField field(m);
    std::mt19937 rng(0xF05ED + m);
    std::uniform_int_distribution<unsigned> sym(0, field.size() - 1);
    for (const std::size_t rows : {1u, 5u, 32u}) {
      for (const std::size_t len : kLengths) {
        for (const std::size_t src_off : {0u, 3u}) {
          const std::size_t stride = len + 8;
          std::vector<simd::MulTables> tables(rows);
          for (std::size_t r = 0; r < rows; ++r) {
            // Every 4th row gets c = 0 to exercise the skip path.
            const Element c =
                (r % 4 == 3) ? 0 : static_cast<Element>(sym(rng));
            simd::build_tables(tables[r], field, c);
          }
          std::vector<std::uint8_t> src(src_off + len);
          std::vector<std::uint8_t> dst(rows * stride);
          for (auto& b : src) b = static_cast<std::uint8_t>(sym(rng));
          for (auto& b : dst) b = static_cast<std::uint8_t>(sym(rng));
          std::vector<std::uint8_t> want = dst;
          for (std::size_t r = 0; r < rows; ++r) {
            scalar->mul_const_acc(want.data() + r * stride,
                                  src.data() + src_off, tables[r], len);
          }
          for (const simd::Backend b : supported_backends()) {
            const simd::Kernels* kn = kernels_of(b);
            if (kn->mul_rows_acc == nullptr) continue;
            std::vector<std::uint8_t> got = dst;
            kn->mul_rows_acc(got.data(), stride, src.data() + src_off,
                             tables.data(), rows, len);
            ASSERT_EQ(got, want)
                << simd::to_string(b) << " m=" << m << " rows=" << rows
                << " len=" << len << " soff=" << src_off;
          }
        }
      }
    }
  }
}

TEST(SimdKernels, ZeroConstantLeavesDstUntouched) {
  for (const unsigned m : {2u, 8u}) {
    const GaloisField field(m);
    simd::MulTables t;
    simd::build_tables(t, field, 0);
    std::vector<std::uint8_t> src(100, 0x3);
    for (const simd::Backend b : supported_backends()) {
      std::vector<std::uint8_t> dst(100, 0x7);
      kernels_of(b)->mul_const_acc(dst.data(), src.data(), t, dst.size());
      EXPECT_EQ(dst, std::vector<std::uint8_t>(100, 0x7))
          << simd::to_string(b);
    }
  }
}

// ---- hot-table alignment (the SoA planes and constant tables the kernels
// stream through are 64-byte aligned; caller buffers need not be) ---------

TEST(HotPathAlignment, TablesAndPlanesAreCacheLineAligned) {
  static_assert(sizeof(simd::MulTables) == rsmem::gf::kHotPathAlignment);
  static_assert(alignof(simd::MulTables) == rsmem::gf::kHotPathAlignment);
  const GaloisField field(8);
  EXPECT_TRUE(rsmem::gf::is_hot_path_aligned(field.dense_mul_table()));
  rsmem::gf::AlignedVector<std::uint8_t> plane(1000);
  EXPECT_TRUE(rsmem::gf::is_hot_path_aligned(plane.data()));
  rsmem::gf::AlignedVector<simd::MulTables> tables(3);
  EXPECT_TRUE(rsmem::gf::is_hot_path_aligned(tables.data()));
  // Row strides keep successive rows on the boundary.
  EXPECT_EQ(rsmem::gf::aligned_stride(1), 64u);
  EXPECT_EQ(rsmem::gf::aligned_stride(64), 64u);
  EXPECT_EQ(rsmem::gf::aligned_stride(65), 128u);
}

// ---- codec-level differential: every backend vs decode_legacy -----------

void expect_same_decode(const ReedSolomon& code, DecoderWorkspace& ws,
                        const std::vector<Element>& noisy,
                        const std::vector<unsigned>& erasures,
                        const char* tag) {
  std::vector<Element> legacy_word = noisy;
  std::vector<Element> fast_word = noisy;
  const DecodeOutcome legacy = code.decode_legacy(legacy_word, erasures);
  const DecodeOutcome fast = code.decode(ws, fast_word, erasures);
  ASSERT_EQ(fast.status, legacy.status) << tag;
  ASSERT_EQ(fast.errors_corrected, legacy.errors_corrected) << tag;
  ASSERT_EQ(fast.erasures_corrected, legacy.erasures_corrected) << tag;
  ASSERT_EQ(fast_word, legacy_word) << tag;
}

// All weight-1..4 patterns on small codes: every position subset; values
// exhaustive for weight <= 2 over GF(2^3)/GF(2^4), randomized otherwise.
// Each subset is also replayed with every sub-pattern of erasure flags.
void run_pattern_sweep(const CodeParams& params) {
  const ReedSolomon code(params);
  DecoderWorkspace ws;
  ws.reserve(code);
  const unsigned n = code.n();
  std::mt19937 rng(params.m * 77 + params.n);
  std::uniform_int_distribution<unsigned> sym(1, code.field().size() - 1);
  std::vector<Element> data(code.k());
  for (auto& d : data) d = sym(rng) % code.field().size();
  const std::vector<Element> codeword = code.encode(data);

  std::vector<unsigned> pos(n);
  std::iota(pos.begin(), pos.end(), 0);
  for (unsigned weight = 1; weight <= 4 && weight <= n; ++weight) {
    std::vector<bool> select(n, false);
    std::fill(select.end() - weight, select.end(), true);
    do {
      std::vector<unsigned> hits;
      for (unsigned p = 0; p < n; ++p) {
        if (select[p]) hits.push_back(p);
      }
      // A few value assignments per position set (exhaustive would be
      // size^weight; the kernel layer has no value-dependent branches
      // beyond the nibble split, which the kernel-level sweep covers
      // exhaustively).
      const unsigned value_trials = weight <= 2 ? 8 : 4;
      for (unsigned trial = 0; trial < value_trials; ++trial) {
        std::vector<Element> noisy = codeword;
        for (const unsigned p : hits) noisy[p] ^= sym(rng);
        // Erasure sub-patterns: none, all hits, first half of the hits.
        for (const unsigned flavour : {0u, 1u, 2u}) {
          std::vector<unsigned> erasures;
          if (flavour == 1) erasures = hits;
          if (flavour == 2) {
            erasures.assign(hits.begin(),
                            hits.begin() + (hits.size() + 1) / 2);
          }
          expect_same_decode(code, ws, noisy, erasures, "pattern sweep");
        }
      }
    } while (std::next_permutation(select.begin(), select.end()));
  }
}

TEST(CodecDifferential, SmallCodePatternsEveryBackend) {
  BackendGuard guard;
  for (const simd::Backend b : supported_backends()) {
    ASSERT_TRUE(simd::force_backend(b));
    run_pattern_sweep(CodeParams{3, 1, 2, 1});
    run_pattern_sweep(CodeParams{7, 3, 3, 1});
    run_pattern_sweep(CodeParams{7, 3, 4, 1});
    run_pattern_sweep(CodeParams{7, 3, 8, 1});
  }
}

// RS(36,16) is the paper's duplex code and the smallest tier-1 code whose
// n and 2t clear the kernel engagement thresholds, so this sweep actually
// runs the per-word SIMD syndrome/Chien/LFSR paths.
TEST(CodecDifferential, Rs3616RandomNoiseEveryBackend) {
  BackendGuard guard;
  for (const simd::Backend b : supported_backends()) {
    ASSERT_TRUE(simd::force_backend(b));
    const ReedSolomon code(36, 16, 8);
    DecoderWorkspace ws;
    ws.reserve(code);
    std::mt19937 rng(0xDA7E05);
    std::uniform_int_distribution<unsigned> sym(0, 255);
    std::uniform_int_distribution<unsigned> posd(0, 35);
    for (unsigned trial = 0; trial < 200; ++trial) {
      std::vector<Element> data(16);
      for (auto& d : data) d = sym(rng);
      std::vector<Element> noisy = code.encode(data);
      const unsigned weight = trial % 14;  // 0..13, beyond capability too
      std::vector<unsigned> hit_set;
      for (unsigned i = 0; i < weight; ++i) {
        const unsigned p = posd(rng);
        if (std::find(hit_set.begin(), hit_set.end(), p) == hit_set.end()) {
          hit_set.push_back(p);
          noisy[p] ^= 1 + sym(rng) % 255;
        }
      }
      std::vector<unsigned> erasures;
      for (std::size_t i = 0; i + 1 < hit_set.size(); i += 2) {
        erasures.push_back(hit_set[i]);
      }
      expect_same_decode(code, ws, noisy, erasures, "rs(36,16) noise");
    }
  }
}

// ---- batch planes: counts off every vector width, misaligned planes -----

const std::size_t kPlaneCounts[] = {1, 2, 3, 5, 17, 33};

TEST(BatchDifferential, EncodePlaneMatchesScalarControl) {
  BackendGuard guard;
  const ReedSolomon code(36, 16, 8);
  DecoderWorkspace ws;
  ws.reserve(code);
  std::mt19937 rng(0xBA7C4);
  std::uniform_int_distribution<unsigned> sym(0, 255);
  for (const std::size_t count : kPlaneCounts) {
    std::vector<Element> data(count * code.k());
    for (auto& d : data) d = sym(rng);
    // Scalar control: the original per-word LFSR loops.
    ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
    std::vector<Element> want(count * code.n());
    code.encode_batch(ws, data, want);
    for (const simd::Backend b : supported_backends()) {
      ASSERT_TRUE(simd::force_backend(b));
      std::vector<Element> got(count * code.n(), 0);
      code.encode_batch(ws, data, got);
      ASSERT_EQ(got, want) << simd::to_string(b) << " count=" << count;
    }
  }
}

TEST(BatchDifferential, DecodePlaneMatchesScalarControl) {
  BackendGuard guard;
  const ReedSolomon code(36, 16, 8);
  DecoderWorkspace ws;
  ws.reserve(code);
  std::mt19937 rng(0xD0DEC);
  std::uniform_int_distribution<unsigned> sym(0, 255);
  std::uniform_int_distribution<unsigned> posd(0, 35);
  for (const std::size_t count : kPlaneCounts) {
    std::vector<Element> data(count * code.k());
    for (auto& d : data) d = sym(rng);
    std::vector<Element> plane(count * code.n());
    code.encode_batch(ws, data, plane);
    std::vector<std::uint8_t> flags(plane.size(), 0);
    for (std::size_t w = 0; w < count; ++w) {
      // Word w gets w%8 corruptions, half of them flagged as erasures;
      // leaves a mix of clean words, correctable words, and failures.
      for (unsigned i = 0; i < w % 8; ++i) {
        const unsigned p = posd(rng);
        plane[w * code.n() + p] ^= 1 + sym(rng) % 255;
        if (i % 2 == 0) flags[w * code.n() + p] = 1;
      }
    }
    ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
    std::vector<Element> want_plane = plane;
    std::vector<DecodeOutcome> want(count);
    code.decode_batch(ws, want_plane, want, flags);
    for (const simd::Backend b : supported_backends()) {
      ASSERT_TRUE(simd::force_backend(b));
      std::vector<Element> got_plane = plane;
      std::vector<DecodeOutcome> got(count);
      code.decode_batch(ws, got_plane, got, flags);
      ASSERT_EQ(got_plane, want_plane)
          << simd::to_string(b) << " count=" << count;
      for (std::size_t w = 0; w < count; ++w) {
        ASSERT_EQ(got[w].status, want[w].status)
            << simd::to_string(b) << " count=" << count << " w=" << w;
        ASSERT_EQ(got[w].errors_corrected, want[w].errors_corrected);
        ASSERT_EQ(got[w].erasures_corrected, want[w].erasures_corrected);
      }
    }
  }
}

// Caller planes are NOT required to be 64-byte aligned: the kernels use
// unaligned loads and the SoA staging re-bases everything. Regression for
// the alignment work — feed planes deliberately off the hot-path boundary.
TEST(BatchDifferential, MisalignedCallerPlanes) {
  BackendGuard guard;
  const ReedSolomon code(36, 16, 8);
  DecoderWorkspace ws;
  ws.reserve(code);
  std::mt19937 rng(0x0FF5E7);
  std::uniform_int_distribution<unsigned> sym(0, 255);
  const std::size_t count = 17;
  // Backing stores with a one-element skew so the spans handed to the
  // codec sit 4 bytes off any 64-byte boundary.
  std::vector<Element> data_store(count * code.k() + 1);
  std::vector<Element> plane_store(count * code.n() + 1);
  const std::span<Element> data(data_store.data() + 1, count * code.k());
  const std::span<Element> plane(plane_store.data() + 1, count * code.n());
  for (auto& d : data) d = sym(rng);

  ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
  std::vector<Element> want(count * code.n());
  code.encode_batch(ws, data, want);
  for (const simd::Backend b : supported_backends()) {
    ASSERT_TRUE(simd::force_backend(b));
    code.encode_batch(ws, data, plane);
    ASSERT_TRUE(std::equal(plane.begin(), plane.end(), want.begin()))
        << simd::to_string(b);
    // Corrupt in place, decode in place through the misaligned span.
    std::vector<DecodeOutcome> outcomes(count);
    plane[5] ^= 0x21;
    plane[3 * code.n() + 7] ^= 0x9;
    code.decode_batch(ws, plane, outcomes);
    EXPECT_EQ(outcomes[0].status, rsmem::rs::DecodeStatus::kCorrected)
        << simd::to_string(b);
    EXPECT_EQ(outcomes[3].status, rsmem::rs::DecodeStatus::kCorrected)
        << simd::to_string(b);
    for (const std::size_t w : {1u, 2u, 4u, 16u}) {
      EXPECT_EQ(outcomes[w].status, rsmem::rs::DecodeStatus::kNoError)
          << simd::to_string(b) << " w=" << w;
    }
    ASSERT_TRUE(std::equal(plane.begin(), plane.end(), want.begin()))
        << simd::to_string(b);
  }
}

// Erasure-first planes: words whose damage is dominated by FLAGGED symbol
// positions (the located-permanent-fault shape the memory systems feed the
// batch decoder), at off-width counts, with erasure loads sweeping from
// zero through full capability to beyond-capability — each word checked
// against decode_legacy with the equivalent ascending position list.
TEST(BatchDifferential, ErasureFirstPlanesMatchLegacyOffWidths) {
  BackendGuard guard;
  const ReedSolomon code(36, 16, 8);
  DecoderWorkspace ws;
  ws.reserve(code);
  const unsigned n = code.n();
  const unsigned cap = code.n() - code.k();  // erasure-only capability
  std::mt19937 rng(0xE7A5E5);
  std::uniform_int_distribution<unsigned> sym(0, 255);
  std::uniform_int_distribution<unsigned> posd(0, n - 1);
  for (const std::size_t count : kPlaneCounts) {
    std::vector<Element> data(count * code.k());
    for (auto& d : data) d = sym(rng);
    std::vector<Element> plane(count * n);
    code.encode_batch(ws, data, plane);
    std::vector<std::uint8_t> flags(plane.size(), 0);
    std::vector<std::vector<unsigned>> erasures(count);
    for (std::size_t w = 0; w < count; ++w) {
      // Word w carries w % (cap + 3) erasures: sweeps clean words, partial
      // loads, exactly-at-capability, and beyond-capability failures.
      const unsigned load = static_cast<unsigned>(w % (cap + 3));
      while (erasures[w].size() < load) {
        const unsigned p = posd(rng);
        if (flags[w * n + p] != 0) continue;
        flags[w * n + p] = 1;
        erasures[w].push_back(p);
        // Erased content is untrusted: trash it (sometimes to itself).
        plane[w * n + p] = sym(rng);
      }
      std::sort(erasures[w].begin(), erasures[w].end());
      // Half the words also take one random (unflagged) error on top.
      if (w % 2 == 1) plane[w * n + posd(rng)] ^= 1 + sym(rng) % 255;
    }
    std::vector<Element> legacy_plane = plane;
    std::vector<DecodeOutcome> legacy(count);
    for (std::size_t w = 0; w < count; ++w) {
      const std::span<Element> word{legacy_plane.data() + w * n, n};
      legacy[w] = code.decode_legacy(word, erasures[w]);
    }
    for (const simd::Backend b : supported_backends()) {
      ASSERT_TRUE(simd::force_backend(b));
      std::vector<Element> got_plane = plane;
      std::vector<DecodeOutcome> got(count);
      code.decode_batch(ws, got_plane, got, flags);
      ASSERT_EQ(got_plane, legacy_plane)
          << simd::to_string(b) << " count=" << count;
      for (std::size_t w = 0; w < count; ++w) {
        ASSERT_EQ(got[w].status, legacy[w].status)
            << simd::to_string(b) << " count=" << count << " w=" << w;
        ASSERT_EQ(got[w].errors_corrected, legacy[w].errors_corrected)
            << simd::to_string(b) << " count=" << count << " w=" << w;
        ASSERT_EQ(got[w].erasures_corrected, legacy[w].erasures_corrected)
            << simd::to_string(b) << " count=" << count << " w=" << w;
      }
    }
  }
}

// Batch APIs must reject out-of-field symbols identically on both routes.
TEST(BatchDifferential, ValidationIdenticalAcrossRoutes) {
  BackendGuard guard;
  const ReedSolomon code(36, 16, 8);
  DecoderWorkspace ws;
  ws.reserve(code);
  const std::size_t count = 8;  // above the SoA threshold
  std::vector<Element> data(count * code.k(), 1);
  std::vector<Element> plane(count * code.n());
  data[5 * code.k() + 3] = 256;  // out of GF(2^8)
  for (const simd::Backend b : supported_backends()) {
    ASSERT_TRUE(simd::force_backend(b));
    EXPECT_THROW(code.encode_batch(ws, data, plane), std::invalid_argument)
        << simd::to_string(b);
  }
  data[5 * code.k() + 3] = 1;
  code.encode_batch(ws, data, plane);
  plane[2 * code.n() + 1] = 300;
  std::vector<DecodeOutcome> outcomes(count);
  for (const simd::Backend b : supported_backends()) {
    ASSERT_TRUE(simd::force_backend(b));
    EXPECT_THROW(code.decode_batch(ws, plane, outcomes),
                 std::invalid_argument)
        << simd::to_string(b);
  }
}

// ---- campaign level: batched trial planes vs the per-trial read() path --
//
// The Monte-Carlo engine's batched gather/decode/scatter path must be
// bit-identical to the historical per-trial path for every batch width and
// on every backend. batch_trials = 1 forces the per-trial control; the
// width-64 default and off-width settings must reproduce it exactly —
// including the per-trial observer records.

namespace analysis = rsmem::analysis;
namespace memory = rsmem::memory;

// Packs one trial's full observable signature (outcome flags, per-word
// decoder claims, ground-truth damage, fault counts) into a fingerprint.
std::uint64_t trial_signature(const analysis::TrialRecord& record) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(record.success ? 1 : 0);
  mix(record.data_correct ? 1 : 0);
  mix(record.word_count);
  for (unsigned w = 0; w < record.word_count; ++w) {
    const analysis::WordObservation& word = record.words[w];
    mix(word.decode_ok ? 1 : 0);
    mix(word.errors_corrected);
    mix(word.erasures_corrected);
    mix(word.erasures_supplied);
    mix(word.erased_symbols);
    mix(word.corrupted_symbols);
  }
  mix(record.seu_injected);
  mix(record.permanent_injected);
  return h;
}

void expect_same_campaign(const analysis::MonteCarloResult& got,
                          const analysis::MonteCarloResult& want,
                          const std::vector<std::uint64_t>& got_sigs,
                          const std::vector<std::uint64_t>& want_sigs,
                          const std::string& tag) {
  EXPECT_EQ(got.failure.trials, want.failure.trials) << tag;
  EXPECT_EQ(got.failure.failures, want.failure.failures) << tag;
  EXPECT_EQ(got.mean_seu_per_trial, want.mean_seu_per_trial) << tag;
  EXPECT_EQ(got.mean_permanent_per_trial, want.mean_permanent_per_trial)
      << tag;
  EXPECT_EQ(got.scrub_failures, want.scrub_failures) << tag;
  EXPECT_EQ(got.scrub_miscorrections, want.scrub_miscorrections) << tag;
  EXPECT_EQ(got.no_output_failures, want.no_output_failures) << tag;
  EXPECT_EQ(got.wrong_data_failures, want.wrong_data_failures) << tag;
  ASSERT_EQ(got_sigs.size(), want_sigs.size()) << tag;
  for (std::size_t t = 0; t < want_sigs.size(); ++t) {
    ASSERT_EQ(got_sigs[t], want_sigs[t]) << tag << " trial=" << t;
  }
}

// Off-width batch settings (primes, sub-SoA-threshold widths, the default,
// wider-than-chunk) against the width-1 per-trial control.
const std::size_t kBatchWidths[] = {2, 3, 5, 64, 4096};

TEST(CampaignDifferential, BatchedSimplexMatchesPerWordEveryBackend) {
  BackendGuard guard;
  memory::SimplexSystemConfig cfg;
  cfg.code = rsmem::rs::CodeParams{36, 16, 8, 1};
  cfg.rates.seu_rate_per_bit_hour = 2.0 / 24.0;
  cfg.rates.perm_rate_per_symbol_hour = 0.3 / 24.0;

  analysis::MonteCarloConfig mc;
  mc.trials = 600;
  mc.t_end_hours = 48.0;
  mc.seed = 0x5117;
  mc.threads = 1;
  std::vector<std::uint64_t> sigs(mc.trials, 0);
  mc.observer = [&sigs](const analysis::TrialRecord& record) {
    sigs[record.trial_index] = trial_signature(record);
  };

  for (const simd::Backend b : supported_backends()) {
    ASSERT_TRUE(simd::force_backend(b));
    mc.batch_trials = 1;  // per-trial read() control
    const analysis::MonteCarloResult want = run_simplex_trials(cfg, mc);
    const std::vector<std::uint64_t> want_sigs = sigs;
    ASSERT_GT(want.failure.failures, 0u) << "workload too tame to differ";
    for (const std::size_t width : kBatchWidths) {
      mc.batch_trials = width;
      std::fill(sigs.begin(), sigs.end(), 0);
      const analysis::MonteCarloResult got = run_simplex_trials(cfg, mc);
      expect_same_campaign(got, want, sigs, want_sigs,
                           std::string("simplex ") + simd::to_string(b) +
                               " width=" + std::to_string(width));
    }
  }
}

TEST(CampaignDifferential, BatchedDuplexMatchesPerWordEveryBackend) {
  BackendGuard guard;
  memory::DuplexSystemConfig cfg;
  cfg.code = rsmem::rs::CodeParams{18, 16, 8, 1};
  cfg.rates.seu_rate_per_bit_hour = 0.5 / 24.0;
  cfg.rates.perm_rate_per_symbol_hour = 0.25 / 24.0;

  analysis::MonteCarloConfig mc;
  mc.trials = 400;
  mc.t_end_hours = 48.0;
  mc.seed = 0xD0B1E;
  mc.threads = 1;
  mc.chunk_trials = 97;  // off-width chunks: batches straddle chunk ends
  std::vector<std::uint64_t> sigs(mc.trials, 0);
  mc.observer = [&sigs](const analysis::TrialRecord& record) {
    sigs[record.trial_index] = trial_signature(record);
  };

  for (const simd::Backend b : supported_backends()) {
    ASSERT_TRUE(simd::force_backend(b));
    mc.batch_trials = 1;
    const analysis::MonteCarloResult want = run_duplex_trials(cfg, mc);
    const std::vector<std::uint64_t> want_sigs = sigs;
    ASSERT_GT(want.failure.failures, 0u) << "workload too tame to differ";
    for (const std::size_t width : kBatchWidths) {
      mc.batch_trials = width;
      std::fill(sigs.begin(), sigs.end(), 0);
      const analysis::MonteCarloResult got = run_duplex_trials(cfg, mc);
      expect_same_campaign(got, want, sigs, want_sigs,
                           std::string("duplex ") + simd::to_string(b) +
                               " width=" + std::to_string(width));
    }
  }
}

}  // namespace
