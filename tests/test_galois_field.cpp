// Unit and property tests for GF(2^m) arithmetic.
#include "gf/galois_field.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace rsmem::gf {
namespace {

TEST(GaloisField, RejectsOutOfRangeM) {
  EXPECT_THROW(GaloisField{1u}, std::invalid_argument);
  EXPECT_THROW(GaloisField{17u}, std::invalid_argument);
  EXPECT_THROW(GaloisField{0u}, std::invalid_argument);
}

TEST(GaloisField, RejectsWrongDegreePolynomial) {
  // degree != m
  EXPECT_THROW(GaloisField(8, 0x1D), std::invalid_argument);
  EXPECT_THROW(GaloisField(8, 0x21D), std::invalid_argument);
}

TEST(GaloisField, RejectsNonPrimitivePolynomial) {
  // x^4 + x^3 + x^2 + x + 1 has degree 4 but order-5 roots: not primitive.
  EXPECT_THROW(GaloisField(4, 0x1F), std::invalid_argument);
  // x^8 + x^4 + x^3 + x + 1 (0x11B, the AES polynomial) is irreducible but
  // NOT primitive: alpha=2's order is 51.
  EXPECT_THROW(GaloisField(8, 0x11B), std::invalid_argument);
}

TEST(GaloisField, BasicSizes) {
  const GaloisField f{8};
  EXPECT_EQ(f.m(), 8u);
  EXPECT_EQ(f.size(), 256u);
  EXPECT_EQ(f.order(), 255u);
  EXPECT_EQ(f.primitive_poly(), 0x11Du);
}

TEST(GaloisField, AdditionIsXor) {
  EXPECT_EQ(GaloisField::add(0x53, 0xCA), 0x99u);
  EXPECT_EQ(GaloisField::sub(0x53, 0xCA), 0x99u);
  EXPECT_EQ(GaloisField::add(0xFF, 0xFF), 0u);
}

TEST(GaloisField, KnownGf256Products) {
  const GaloisField f{8};
  // Classic GF(256)/0x11D table entries.
  EXPECT_EQ(f.mul(0, 0x57), 0u);
  EXPECT_EQ(f.mul(1, 0x57), 0x57u);
  EXPECT_EQ(f.mul(2, 0x80), 0x1Du);  // overflow wraps through the poly
  EXPECT_EQ(f.mul(3, 5), 0x0Fu);     // carry-free: (x+1)(x^2+1)
  EXPECT_EQ(f.mul(4, 0x40), 0x1Du);  // x^2 * x^6 = x^8 -> poly tail
}

TEST(GaloisField, AlphaPowersCycle) {
  const GaloisField f{4};
  EXPECT_EQ(f.alpha_pow(0), 1u);
  EXPECT_EQ(f.alpha_pow(1), 2u);
  EXPECT_EQ(f.alpha_pow(15), 1u);   // alpha^order == 1
  EXPECT_EQ(f.alpha_pow(-1), f.inv(2));
  EXPECT_EQ(f.alpha_pow(16), 2u);
}

TEST(GaloisField, LogExpRoundTrip) {
  const GaloisField f{8};
  for (Element a = 1; a < f.size(); ++a) {
    EXPECT_EQ(f.alpha_pow(f.log(a)), a);
  }
}

TEST(GaloisField, DivisionAndInverse) {
  const GaloisField f{8};
  EXPECT_THROW(f.div(5, 0), std::domain_error);
  EXPECT_THROW(f.inv(0), std::domain_error);
  EXPECT_THROW(f.log(0), std::domain_error);
  for (Element a = 1; a < f.size(); ++a) {
    EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
    EXPECT_EQ(f.div(a, a), 1u);
    EXPECT_EQ(f.div(0, a), 0u);
  }
}

TEST(GaloisField, PowEdgeCases) {
  const GaloisField f{8};
  EXPECT_EQ(f.pow(0, 0), 1u);  // convention
  EXPECT_EQ(f.pow(0, 5), 0u);
  EXPECT_THROW(f.pow(0, -1), std::domain_error);
  EXPECT_EQ(f.pow(7, 0), 1u);
  EXPECT_EQ(f.pow(7, 1), 7u);
  EXPECT_EQ(f.pow(7, 255), 1u);   // Fermat
  EXPECT_EQ(f.pow(7, -255), 1u);
  EXPECT_EQ(f.pow(7, -1), f.inv(7));
}

// Property sweep: full field axioms on every GF(2^m) small enough to
// enumerate exhaustively.
class GaloisFieldAxioms : public ::testing::TestWithParam<unsigned> {};

TEST_P(GaloisFieldAxioms, MultiplicationIsCommutativeAndAssociative) {
  const GaloisField f{GetParam()};
  for (Element a = 0; a < f.size(); ++a) {
    for (Element b = 0; b < f.size(); ++b) {
      EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    }
  }
  // Associativity on a subsample (cubic blowup otherwise).
  for (Element a = 0; a < f.size(); a += 3) {
    for (Element b = 1; b < f.size(); b += 5) {
      for (Element c = 2; c < f.size(); c += 7) {
        EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
      }
    }
  }
}

TEST_P(GaloisFieldAxioms, DistributesOverAddition) {
  const GaloisField f{GetParam()};
  for (Element a = 0; a < f.size(); a += 2) {
    for (Element b = 0; b < f.size(); b += 3) {
      for (Element c = 0; c < f.size(); c += 5) {
        EXPECT_EQ(f.mul(a, GaloisField::add(b, c)),
                  GaloisField::add(f.mul(a, b), f.mul(a, c)));
      }
    }
  }
}

TEST_P(GaloisFieldAxioms, MultiplicativeGroupIsCyclic) {
  const GaloisField f{GetParam()};
  std::set<Element> seen;
  for (std::uint32_t e = 0; e < f.order(); ++e) {
    EXPECT_TRUE(seen.insert(f.alpha_pow(e)).second)
        << "alpha^" << e << " repeated";
  }
  EXPECT_EQ(seen.size(), f.order());
  EXPECT_EQ(seen.count(0), 0u);
}

TEST_P(GaloisFieldAxioms, FrobeniusSquareIsLinear) {
  const GaloisField f{GetParam()};
  // (a+b)^2 == a^2 + b^2 in characteristic 2.
  for (Element a = 0; a < f.size(); a += 2) {
    for (Element b = 0; b < f.size(); b += 3) {
      EXPECT_EQ(f.pow(GaloisField::add(a, b), 2),
                GaloisField::add(f.pow(a, 2), f.pow(b, 2)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallFields, GaloisFieldAxioms,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u));

// Exhaustive cross-check of the dense multiplication table (the RS fast
// path's inner-loop primitive) against the log/exp reference, and of the
// div/inv identities it must be consistent with.
class DenseMulTable : public ::testing::TestWithParam<unsigned> {};

TEST_P(DenseMulTable, MatchesLogExpPathExhaustively) {
  const GaloisField f{GetParam()};
  const Element* dense = f.dense_mul_table();
  ASSERT_NE(dense, nullptr);
  const unsigned m = f.m();
  for (Element a = 0; a < f.size(); ++a) {
    for (Element b = 0; b < f.size(); ++b) {
      const Element via_table = dense[(static_cast<std::size_t>(a) << m) | b];
      ASSERT_EQ(via_table, f.mul(a, b)) << "a=" << a << " b=" << b;
    }
  }
}

TEST_P(DenseMulTable, ConsistentWithDivAndInv) {
  const GaloisField f{GetParam()};
  const Element* dense = f.dense_mul_table();
  ASSERT_NE(dense, nullptr);
  const unsigned m = f.m();
  const auto tmul = [&](Element a, Element b) {
    return dense[(static_cast<std::size_t>(a) << m) | b];
  };
  for (Element a = 1; a < f.size(); ++a) {
    EXPECT_EQ(tmul(a, f.inv(a)), 1u);
    for (Element b = 1; b < f.size(); ++b) {
      // div is the table product with the inverse; round-trips exactly.
      EXPECT_EQ(f.div(tmul(a, b), b), a);
      EXPECT_EQ(tmul(f.div(a, b), b), a);
    }
  }
}

TEST_P(DenseMulTable, IsStableAcrossCalls) {
  const GaloisField f{GetParam()};
  const Element* first = f.dense_mul_table();
  EXPECT_EQ(f.dense_mul_table(), first);  // built once, cached
}

INSTANTIATE_TEST_SUITE_P(SmallFields, DenseMulTable,
                         ::testing::Values(2u, 4u, 8u));

TEST(GaloisField, DenseMulTableUnavailableAboveM8) {
  const GaloisField f{9};
  EXPECT_EQ(f.dense_mul_table(), nullptr);
  const GaloisField g{16};
  EXPECT_EQ(g.dense_mul_table(), nullptr);
}

TEST(GaloisField, LargeFieldsConstructAndInvert) {
  for (const unsigned m : {10u, 12u, 16u}) {
    const GaloisField f{m};
    EXPECT_EQ(f.size(), 1u << m);
    // Spot-check inverses across the field.
    for (Element a = 1; a < f.size(); a += 997) {
      EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
    }
  }
}

}  // namespace
}  // namespace rsmem::gf
