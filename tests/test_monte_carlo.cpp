// Tests for the Monte-Carlo estimator, including the headline
// cross-validation: functional simulation vs Markov-chain prediction.
#include "analysis/monte_carlo.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "markov/uniformization.h"
#include "models/ber.h"

namespace rsmem::analysis {
namespace {

TEST(BinomialEstimate, BasicStatistics) {
  BinomialEstimate e;
  e.trials = 1000;
  e.failures = 100;
  EXPECT_DOUBLE_EQ(e.p_hat(), 0.1);
  EXPECT_NEAR(e.std_error(), 0.00949, 1e-4);
  EXPECT_LT(e.wilson_low(), 0.1);
  EXPECT_GT(e.wilson_high(), 0.1);
  EXPECT_TRUE(e.covers(0.1));
  EXPECT_FALSE(e.covers(0.2));
  EXPECT_FALSE(e.covers(0.05));
}

TEST(BinomialEstimate, ZeroFailuresWellBehaved) {
  BinomialEstimate e;
  e.trials = 500;
  e.failures = 0;
  EXPECT_DOUBLE_EQ(e.p_hat(), 0.0);
  EXPECT_DOUBLE_EQ(e.wilson_low(), 0.0);
  EXPECT_GT(e.wilson_high(), 0.0);
  EXPECT_LT(e.wilson_high(), 0.02);
  EXPECT_TRUE(e.covers(0.001));
}

TEST(BinomialEstimate, EmptyTrials) {
  const BinomialEstimate e;
  EXPECT_DOUBLE_EQ(e.p_hat(), 0.0);
  EXPECT_DOUBLE_EQ(e.wilson_low(), 0.0);
  EXPECT_DOUBLE_EQ(e.wilson_high(), 1.0);
}

TEST(MonteCarlo, RejectsZeroTrials) {
  const memory::SimplexSystemConfig cfg;
  MonteCarloConfig mc;
  mc.trials = 0;
  EXPECT_THROW(run_simplex_trials(cfg, mc), std::invalid_argument);
  const memory::DuplexSystemConfig dcfg;
  EXPECT_THROW(run_duplex_trials(dcfg, mc), std::invalid_argument);
}

TEST(MonteCarlo, NoFaultsNoFailures) {
  const memory::SimplexSystemConfig cfg;  // zero rates
  MonteCarloConfig mc;
  mc.trials = 50;
  const MonteCarloResult r = run_simplex_trials(cfg, mc);
  EXPECT_EQ(r.failure.failures, 0u);
  EXPECT_DOUBLE_EQ(r.mean_seu_per_trial, 0.0);
}

TEST(MonteCarlo, DeterministicGivenSeed) {
  memory::SimplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 1e-3;
  MonteCarloConfig mc;
  mc.trials = 100;
  mc.seed = 5;
  const MonteCarloResult a = run_simplex_trials(cfg, mc);
  const MonteCarloResult b = run_simplex_trials(cfg, mc);
  EXPECT_EQ(a.failure.failures, b.failure.failures);
  EXPECT_DOUBLE_EQ(a.mean_seu_per_trial, b.mean_seu_per_trial);
}

// ---- The cross-validation tests (DESIGN.md section 6, item 4). ----

TEST(McVsMarkov, SimplexSeuOnlyAccelerated) {
  // Accelerated SEU rate so failures are observable in 600 trials.
  const double lambda_hour = 1e-4;
  memory::SimplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = lambda_hour;
  MonteCarloConfig mc;
  mc.trials = 600;
  mc.t_end_hours = 48.0;
  mc.seed = 303;
  const MonteCarloResult sim = run_simplex_trials(cfg, mc);

  models::SimplexParams params;
  params.n = 18;
  params.k = 16;
  params.m = 8;
  params.seu_rate_per_bit_hour = lambda_hour;
  const std::vector<double> times{48.0};
  const double predicted =
      models::simplex_ber_curve(params, times,
                                markov::UniformizationSolver{})
          .fail_probability[0];
  EXPECT_GT(predicted, 0.01);  // the acceleration worked
  EXPECT_TRUE(sim.failure.covers(predicted))
      << "MC " << sim.failure.p_hat() << " CI [" << sim.failure.wilson_low()
      << ", " << sim.failure.wilson_high() << "] vs Markov " << predicted;
}

TEST(McVsMarkov, SimplexWithPermanentFaults) {
  const double le_hour = 2e-3;
  memory::SimplexSystemConfig cfg;
  cfg.rates.perm_rate_per_symbol_hour = le_hour;
  MonteCarloConfig mc;
  mc.trials = 600;
  mc.t_end_hours = 48.0;
  mc.seed = 404;
  const MonteCarloResult sim = run_simplex_trials(cfg, mc);

  models::SimplexParams params;
  params.n = 18;
  params.k = 16;
  params.m = 8;
  params.erasure_rate_per_symbol_hour = le_hour;
  const std::vector<double> times{48.0};
  const double predicted =
      models::simplex_ber_curve(params, times,
                                markov::UniformizationSolver{})
          .fail_probability[0];
  EXPECT_GT(predicted, 0.02);
  EXPECT_TRUE(sim.failure.covers(predicted))
      << "MC " << sim.failure.p_hat() << " vs Markov " << predicted;
}

TEST(McVsMarkov, SimplexWithExponentialScrubbing) {
  const double lambda_hour = 5e-4;
  memory::SimplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = lambda_hour;
  cfg.scrub_policy = memory::ScrubPolicy::kExponential;  // matches the chain
  cfg.scrub_period_hours = 0.5;
  MonteCarloConfig mc;
  mc.trials = 600;
  mc.t_end_hours = 48.0;
  mc.seed = 505;
  const MonteCarloResult sim = run_simplex_trials(cfg, mc);

  models::SimplexParams params;
  params.n = 18;
  params.k = 16;
  params.m = 8;
  params.seu_rate_per_bit_hour = lambda_hour;
  params.scrub_rate_per_hour = 2.0;
  const std::vector<double> times{48.0};
  const double predicted =
      models::simplex_ber_curve(params, times,
                                markov::UniformizationSolver{})
          .fail_probability[0];
  EXPECT_GT(predicted, 0.005);
  EXPECT_TRUE(sim.failure.covers(predicted))
      << "MC " << sim.failure.p_hat() << " vs Markov " << predicted;
}

TEST(McVsMarkov, DuplexPermanentFaultsAccelerated) {
  const double le_hour = 8e-3;  // aggressive so X reaches 3 sometimes
  memory::DuplexSystemConfig cfg;
  cfg.rates.perm_rate_per_symbol_hour = le_hour;
  MonteCarloConfig mc;
  mc.trials = 2000;
  mc.t_end_hours = 48.0;
  mc.seed = 606;
  const MonteCarloResult sim = run_duplex_trials(cfg, mc);

  models::DuplexParams params;
  params.n = 18;
  params.k = 16;
  params.m = 8;
  params.erasure_rate_per_symbol_hour = le_hour;
  // The functional system exposes each physical symbol to erasures, which
  // is the per-physical-symbol convention (paper's Fig. 4 halves the
  // two-sided exposures; see DESIGN.md).
  params.convention = models::RateConvention::kPerPhysicalSymbol;
  const std::vector<double> times{48.0};
  const double predicted =
      models::duplex_ber_curve(params, times, markov::UniformizationSolver{})
          .fail_probability[0];
  EXPECT_GT(predicted, 0.01);
  // 4-sigma binomial band around the simulated estimate.
  const double band = 4.0 * sim.failure.std_error();
  EXPECT_NEAR(sim.failure.p_hat(), predicted, band)
      << "MC " << sim.failure.p_hat() << " vs Markov " << predicted;
  // With erasures only, both words see the same damage, so the two fail
  // criteria must coincide exactly.
  models::DuplexParams both = params;
  both.fail_criterion = models::FailCriterion::kBothWordsUnrecoverable;
  const double predicted_both =
      models::duplex_ber_curve(both, times, markov::UniformizationSolver{})
          .fail_probability[0];
  EXPECT_NEAR(predicted_both, predicted, 1e-12);
}

TEST(McVsMarkov, DuplexSeuOnlyBracketedByFailCriteria) {
  // Under SEU-only loads the paper's conservative chain (fail as soon as
  // EITHER word exceeds its budget) over-predicts the physical arbiter,
  // which survives one lost word via the other module; the optimistic
  // chain (fail only when BOTH words are lost) under-predicts it slightly
  // because a mis-correcting word can outvote a recoverable one (rule 4).
  // The functional system must land between the two chains.
  const double lambda_hour = 1.2e-4;
  memory::DuplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = lambda_hour;
  MonteCarloConfig mc;
  mc.trials = 2000;
  mc.t_end_hours = 48.0;
  mc.seed = 707;
  const MonteCarloResult sim = run_duplex_trials(cfg, mc);

  models::DuplexParams params;
  params.n = 18;
  params.k = 16;
  params.m = 8;
  params.seu_rate_per_bit_hour = lambda_hour;
  const std::vector<double> times{48.0};
  const double conservative =
      models::duplex_ber_curve(params, times, markov::UniformizationSolver{})
          .fail_probability[0];
  params.fail_criterion = models::FailCriterion::kBothWordsUnrecoverable;
  const double optimistic =
      models::duplex_ber_curve(params, times, markov::UniformizationSolver{})
          .fail_probability[0];
  EXPECT_GT(conservative, 0.01);
  EXPECT_LT(optimistic, conservative);
  const double band = 4.0 * sim.failure.std_error() + 1e-3;
  EXPECT_LT(sim.failure.p_hat(), conservative + band);
  EXPECT_GT(sim.failure.p_hat(), optimistic - band);
}

}  // namespace
}  // namespace rsmem::analysis
