// Tests for the CTMC framework: chain validation, state-space construction,
// Poisson windows, and transient solvers against closed-form solutions.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "markov/ctmc.h"
#include "markov/rk45.h"
#include "markov/state_space.h"
#include "markov/uniformization.h"

namespace rsmem::markov {
namespace {

using linalg::CsrMatrix;
using linalg::Triplet;

// Two-state chain 0 -> 1 at rate mu: P1(t) = 1 - exp(-mu t).
Ctmc two_state(double mu) {
  return Ctmc{CsrMatrix(2, 2, {{0, 0, -mu}, {0, 1, mu}}), 0};
}

// Birth chain 0 -> 1 -> 2 with rates a, b (a != b):
// P2(t) = 1 - (b e^{-at} - a e^{-bt}) / (b - a).
Ctmc birth_chain(double a, double b) {
  return Ctmc{
      CsrMatrix(3, 3, {{0, 0, -a}, {0, 1, a}, {1, 1, -b}, {1, 2, b}}), 0};
}

TEST(Ctmc, ValidatesGenerator) {
  // Row does not sum to zero.
  EXPECT_THROW(Ctmc(CsrMatrix(2, 2, {{0, 1, 1.0}}), 0),
               std::invalid_argument);
  // Negative off-diagonal.
  EXPECT_THROW(
      Ctmc(CsrMatrix(2, 2, {{0, 0, 1.0}, {0, 1, -1.0}}), 0),
      std::invalid_argument);
  // Non-square.
  EXPECT_THROW(Ctmc(CsrMatrix(2, 3, {}), 0), std::invalid_argument);
  // Initial state out of range.
  EXPECT_THROW(Ctmc(CsrMatrix(2, 2, {}), 2), std::invalid_argument);
}

TEST(Ctmc, AbsorbingDetection) {
  const Ctmc chain = two_state(3.0);
  EXPECT_FALSE(chain.is_absorbing(0));
  EXPECT_TRUE(chain.is_absorbing(1));
  EXPECT_THROW(chain.is_absorbing(5), std::invalid_argument);
}

TEST(Ctmc, InitialDistributionIsPointMass) {
  const Ctmc chain = two_state(1.0);
  const auto pi0 = chain.initial_distribution();
  EXPECT_DOUBLE_EQ(pi0[0], 1.0);
  EXPECT_DOUBLE_EQ(pi0[1], 0.0);
}

TEST(PoissonWindow, SmallLambdaExact) {
  const PoissonWindow w = poisson_window(0.5, 1e-12);
  ASSERT_EQ(w.first_k, 0u);
  EXPECT_NEAR(w.weights[0], std::exp(-0.5), 1e-14);
  EXPECT_NEAR(w.weights[1], 0.5 * std::exp(-0.5), 1e-14);
  double total = 0.0;
  for (const double x : w.weights) total += x;
  EXPECT_NEAR(total, 1.0, 1e-11);
}

TEST(PoissonWindow, ZeroLambda) {
  const PoissonWindow w = poisson_window(0.0, 1e-10);
  EXPECT_EQ(w.first_k, 0u);
  ASSERT_EQ(w.weights.size(), 1u);
  EXPECT_DOUBLE_EQ(w.weights[0], 1.0);
}

TEST(PoissonWindow, LargeLambdaStable) {
  // qt ~ 2000: direct exp(-2000) underflows; the mode-out recurrence must
  // still capture the mass.
  const PoissonWindow w = poisson_window(2000.0, 1e-12);
  double total = 0.0;
  for (const double x : w.weights) total += x;
  EXPECT_NEAR(total, 1.0, 1e-11);
  // The window must straddle the mode.
  EXPECT_LT(w.first_k, 2000u);
  EXPECT_GT(w.first_k + w.weights.size(), 2000u);
}

TEST(PoissonWindow, RejectsNegative) {
  EXPECT_THROW(poisson_window(-1.0, 1e-10), std::invalid_argument);
}

TEST(PoissonWindow, EdgeLambdasMassWeightsAndSupport) {
  // The regimes the sweeps actually hit: degenerate (lambda = 0),
  // sub-unit (short scrub cycles), and very large (long horizons on stiff
  // chains). In every case the window must hold >= 1 - eps of the mass in
  // nonnegative weights on a support that straddles the mode.
  constexpr double kEps = 1e-12;
  for (const double lambda : {0.0, 0.05, 0.7, 1e4}) {
    const PoissonWindow w = poisson_window(lambda, kEps);
    ASSERT_FALSE(w.weights.empty()) << "lambda=" << lambda;
    double total = 0.0;
    for (const double x : w.weights) {
      EXPECT_GE(x, 0.0) << "lambda=" << lambda;
      total += x;
    }
    EXPECT_GE(total, 1.0 - 1e-11) << "lambda=" << lambda;
    EXPECT_LE(total, 1.0 + 1e-11) << "lambda=" << lambda;
    const auto mode = static_cast<std::size_t>(lambda);
    EXPECT_LE(w.first_k, mode) << "lambda=" << lambda;
    EXPECT_GT(w.first_k + w.weights.size(), mode) << "lambda=" << lambda;
  }
  // first_k stays within a few standard deviations of the mode (sanity
  // check that the left scan terminates where it should, not at 0).
  const PoissonWindow big = poisson_window(1e4, kEps);
  EXPECT_GT(big.first_k, static_cast<std::size_t>(1e4 - 20.0 * 100.0));
  // Width is O(sigma * sqrt(-ln(tail_floor))): ~700 left of the mode for
  // eps = 1e-12 plus ~3900 right of it to reach the 1e-320 tail floor --
  // far from the O(lambda) cost of summing from k = 0.
  EXPECT_LT(big.weights.size(), 6000u);
}

TEST(PoissonWindow, TailExtensionMonotoneAboveFloor) {
  // The far tail is extended until the pmf falls below the tail floor so
  // absorbing-state masses ~1e-30 are not truncated away. Every extended
  // term must keep the pmf recurrence (strictly decreasing past the mode)
  // and stay above the floor.
  const PoissonWindow w = poisson_window(50.0, 1e-12);
  const std::size_t mode = 50 - w.first_k;
  for (std::size_t i = mode + 1; i < w.weights.size(); ++i) {
    EXPECT_LT(w.weights[i], w.weights[i - 1]) << "k=" << w.first_k + i;
    EXPECT_GE(w.weights[i], 1e-320);
  }
  // With eps = 1e-12 alone the window would stop ~7 sigma out
  // (pmf ~ 1e-14); the floor pushes it far beyond.
  EXPECT_LT(w.weights.back(), 1e-250);
}

TEST(Uniformization, MatchesTwoStateClosedForm) {
  const UniformizationSolver solver;
  const double mu = 0.7;
  const Ctmc chain = two_state(mu);
  for (const double t : {0.0, 0.1, 1.0, 5.0, 20.0}) {
    const auto pi = solver.solve(chain, t);
    EXPECT_NEAR(pi[0], std::exp(-mu * t), 1e-12) << "t=" << t;
    EXPECT_NEAR(pi[1], 1.0 - std::exp(-mu * t), 1e-12);
  }
}

TEST(Uniformization, MatchesBirthChainClosedForm) {
  const UniformizationSolver solver;
  const double a = 1.3, b = 0.4;
  const Ctmc chain = birth_chain(a, b);
  for (const double t : {0.5, 2.0, 10.0}) {
    const auto pi = solver.solve(chain, t);
    const double p0 = std::exp(-a * t);
    const double p1 = a / (b - a) * (std::exp(-a * t) - std::exp(-b * t));
    EXPECT_NEAR(pi[0], p0, 1e-12);
    EXPECT_NEAR(pi[1], p1, 1e-12);
    EXPECT_NEAR(pi[2], 1.0 - p0 - p1, 1e-12);
  }
}

TEST(Uniformization, ZeroTimeAndZeroGenerator) {
  const UniformizationSolver solver;
  const Ctmc frozen{CsrMatrix(2, 2, {}), 1};
  const auto pi = solver.solve(frozen, 100.0);
  EXPECT_DOUBLE_EQ(pi[1], 1.0);
  const Ctmc chain = two_state(1.0);
  const auto pi0 = solver.solve(chain, 0.0);
  EXPECT_DOUBLE_EQ(pi0[0], 1.0);
}

TEST(Uniformization, RejectsBadInputs) {
  const UniformizationSolver solver;
  const Ctmc chain = two_state(1.0);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(solver.solve(chain, wrong, 1.0), std::invalid_argument);
  EXPECT_THROW(solver.solve(chain, -1.0), std::invalid_argument);
  EXPECT_THROW(UniformizationSolver{0.0}, std::invalid_argument);
}

TEST(Uniformization, ProbabilityConservedOnStiffChain) {
  // Fast scrub-like rate + slow fault rate: stiff, large q*t.
  const double fast = 96.0, slow = 1e-4;
  const Ctmc chain{CsrMatrix(2, 2,
                             {{0, 0, -slow},
                              {0, 1, slow},
                              {1, 1, -fast},
                              {1, 0, fast}}),
                   0};
  const UniformizationSolver solver;
  const auto pi = solver.solve(chain, 48.0);  // q*t ~ 4600
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-10);
  EXPECT_GT(pi[0], 0.99);  // scrubbing keeps it in state 0
}

TEST(Rk45, MatchesTwoStateClosedForm) {
  const Rk45Solver solver;
  const double mu = 2.2;
  const Ctmc chain = two_state(mu);
  for (const double t : {0.3, 1.7, 6.0}) {
    const auto pi = solver.solve(chain, t);
    EXPECT_NEAR(pi[0], std::exp(-mu * t), 1e-9);
  }
}

TEST(Rk45, AgreesWithUniformizationOnRandomChain) {
  // A 6-state ring with heterogeneous rates.
  std::vector<Triplet> triplets;
  const double rates[] = {0.5, 1.5, 0.1, 2.0, 0.8, 1.1};
  for (std::size_t i = 0; i < 6; ++i) {
    triplets.push_back({i, (i + 1) % 6, rates[i]});
    triplets.push_back({i, i, -rates[i]});
  }
  const Ctmc chain{CsrMatrix(6, 6, triplets), 0};
  const UniformizationSolver uni;
  const Rk45Solver rk;
  for (const double t : {0.1, 1.0, 10.0}) {
    const auto a = uni.solve(chain, t);
    const auto b = rk.solve(chain, t);
    for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(a[i], b[i], 1e-8);
  }
}

TEST(Rk45, RejectsBadTolerances) {
  EXPECT_THROW(Rk45Solver(0.0, 1e-10), std::invalid_argument);
  EXPECT_THROW(Rk45Solver(1e-6, -1.0), std::invalid_argument);
}

TEST(TransientSolver, OccupancyCurveIncremental) {
  const UniformizationSolver solver;
  const double mu = 0.9;
  const Ctmc chain = two_state(mu);
  const std::vector<double> times{0.0, 0.5, 1.0, 3.0, 3.0, 7.0};
  const auto curve = solver.occupancy_curve(chain, 1, times);
  ASSERT_EQ(curve.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(curve[i], 1.0 - std::exp(-mu * times[i]), 1e-11);
  }
  const std::vector<double> unsorted{1.0, 0.5};
  EXPECT_THROW(solver.occupancy_curve(chain, 1, unsorted),
               std::invalid_argument);
  EXPECT_THROW(solver.occupancy_curve(chain, 9, times), std::invalid_argument);
}

// ---- state-space builder ----

// A tiny model: tokens 0..N with +1 transitions, absorbing at N.
class CounterModel final : public TransitionModel {
 public:
  CounterModel(unsigned limit, double rate) : limit_(limit), rate_(rate) {}
  PackedState initial_state() const override { return 0; }
  void for_each_transition(PackedState s,
                           const TransitionSink& emit) const override {
    if (s < limit_) emit(rate_, s + 1);
  }

 private:
  unsigned limit_;
  double rate_;
};

TEST(StateSpace, BuildsCounterChain) {
  const CounterModel model{4, 2.0};
  const StateSpace space = build_state_space(model);
  EXPECT_EQ(space.size(), 5u);
  EXPECT_EQ(space.initial_index, space.index_of(0));
  EXPECT_TRUE(space.contains(4));
  EXPECT_TRUE(space.chain.is_absorbing(space.index_of(4)));
  // Generator: Q[i][i] = -2, Q[i][i+1] = 2 for i < 4.
  for (unsigned i = 0; i < 4; ++i) {
    const std::size_t idx = space.index_of(i);
    EXPECT_DOUBLE_EQ(space.chain.generator().at(idx, idx), -2.0);
    EXPECT_DOUBLE_EQ(space.chain.generator().at(idx, space.index_of(i + 1)),
                     2.0);
  }
}

class SelfLoopModel final : public TransitionModel {
 public:
  PackedState initial_state() const override { return 7; }
  void for_each_transition(PackedState s,
                           const TransitionSink& emit) const override {
    emit(5.0, s);    // self-loop: must be ignored
    emit(0.0, 99);   // zero rate: must be ignored
  }
};

TEST(StateSpace, IgnoresSelfLoopsAndZeroRates) {
  const StateSpace space = build_state_space(SelfLoopModel{});
  EXPECT_EQ(space.size(), 1u);
  EXPECT_TRUE(space.chain.is_absorbing(0));
}

class NegativeRateModel final : public TransitionModel {
 public:
  PackedState initial_state() const override { return 0; }
  void for_each_transition(PackedState,
                           const TransitionSink& emit) const override {
    emit(-1.0, 1);
  }
};

TEST(StateSpace, RejectsNegativeRate) {
  EXPECT_THROW(build_state_space(NegativeRateModel{}), std::invalid_argument);
}

TEST(StateSpace, ExplosionGuard) {
  const CounterModel model{1000, 1.0};
  EXPECT_THROW(build_state_space(model, 10), std::length_error);
}

}  // namespace
}  // namespace rsmem::markov
