// Tests for absorption analysis (MTTF) and the dense matrix-exponential
// solver, including three-way solver agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "markov/absorption.h"
#include "markov/expm.h"
#include "markov/rk45.h"
#include "markov/uniformization.h"

namespace rsmem::markov {
namespace {

using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Triplet;

TEST(Absorption, TwoStateMttf) {
  // 0 -> 1 at rate mu: MTTF = 1/mu, absorbed in state 1 w.p. 1.
  const double mu = 4.0;
  const Ctmc chain{CsrMatrix(2, 2, {{0, 0, -mu}, {0, 1, mu}}), 0};
  const AbsorptionResult r = analyze_absorption(chain);
  ASSERT_EQ(r.transient_states.size(), 1u);
  ASSERT_EQ(r.absorbing_states.size(), 1u);
  EXPECT_NEAR(r.mttf, 1.0 / mu, 1e-12);
  EXPECT_NEAR(r.initial_absorption_split[0], 1.0, 1e-12);
}

TEST(Absorption, BirthChainMttfAddsStageMeans) {
  // 0 -> 1 -> 2 with rates a then b: MTTF = 1/a + 1/b.
  const double a = 2.0, b = 0.5;
  const Ctmc chain{
      CsrMatrix(3, 3, {{0, 0, -a}, {0, 1, a}, {1, 1, -b}, {1, 2, b}}), 0};
  const AbsorptionResult r = analyze_absorption(chain);
  EXPECT_NEAR(r.mttf, 1.0 / a + 1.0 / b, 1e-12);
}

TEST(Absorption, CompetingAbsorbersSplit) {
  // 0 -> A at rate 3, 0 -> B at rate 1: P(A) = 3/4, MTTF = 1/4.
  const Ctmc chain{CsrMatrix(3, 3, {{0, 0, -4.0}, {0, 1, 3.0}, {0, 2, 1.0}}),
                   0};
  const AbsorptionResult r = analyze_absorption(chain);
  ASSERT_EQ(r.absorbing_states.size(), 2u);
  EXPECT_NEAR(r.mttf, 0.25, 1e-12);
  EXPECT_NEAR(r.initial_absorption_split[0], 0.75, 1e-12);
  EXPECT_NEAR(r.initial_absorption_split[1], 0.25, 1e-12);
}

TEST(Absorption, RepairLoopLengthensMttf) {
  // 0 <-> 1 -> F; repair (1 -> 0) multiplies the expected time.
  const double fault = 1.0, fail = 0.1, repair = 10.0;
  const Ctmc chain{CsrMatrix(3, 3,
                             {{0, 0, -fault},
                              {0, 1, fault},
                              {1, 0, repair},
                              {1, 2, fail},
                              {1, 1, -(repair + fail)}}),
                   0};
  const AbsorptionResult r = analyze_absorption(chain);
  // Closed form: expected number of 0->1 excursions before failing is
  // (repair+fail)/fail; each cycle takes 1/fault + 1/(repair+fail).
  const double cycles = (repair + fail) / fail;
  const double expected =
      cycles * (1.0 / fault) + cycles * (1.0 / (repair + fail));
  EXPECT_NEAR(r.mttf, expected, 1e-9);
}

TEST(Absorption, AbsorbingInitialState) {
  const Ctmc chain{CsrMatrix(2, 2, {{0, 0, -1.0}, {0, 1, 1.0}}), 1};
  const AbsorptionResult r = analyze_absorption(chain);
  EXPECT_DOUBLE_EQ(r.mttf, 0.0);
  EXPECT_DOUBLE_EQ(r.initial_absorption_split[0], 1.0);
}

TEST(Absorption, ErrorsOnDegenerateChains) {
  // No absorbing state at all.
  const Ctmc ring{CsrMatrix(2, 2,
                            {{0, 0, -1.0},
                             {0, 1, 1.0},
                             {1, 0, 1.0},
                             {1, 1, -1.0}}),
                  0};
  EXPECT_THROW(analyze_absorption(ring), std::invalid_argument);
  // A transient class that cannot reach the absorber.
  const Ctmc split{CsrMatrix(4, 4,
                             {{0, 0, -1.0},
                              {0, 1, 1.0},  // 0 -> 1 (absorbing)
                              {2, 2, -1.0},
                              {2, 3, 1.0},
                              {3, 2, 1.0},
                              {3, 3, -1.0}}),  // 2 <-> 3 closed loop
                   0};
  EXPECT_THROW(analyze_absorption(split), std::domain_error);
}

TEST(Absorption, MatchesIntegralOfSurvival) {
  // MTTF == integral of (1 - P_fail(t)) dt; check numerically.
  const double a = 3.0, b = 1.0;
  const Ctmc chain{
      CsrMatrix(3, 3, {{0, 0, -a}, {0, 1, a}, {1, 1, -b}, {1, 2, b}}), 0};
  const AbsorptionResult r = analyze_absorption(chain);
  const UniformizationSolver solver;
  double integral = 0.0;
  const double dt = 0.01;
  std::vector<double> pi = chain.initial_distribution();
  for (double t = 0.0; t < 40.0; t += dt) {
    const double survival_mid = 1.0 - solver.solve(chain, pi, dt / 2)[2];
    pi = solver.solve(chain, pi, dt);
    integral += survival_mid * dt;
  }
  EXPECT_NEAR(integral, r.mttf, 1e-3);
}

TEST(Expm, IdentityAndZero) {
  const DenseMatrix zero(3, 3);
  const DenseMatrix e = expm(zero);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(e.at(i, j), i == j ? 1.0 : 0.0, 1e-15);
    }
  }
  EXPECT_THROW(expm(DenseMatrix(2, 3)), std::invalid_argument);
}

TEST(Expm, DiagonalMatrix) {
  DenseMatrix d(2, 2);
  d.at(0, 0) = 1.0;
  d.at(1, 1) = -2.0;
  const DenseMatrix e = expm(d);
  EXPECT_NEAR(e.at(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e.at(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e.at(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentClosedForm) {
  // A = [[0,1],[0,0]] -> expm(A) = [[1,1],[0,1]].
  DenseMatrix a(2, 2);
  a.at(0, 1) = 1.0;
  const DenseMatrix e = expm(a);
  EXPECT_NEAR(e.at(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e.at(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(e.at(1, 0), 0.0, 1e-14);
  EXPECT_NEAR(e.at(1, 1), 1.0, 1e-14);
}

TEST(Expm, LargeNormScalingPath) {
  // Exercise scaling-and-squaring: rate 40 over t=1.
  const double mu = 40.0;
  const Ctmc chain{CsrMatrix(2, 2, {{0, 0, -mu}, {0, 1, mu}}), 0};
  const ExpmSolver solver;
  const auto pi = solver.solve(chain, 1.0);
  EXPECT_NEAR(pi[0], std::exp(-mu), 1e-22);  // ~4e-18, relative ~1e-5
  EXPECT_NEAR(pi[1], 1.0, 1e-12);
}

TEST(Expm, ThreeSolversAgreeOnScrubbedSimplexShape) {
  // 4-state chain with a scrub-like fast return edge.
  std::vector<Triplet> triplets = {
      {0, 1, 2.0},  {0, 0, -2.0},           // fault
      {1, 2, 1.5},  {1, 0, 8.0}, {1, 1, -9.5},  // worsen or scrub back
      {2, 3, 1.0},  {2, 0, 8.0}, {2, 2, -9.0},  // worsen or scrub back
  };
  const Ctmc chain{CsrMatrix(4, 4, triplets), 0};
  const UniformizationSolver uni;
  const Rk45Solver rk;
  const ExpmSolver ex;
  for (const double t : {0.05, 0.7, 3.0, 12.0}) {
    const auto a = uni.solve(chain, t);
    const auto b = rk.solve(chain, t);
    const auto c = ex.solve(chain, t);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-8) << "t=" << t << " state " << i;
      EXPECT_NEAR(a[i], c[i], 1e-8) << "t=" << t << " state " << i;
    }
  }
}

TEST(Expm, RejectsBadInputs) {
  const Ctmc chain{CsrMatrix(2, 2, {{0, 0, -1.0}, {0, 1, 1.0}}), 0};
  const ExpmSolver solver;
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(solver.solve(chain, wrong, 1.0), std::invalid_argument);
  EXPECT_THROW(solver.solve(chain, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace rsmem::markov
