// High-trial-count differential tests: the functional memory systems (real
// decoder, real arbiter, Poisson fault injection) against the paper's CTMC
// models, at accelerated fault rates, with >= 200k trials per scenario on
// the parallel campaign engine (label: mc_heavy).
//
// Because every campaign is bit-identical for any thread count, these
// assertions are exact regressions pins, not flaky statistical checks: a
// fixed seed always reproduces the same estimate on any machine.
//
// Where the chain abstraction is exact (permanent faults: sticking a bit is
// idempotent at symbol granularity; low-fluence SEUs), the Wilson 95%
// interval of the simulated failure probability must COVER the chain's
// P_Fail(t). Where the abstraction is knowingly one-sided, the suite pins
// the direction and size of the gap instead:
//  * high-fluence SEU: the functional system cancels a bit flip when a
//    second upset hits the same bit, which the chain does not model, so the
//    chain over-predicts by a small bounded margin (RS(36,16) needs ~11+
//    corrupted symbols to fail, forcing high fluence);
//  * duplex SEU: the paper's chain fails as soon as EITHER word exceeds its
//    budget, while the real arbiter usually survives one lost word, so the
//    functional system lands strictly between the paper criterion and the
//    both-words-lost criterion.
//
// Every trial also feeds an RS-bound property check through the campaign
// observer hook: no word decode may ever claim corrections beyond the
// code's guaranteed capability er + 2*re <= n - k, and (simplex) any trial
// whose ground-truth damage is within the bound must decode to the correct
// data.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "analysis/monte_carlo.h"
#include "markov/uniformization.h"
#include "models/ber.h"

namespace rsmem::analysis {
namespace {

constexpr std::size_t kTrials = 200000;
constexpr std::uint64_t kSeed = 20260806;
constexpr double kHours = 48.0;

// Thread-safe RS-bound property monitor, installed as the campaign
// observer; all counters are atomic because shards report concurrently.
struct BoundMonitor {
  unsigned parity_symbols;  // n - k
  std::atomic<std::uint64_t> trials_seen{0};
  std::atomic<std::uint64_t> claim_violations{0};
  std::atomic<std::uint64_t> guarantee_violations{0};

  void install(MonteCarloConfig& config) {
    config.observer = [this](const TrialRecord& record) { observe(record); };
  }

  void observe(const TrialRecord& record) {
    trials_seen.fetch_add(1, std::memory_order_relaxed);
    for (unsigned w = 0; w < record.word_count; ++w) {
      const WordObservation& word = record.words[w];
      if (!word.decode_ok) continue;
      // A successful decode can never claim a pattern beyond the bound:
      // with er erasures supplied, at most floor((n-k-er)/2) random errors
      // are correctable.
      if (word.erasures_supplied + 2 * word.errors_corrected >
              parity_symbols ||
          word.erasures_corrected > word.erasures_supplied) {
        claim_violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Simplex guarantee: ground-truth damage within the bound MUST decode,
    // and to the right data. (Not asserted for duplex words: erasure
    // masking can import a symbol from the other module, so per-module
    // damage does not bound the decoded word's error pattern.)
    if (record.word_count == 1) {
      const WordObservation& word = record.words[0];
      if (word.erased_symbols + 2 * word.corrupted_symbols <=
              parity_symbols &&
          !(record.success && record.data_correct)) {
        guarantee_violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  void expect_clean(std::size_t expected_trials) const {
    EXPECT_EQ(trials_seen.load(), expected_trials);
    EXPECT_EQ(claim_violations.load(), 0u)
        << "a decode claimed corrections beyond er + 2*re <= n - k";
    EXPECT_EQ(guarantee_violations.load(), 0u)
        << "a within-bound pattern failed to decode to the stored data";
  }
};

double simplex_prediction(unsigned n, double seu_per_hour,
                          double perm_per_hour) {
  models::SimplexParams params;
  params.n = n;
  params.k = 16;
  params.m = 8;
  params.seu_rate_per_bit_hour = seu_per_hour;
  params.erasure_rate_per_symbol_hour = perm_per_hour;
  const std::vector<double> times{kHours};
  return models::simplex_ber_curve(params, times,
                                   markov::UniformizationSolver{})
      .fail_probability[0];
}

double duplex_prediction(double seu_per_hour, double perm_per_hour,
                         models::RateConvention convention,
                         models::FailCriterion criterion) {
  models::DuplexParams params;
  params.n = 18;
  params.k = 16;
  params.m = 8;
  params.seu_rate_per_bit_hour = seu_per_hour;
  params.erasure_rate_per_symbol_hour = perm_per_hour;
  params.convention = convention;
  params.fail_criterion = criterion;
  const std::vector<double> times{kHours};
  return models::duplex_ber_curve(params, times,
                                  markov::UniformizationSolver{})
      .fail_probability[0];
}

// ---- Simplex RS(36,16) ----

TEST(DifferentialMc, SimplexRs3616PermanentWilsonCoverage) {
  // Permanent faults are exact at the chain's symbol granularity (sticking
  // a second bit of an erased symbol changes nothing), so the 200k-trial
  // Wilson interval must cover the chain prediction outright.
  const double perm_per_hour = 0.30 / 24.0;
  memory::SimplexSystemConfig cfg;
  cfg.code = rs::CodeParams{36, 16, 8, 1};
  cfg.rates.perm_rate_per_symbol_hour = perm_per_hour;

  MonteCarloConfig mc;
  mc.trials = kTrials;
  mc.t_end_hours = kHours;
  mc.seed = kSeed;
  BoundMonitor monitor{cfg.code.n - cfg.code.k};
  monitor.install(mc);

  const MonteCarloResult sim = run_simplex_trials(cfg, mc);
  monitor.expect_clean(mc.trials);

  const double predicted = simplex_prediction(36, 0.0, perm_per_hour);
  EXPECT_GT(predicted, 0.05);  // acceleration makes failures observable
  EXPECT_GT(sim.failure.failures, 10000u);
  EXPECT_TRUE(sim.failure.covers(predicted))
      << "MC " << sim.failure.p_hat() << " CI [" << sim.failure.wilson_low()
      << ", " << sim.failure.wilson_high() << "] vs Markov " << predicted;
}

TEST(DifferentialMc, SimplexRs3616SeuChainIsConservativelyTight) {
  // RS(36,16) fails only after ~11 corrupted symbols, so any observable
  // failure rate needs enough SEU fluence that some flips land on already
  // flipped bits and cancel. The chain does not model cancellation, so it
  // must over-predict -- but only by a bounded margin. Both sides of that
  // gap are pinned: a decoder or injector regression that makes the
  // functional system MORE failure-prone than the chain, or drifts the gap
  // beyond the cancellation physics, trips this test.
  const double seu_per_hour = 0.010 / 24.0;
  memory::SimplexSystemConfig cfg;
  cfg.code = rs::CodeParams{36, 16, 8, 1};
  cfg.rates.seu_rate_per_bit_hour = seu_per_hour;

  MonteCarloConfig mc;
  mc.trials = kTrials;
  mc.t_end_hours = kHours;
  mc.seed = kSeed;
  BoundMonitor monitor{cfg.code.n - cfg.code.k};
  monitor.install(mc);

  const MonteCarloResult sim = run_simplex_trials(cfg, mc);
  monitor.expect_clean(mc.trials);

  const double predicted = simplex_prediction(36, seu_per_hour, 0.0);
  EXPECT_GT(predicted, 0.005);
  EXPECT_GT(sim.failure.failures, 1000u);
  EXPECT_LT(sim.failure.wilson_high(), predicted)
      << "the chain stopped being conservative: MC " << sim.failure.p_hat()
      << " vs Markov " << predicted;
  EXPECT_LT(predicted, 1.3 * sim.failure.wilson_high())
      << "chain/simulator gap grew beyond the cancellation margin";
}

// ---- Simplex RS(18,16) at accelerated SEU rates ----

TEST(DifferentialMc, SimplexRs1816SeuWilsonCoverage) {
  // Low-fluence regime: RS(18,16) fails at 2 corrupted symbols, so the
  // accelerated rate keeps the mean fluence near one upset per word and
  // same-bit cancellation is negligible. Here the Wilson interval must
  // cover the chain exactly even at 200k trials.
  const double seu_per_hour = 1.2e-3 / 24.0;
  memory::SimplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = seu_per_hour;

  MonteCarloConfig mc;
  mc.trials = kTrials;
  mc.t_end_hours = kHours;
  mc.seed = kSeed;
  BoundMonitor monitor{cfg.code.n - cfg.code.k};
  monitor.install(mc);

  const MonteCarloResult sim = run_simplex_trials(cfg, mc);
  monitor.expect_clean(mc.trials);

  const double predicted = simplex_prediction(18, seu_per_hour, 0.0);
  EXPECT_GT(predicted, 0.01);
  EXPECT_GT(sim.failure.failures, 5000u);
  EXPECT_TRUE(sim.failure.covers(predicted))
      << "MC " << sim.failure.p_hat() << " CI [" << sim.failure.wilson_low()
      << ", " << sim.failure.wilson_high() << "] vs Markov " << predicted;
}

// ---- Duplex RS(18,16) ----

TEST(DifferentialMc, DuplexRs1816PermanentWilsonCoverage) {
  // With permanent faults both words see the same erasure damage, so the
  // paper's fail criterion and the both-words-lost criterion coincide and
  // the chain (per-physical-symbol convention: the functional system
  // exposes each physical symbol to its own fault stream) must be covered
  // by the Wilson interval.
  const double perm_per_hour = 0.192 / 24.0;
  memory::DuplexSystemConfig cfg;
  cfg.rates.perm_rate_per_symbol_hour = perm_per_hour;

  MonteCarloConfig mc;
  mc.trials = kTrials;
  mc.t_end_hours = kHours;
  mc.seed = kSeed;
  BoundMonitor monitor{cfg.code.n - cfg.code.k};
  monitor.install(mc);

  const MonteCarloResult sim = run_duplex_trials(cfg, mc);
  monitor.expect_clean(mc.trials);

  const double predicted = duplex_prediction(
      0.0, perm_per_hour, models::RateConvention::kPerPhysicalSymbol,
      models::FailCriterion::kAnyWordUnrecoverable);
  const double both_lost = duplex_prediction(
      0.0, perm_per_hour, models::RateConvention::kPerPhysicalSymbol,
      models::FailCriterion::kBothWordsUnrecoverable);
  EXPECT_NEAR(predicted, both_lost, 1e-12);  // criteria coincide
  EXPECT_GT(predicted, 0.1);
  EXPECT_TRUE(sim.failure.covers(predicted))
      << "MC " << sim.failure.p_hat() << " CI [" << sim.failure.wilson_low()
      << ", " << sim.failure.wilson_high() << "] vs Markov " << predicted;
}

TEST(DifferentialMc, DuplexRs1816SeuStrictlyInsideCriteriaBracket) {
  // SEU-only duplex: the Wilson interval must land STRICTLY inside the
  // (both-words-lost, either-word-lost) bracket -- at 200k trials the
  // interval is tight enough to resolve both gaps, so this pins the
  // arbiter's discrimination behaviour from both sides: surviving one lost
  // word (below the paper criterion) while occasionally losing a
  // flag-comparison to a mis-correcting word (above the both-lost floor).
  const double seu_per_hour = 2.9e-3 / 24.0;
  memory::DuplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = seu_per_hour;

  MonteCarloConfig mc;
  mc.trials = kTrials;
  mc.t_end_hours = kHours;
  mc.seed = kSeed;
  BoundMonitor monitor{cfg.code.n - cfg.code.k};
  monitor.install(mc);

  const MonteCarloResult sim = run_duplex_trials(cfg, mc);
  monitor.expect_clean(mc.trials);

  const double conservative = duplex_prediction(
      seu_per_hour, 0.0, models::RateConvention::kPaper,
      models::FailCriterion::kAnyWordUnrecoverable);
  const double optimistic = duplex_prediction(
      seu_per_hour, 0.0, models::RateConvention::kPaper,
      models::FailCriterion::kBothWordsUnrecoverable);
  EXPECT_GT(conservative, 0.1);
  EXPECT_LT(optimistic, conservative);
  EXPECT_GT(sim.failure.failures, 5000u);
  EXPECT_GT(sim.failure.wilson_low(), optimistic)
      << "arbiter stopped losing any flag comparisons: MC "
      << sim.failure.p_hat() << " vs both-lost " << optimistic;
  EXPECT_LT(sim.failure.wilson_high(), conservative)
      << "arbiter stopped surviving single lost words: MC "
      << sim.failure.p_hat() << " vs either-lost " << conservative;
}

// ---- batched trial planes vs the per-trial path -------------------------

// Every MonteCarloResult field compared exactly: the batched
// gather/decode/scatter path must reproduce the per-trial path bit-for-bit
// for every {threads, chunk_trials, batch_trials} combination — the same
// invariance contract the campaign engine already gives for threads/chunks,
// extended to the batch width. Scrubbing is ON so per-trial event
// processing (whose decodes stay per-word inside advance_to) interleaves
// with the batched final reads.
void expect_same_result(const MonteCarloResult& got,
                        const MonteCarloResult& want, const char* tag,
                        std::size_t value) {
  EXPECT_EQ(got.failure.trials, want.failure.trials) << tag << value;
  EXPECT_EQ(got.failure.failures, want.failure.failures) << tag << value;
  EXPECT_EQ(got.mean_seu_per_trial, want.mean_seu_per_trial) << tag << value;
  EXPECT_EQ(got.mean_permanent_per_trial, want.mean_permanent_per_trial)
      << tag << value;
  EXPECT_EQ(got.scrub_failures, want.scrub_failures) << tag << value;
  EXPECT_EQ(got.scrub_miscorrections, want.scrub_miscorrections)
      << tag << value;
  EXPECT_EQ(got.no_output_failures, want.no_output_failures) << tag << value;
  EXPECT_EQ(got.wrong_data_failures, want.wrong_data_failures)
      << tag << value;
}

TEST(DifferentialMc, BatchedSimplexInvariantAcrossWidthsThreadsChunks) {
  memory::SimplexSystemConfig cfg;
  cfg.code = rs::CodeParams{36, 16, 8, 1};
  cfg.rates.seu_rate_per_bit_hour = 2.0 / 24.0;
  cfg.rates.perm_rate_per_symbol_hour = 0.3 / 24.0;
  cfg.scrub_policy = memory::ScrubPolicy::kPeriodic;
  cfg.scrub_period_hours = 12.0;

  MonteCarloConfig mc;
  mc.trials = 12000;
  mc.t_end_hours = kHours;
  mc.seed = kSeed + 1;
  mc.threads = 1;
  mc.batch_trials = 1;  // per-trial read() control
  const MonteCarloResult want = run_simplex_trials(cfg, mc);
  ASSERT_GT(want.failure.failures, 100u);
  ASSERT_GT(want.scrub_failures, 0u);

  for (const std::size_t width : {std::size_t{3}, std::size_t{64},
                                  std::size_t{1000}}) {
    mc.batch_trials = width;
    expect_same_result(run_simplex_trials(cfg, mc), want, "width=", width);
  }
  mc.batch_trials = 0;  // default width
  for (const unsigned threads : {2u, 5u}) {
    mc.threads = threads;
    expect_same_result(run_simplex_trials(cfg, mc), want,
                       "default width, threads=", threads);
  }
  mc.threads = 3;
  for (const std::size_t chunk : {std::size_t{37}, std::size_t{4096}}) {
    mc.chunk_trials = chunk;
    expect_same_result(run_simplex_trials(cfg, mc), want,
                       "default width, 3 threads, chunk=", chunk);
  }
}

TEST(DifferentialMc, BatchedDuplexInvariantAcrossWidthsThreadsChunks) {
  memory::DuplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 2.9e-3 / 24.0;
  cfg.rates.perm_rate_per_symbol_hour = 0.15 / 24.0;
  cfg.scrub_policy = memory::ScrubPolicy::kExponential;
  cfg.scrub_period_hours = 16.0;

  MonteCarloConfig mc;
  mc.trials = 20000;
  mc.t_end_hours = kHours;
  mc.seed = kSeed + 2;
  mc.threads = 1;
  mc.batch_trials = 1;
  const MonteCarloResult want = run_duplex_trials(cfg, mc);
  ASSERT_GT(want.failure.failures, 100u);

  for (const std::size_t width : {std::size_t{5}, std::size_t{64}}) {
    mc.batch_trials = width;
    expect_same_result(run_duplex_trials(cfg, mc), want, "width=", width);
  }
  mc.batch_trials = 0;
  mc.threads = 4;
  mc.chunk_trials = 511;
  expect_same_result(run_duplex_trials(cfg, mc), want,
                     "default width, 4 threads, chunk=", 511);
}

}  // namespace
}  // namespace rsmem::analysis
