// Resilience battery for chaos-hardened rsmem-serve (ctest label `chaos`;
// tools/run_sanitizers.sh runs it under ASan and both TSan queue builds):
//   * RetryPolicy/Backoff: deterministic decorrelated-jitter schedules,
//     typed retry exhaustion, deadline-budget enforcement;
//   * hedged attempts: the hedge lane wins when the primary goes silent,
//     and the losing lane is cancelled, not leaked;
//   * chaos shim end-to-end: accept failures are retried to success;
//   * brown-out: misses shed with a typed kBrownout + retry-after hint
//     while cache hits are served inline and the watchdog reports stalls;
//   * server hardening: per-connection frame-rate limits, max-frame
//     rejection, and the idle reaper — each typed, never a silent drop;
//   * crash-safe warm start: snapshot -> restart -> byte-identical hits;
//     corrupt snapshot -> cold start, never a crash;
//   * the chaos campaign itself: passes, and its report is deterministic
//     for a fixed seed.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/chaos.h"
#include "service/chaos_campaign.h"
#include "service/client.h"
#include "service/endpoint.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "service/server.h"

namespace rsmem::service {
namespace {

Endpoint chaos_test_endpoint(const char* tag) {
  return Endpoint::unix_socket("/tmp/rsmem-chaos-test-" + std::string(tag) +
                               "-" + std::to_string(::getpid()) + ".sock");
}

Request ping_request() {
  Request request;
  request.kind = RequestKind::kPing;
  return request;
}

// A deliberately expensive analysis request: 16 transient points of the
// paper's duplex RS(18,16) system. `variant` varies the time grid so each
// variant is a distinct cache key.
Request heavy_request(unsigned variant) {
  Request request;
  request.kind = RequestKind::kBer;
  request.spec.arrangement = analysis::Arrangement::kDuplex;
  request.spec.code = {18, 16, 8, 1};
  request.spec.seu_rate_per_bit_day = 1e-2;
  request.spec.scrub_period_seconds = 3600.0;
  for (int point = 0; point < 16; ++point) {
    request.times_hours.push_back(6.0 * point + variant);
  }
  return request;
}

RetryPolicy fast_retry_policy(std::uint64_t seed) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_ms = 0.2;
  policy.max_backoff_ms = 2.0;
  policy.seed = seed;
  return policy;
}

core::Result<Json> server_stats(const Endpoint& endpoint) {
  auto connected = Client::connect(endpoint);
  if (!connected.ok()) return connected.status();
  (void)connected.value().set_receive_timeout(5000);
  Request request;
  request.kind = RequestKind::kStats;
  auto called = connected.value().call(request);
  if (!called.ok()) return called.status();
  if (!called.value().status.is_ok()) return called.value().status;
  return Json::parse(called.value().result_json);
}

// ---------------------------------------------------------------------------
// RetryPolicy / Backoff.

TEST(RetryBackoff, SameSeedReplaysSameSchedule) {
  RetryPolicy policy;
  policy.base_backoff_ms = 5.0;
  policy.max_backoff_ms = 100.0;
  policy.backoff_multiplier = 3.0;
  policy.seed = 42;
  Backoff first(policy);
  Backoff second(policy);
  bool saw_variation = false;
  double previous = -1.0;
  for (int draw = 0; draw < 32; ++draw) {
    const double a = first.next_ms();
    const double b = second.next_ms();
    EXPECT_EQ(a, b) << "draw " << draw;  // exact: same stream, same draw
    EXPECT_GE(a, policy.base_backoff_ms);
    EXPECT_LE(a, policy.max_backoff_ms);
    if (previous >= 0.0 && a != previous) saw_variation = true;
    previous = a;
  }
  // Jitter must actually jitter — a constant schedule synchronizes
  // retrying clients into thundering herds.
  EXPECT_TRUE(saw_variation);

  RetryPolicy reseeded = policy;
  reseeded.seed = 43;
  Backoff other(reseeded);
  Backoff replay(policy);
  bool differs = false;
  for (int draw = 0; draw < 8 && !differs; ++draw) {
    differs = other.next_ms() != replay.next_ms();
  }
  EXPECT_TRUE(differs) << "seed is not feeding the jitter stream";
}

TEST(RetryBackoff, RetryableClassification) {
  EXPECT_TRUE(status_is_retryable(core::Status::internal("broken pipe")));
  EXPECT_TRUE(status_is_retryable(core::Status::overloaded("queue full")));
  EXPECT_TRUE(status_is_retryable(core::Status::brownout("come back")));
  EXPECT_FALSE(status_is_retryable(core::Status::ok()));
  EXPECT_FALSE(status_is_retryable(core::Status::invalid_config("bad n")));
  EXPECT_FALSE(
      status_is_retryable(core::Status::deadline_exceeded("too late")));
  EXPECT_FALSE(status_is_retryable(core::Status::retry_exhausted("gave up")));
}

TEST(ResilientClientRetry, DeadEndpointExhaustsTypedNotSilently) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 0.1;
  policy.max_backoff_ms = 0.3;
  ResilientClient client(
      Endpoint::unix_socket("/tmp/rsmem-chaos-test-no-such-daemon.sock"),
      policy);
  const auto result = client.call(ping_request());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kRetryExhausted);
  // The terminal status names the attempt count and carries the last
  // underlying error — enough to act on without log spelunking.
  EXPECT_NE(result.status().message().find("3 attempt"), std::string::npos)
      << result.status().message();
  EXPECT_EQ(client.counters().attempts, 3u);
  EXPECT_EQ(client.counters().retries, 2u);
}

TEST(ResilientClientRetry, BudgetStopsRetriesWithDeadlineExceeded) {
  RetryPolicy policy;
  policy.max_attempts = 100;           // budget, not attempts, must stop it
  policy.base_backoff_ms = 30.0;
  policy.max_backoff_ms = 50.0;
  policy.budget_ms = 25.0;             // first backoff sleep would overrun
  ResilientClient client(
      Endpoint::unix_socket("/tmp/rsmem-chaos-test-no-such-daemon.sock"),
      policy);
  const auto start = std::chrono::steady_clock::now();
  const auto result = client.call(ping_request());
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_GE(client.counters().budget_exhausted, 1u);
  // It stopped BEFORE sleeping past the budget, not after.
  EXPECT_LT(elapsed_ms, 1000.0);
}

// ---------------------------------------------------------------------------
// Chaos shim end-to-end: injected accept failures are survived by retry.

TEST(ChaosTransport, AcceptFailuresAreRetriedToSuccess) {
  chaos::ChaosPolicy faulty;
  faulty.seed = 2005;
  faulty.accept_fail = 0.5;
  auto engine = std::make_shared<chaos::ChaosEngine>(faulty);
  ServerConfig config;
  config.endpoint = chaos_test_endpoint("accept");
  config.router.shards = 1;
  config.chaos = engine;
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();

  ResilientClient client(started.value()->endpoint(), fast_retry_policy(1));
  client.set_receive_timeout(5000);
  for (int call = 0; call < 8; ++call) {
    const auto result = client.call(ping_request());
    ASSERT_TRUE(result.ok()) << call << ": " << result.status().to_string();
    EXPECT_TRUE(result.value().status.is_ok());
  }
  // The shim actually fired — these pings survived real resets.
  EXPECT_GE(engine->counters().accept_failures, 1u);
  EXPECT_GE(client.counters().reconnects, 1u);
}

// ---------------------------------------------------------------------------
// Hedging: a silent primary is beaten by the hedge lane; the loser is
// cancelled (its blocked read unwinds) instead of leaking.

TEST(ResilientClientHedging, HedgeLaneWinsWhenPrimaryIsSilent) {
  const Endpoint endpoint = chaos_test_endpoint("hedge");
  auto listening = listen_on(endpoint, 4);
  ASSERT_TRUE(listening.ok()) << listening.status().to_string();
  const int listen_fd = listening.value();

  // A hand-rolled server that starves the FIRST connection (accepts it,
  // never answers) and serves the SECOND — the deterministic worst case
  // hedging exists for.
  std::thread server([listen_fd] {
    const int starved = ::accept(listen_fd, nullptr, nullptr);
    const int served = ::accept(listen_fd, nullptr, nullptr);
    if (served >= 0) {
      const auto frame = read_frame(served);
      if (frame.ok() && !frame.value().eof) {
        const auto request = Request::from_json(frame.value().payload);
        Response response;
        response.id = request.ok() ? request.value().id : 0;
        response.status = core::Status::ok();
        (void)write_frame(served, response.to_json());
      }
      ::close(served);
    }
    if (starved >= 0) ::close(starved);
  });

  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.hedge_after_ms = 20.0;
  ResilientClient client(endpoint, policy);
  client.set_receive_timeout(5000);
  const auto result = client.call(ping_request());
  server.join();
  ::close(listen_fd);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().status.is_ok());
  EXPECT_EQ(client.counters().hedges, 1u);
  EXPECT_EQ(client.counters().hedge_wins, 1u);
}

// ---------------------------------------------------------------------------
// Brown-out + watchdog (scheduler level).

TEST(SchedulerBrownout, ShedsMissesTypedAndServesHitsInline) {
  SchedulerConfig config;
  config.threads = 1;
  config.max_queue = 8;  // derived watermarks: enter 6, exit 2
  config.batch_max = 4;
  config.cache_capacity = 64;
  AnalysisScheduler scheduler(config);

  // Warm one key the normal way, so a brown-out has a hit to serve.
  const Request warm = heavy_request(1000);
  const Response warmed = scheduler.execute(warm);
  ASSERT_TRUE(warmed.status.is_ok()) << warmed.status.to_string();

  // Flood with distinct misses: one worker cannot drain 16-point duplex
  // solves as fast as submit() offers them, so in-flight depth crosses
  // the enter watermark while the flood is still being offered.
  std::atomic<int> answered{0};
  std::uint64_t shed = 0;
  std::uint64_t accepted = 0;
  const int kFlood = 64;
  for (int i = 0; i < kFlood; ++i) {
    const core::Status admitted = scheduler.submit(
        heavy_request(static_cast<unsigned>(i)),
        [&answered](Response) { answered.fetch_add(1); });
    if (admitted.is_ok()) {
      ++accepted;
    } else {
      // Sheds must be TYPED, and the brown-out flavor carries the
      // retry-after hint the client's backoff acts on.
      ASSERT_TRUE(admitted.code() == core::StatusCode::kBrownout ||
                  admitted.code() == core::StatusCode::kOverloaded)
          << admitted.to_string();
      if (admitted.code() == core::StatusCode::kBrownout) {
        ++shed;
        EXPECT_NE(admitted.message().find("retry"), std::string::npos)
            << admitted.to_string();
      }
    }
  }
  EXPECT_GE(shed, 1u) << "flood never engaged the brown-out";

  // While the shard is still browned out, the warmed key must be answered
  // INLINE from submit() — degradation sheds work, not answers.
  std::atomic<bool> hit_answered{false};
  Response hit_response;
  const core::Status hit_admitted =
      scheduler.submit(warm, [&](Response response) {
        hit_response = std::move(response);
        hit_answered.store(true);
      });
  ASSERT_TRUE(hit_admitted.is_ok()) << hit_admitted.to_string();
  ASSERT_TRUE(hit_answered.load())
      << "cache hit was queued instead of served inline during brown-out";
  EXPECT_TRUE(hit_response.status.is_ok());
  EXPECT_EQ(hit_response.result_json, warmed.result_json);

  scheduler.stop();  // drains: every accepted flood callback fires exactly
                     // once (the warm hit used its own callback above)
  EXPECT_EQ(static_cast<std::uint64_t>(answered.load()), accepted);
  const AnalysisScheduler::Stats stats = scheduler.stats();
  EXPECT_GE(stats.brownout_entries, 1u);
  EXPECT_EQ(stats.brownout_shed, shed);
  EXPECT_GE(stats.brownout_hits, 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(kFlood) + 1,
            stats.accepted + stats.brownout_shed + stats.rejected_overload);
}

TEST(SchedulerWatchdog, SurfacesStallWhileInFlightAndClearsWhenIdle) {
  SchedulerConfig config;
  config.threads = 1;
  config.max_queue = 64;
  config.watchdog_stall_ms = 0.0001;  // any in-flight instant counts
  AnalysisScheduler scheduler(config);
  std::atomic<int> answered{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler
                    .submit(heavy_request(static_cast<unsigned>(i)),
                            [&answered](Response) { answered.fetch_add(1); })
                    .is_ok());
  }
  bool observed_stuck = false;
  for (int poll = 0; poll < 20000 && answered.load() < 8; ++poll) {
    const AnalysisScheduler::Stats stats = scheduler.stats();
    if (stats.stuck) {
      observed_stuck = true;
      EXPECT_GT(stats.stalled_ms, 0.0);
      EXPECT_GT(stats.in_flight, 0u);
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  EXPECT_TRUE(observed_stuck)
      << "watchdog never reported the busy shard as stalled";
  scheduler.stop();
  const AnalysisScheduler::Stats idle = scheduler.stats();
  EXPECT_FALSE(idle.stuck);  // stall is a live condition, not a latch
  EXPECT_EQ(idle.stalled_ms, 0.0);
}

// ---------------------------------------------------------------------------
// Server hardening, end to end.

TEST(ServerHardening, FrameRateLimitIsTypedAndKeepsTheConnection) {
  ServerConfig config;
  config.endpoint = chaos_test_endpoint("rate");
  config.router.shards = 1;
  config.max_frames_per_second = 2.0;  // burst of 2, then ~0 refill
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto connected = Client::connect(started.value()->endpoint());
  ASSERT_TRUE(connected.ok());
  (void)connected.value().set_receive_timeout(5000);

  int ok = 0, limited = 0;
  for (int call = 0; call < 6; ++call) {
    Request request = ping_request();
    request.id = static_cast<std::uint64_t>(call) + 1;
    const auto result = connected.value().call(request);
    // Every call gets a response on the SAME connection: the rejection
    // echoes the request id, so the stream never desynchronizes.
    ASSERT_TRUE(result.ok()) << call << ": " << result.status().to_string();
    EXPECT_EQ(result.value().id, request.id);
    if (result.value().status.is_ok()) {
      ++ok;
    } else {
      ASSERT_EQ(result.value().status.code(), core::StatusCode::kOverloaded);
      EXPECT_NE(result.value().status.message().find("frame rate"),
                std::string::npos)
          << result.value().status.to_string();
      ++limited;
    }
  }
  EXPECT_GE(ok, 2);       // the burst allowance
  EXPECT_GE(limited, 1);  // the ceiling engaged
  EXPECT_EQ(ok + limited, 6);
  const auto stats = server_stats(started.value()->endpoint());
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_GE(stats.value().number_or("rate_limited", 0), 1.0);
}

TEST(ServerHardening, OversizedFrameTypedRejectThenClose) {
  ServerConfig config;
  config.endpoint = chaos_test_endpoint("maxframe");
  config.router.shards = 1;
  config.max_frame_bytes = 256;
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto connected = Client::connect(started.value()->endpoint());
  ASSERT_TRUE(connected.ok());
  (void)connected.value().set_receive_timeout(5000);

  Request oversized = heavy_request(0);
  for (int point = 0; point < 64; ++point) {
    oversized.times_hours.push_back(1000.0 + point);  // payload >> 256 B
  }
  const auto result = connected.value().call(oversized);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result.value().status.code(), core::StatusCode::kInvalidConfig);
  // The stream cannot resync past an unread oversized body, so the server
  // closes after the typed reply; the NEXT call fails at transport level.
  const auto after = connected.value().call(ping_request());
  EXPECT_FALSE(after.ok());
  const auto stats = server_stats(started.value()->endpoint());
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().number_or("oversized_frames", 0), 1.0);
  // A frame under the cap still works on a fresh connection.
  auto again = Client::connect(started.value()->endpoint());
  ASSERT_TRUE(again.ok());
  const auto small = again.value().call(ping_request());
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small.value().status.is_ok());
}

TEST(ServerHardening, IdleReaperFreesQuietConnections) {
  ServerConfig config;
  config.endpoint = chaos_test_endpoint("reaper");
  config.router.shards = 1;
  config.idle_timeout_ms = 50.0;
  auto started = Server::start(config);
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  auto idler = Client::connect(started.value()->endpoint());
  ASSERT_TRUE(idler.ok());
  (void)idler.value().set_receive_timeout(5000);
  const auto first = idler.value().call(ping_request());
  ASSERT_TRUE(first.ok());

  // Go quiet and wait for the reaper to notice (poll the stats plane
  // through fresh, promptly-used connections).
  bool reaped = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!reaped && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    const auto stats = server_stats(started.value()->endpoint());
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    reaped = stats.value().number_or("idle_reaped", 0) >= 1.0;
  }
  EXPECT_TRUE(reaped) << "idle connection was never reaped";
  // The reaped connection is actually dead from the client's side.
  const auto after = idler.value().call(ping_request());
  EXPECT_FALSE(after.ok());
}

// ---------------------------------------------------------------------------
// Crash-safe warm start, end to end.

class WarmStartTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!snapshot_path_.empty()) std::remove(snapshot_path_.c_str());
  }
  std::string snapshot_path_;
};

TEST_F(WarmStartTest, RestartServesIdenticalBytesAsCacheHits) {
  snapshot_path_ = "/tmp/rsmem-chaos-test-warm-" +
                   std::to_string(::getpid()) + ".snap";
  std::remove(snapshot_path_.c_str());
  ServerConfig config;
  config.endpoint = chaos_test_endpoint("warm-a");
  config.router.shards = 2;
  config.snapshot_path = snapshot_path_;

  std::vector<std::string> expected;
  {
    auto started = Server::start(config);
    ASSERT_TRUE(started.ok()) << started.status().to_string();
    auto connected = Client::connect(started.value()->endpoint());
    ASSERT_TRUE(connected.ok());
    for (unsigned variant = 0; variant < 3; ++variant) {
      const auto result = connected.value().call(heavy_request(variant));
      ASSERT_TRUE(result.ok());
      ASSERT_TRUE(result.value().status.is_ok());
      expected.push_back(result.value().result_json);
    }
    started.value()->shutdown();  // drain + snapshot
  }

  // Restart — different socket and DIFFERENT shard count: snapshot
  // entries re-route to whichever shard owns them now.
  config.endpoint = chaos_test_endpoint("warm-b");
  config.router.shards = 1;
  auto restarted = Server::start(config);
  ASSERT_TRUE(restarted.ok()) << restarted.status().to_string();
  EXPECT_GE(restarted.value()->cache_stats().warm_loads, 3u);
  const auto stats = server_stats(restarted.value()->endpoint());
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().number_or("warm_start_entries", 0), 3.0);
  EXPECT_EQ(stats.value().string_or("warm_start_error", "x"), "");

  auto connected = Client::connect(restarted.value()->endpoint());
  ASSERT_TRUE(connected.ok());
  for (unsigned variant = 0; variant < 3; ++variant) {
    const auto result = connected.value().call(heavy_request(variant));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result.value().status.is_ok());
    // Warmed keys HIT — the restart recomputed nothing — and the bytes
    // are identical to the pre-restart answers.
    EXPECT_EQ(result.value().cache, CacheSource::kHit) << variant;
    EXPECT_EQ(result.value().result_json, expected[variant]) << variant;
  }
}

TEST_F(WarmStartTest, CorruptSnapshotColdStartsAndSurfacesTheError) {
  snapshot_path_ = "/tmp/rsmem-chaos-test-corrupt-" +
                   std::to_string(::getpid()) + ".snap";
  {
    std::ofstream out(snapshot_path_, std::ios::binary | std::ios::trunc);
    out << "RSMSgarbage-not-a-valid-snapshot-body";
  }
  ServerConfig config;
  config.endpoint = chaos_test_endpoint("cold");
  config.router.shards = 1;
  config.snapshot_path = snapshot_path_;
  auto started = Server::start(config);  // must not crash or refuse
  ASSERT_TRUE(started.ok()) << started.status().to_string();
  const auto stats = server_stats(started.value()->endpoint());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().number_or("warm_start_entries", -1), 0.0);
  // The corruption is SURFACED (ops can see it), just not fatal.
  EXPECT_NE(stats.value().string_or("warm_start_error", ""), "");
  auto connected = Client::connect(started.value()->endpoint());
  ASSERT_TRUE(connected.ok());
  const auto result = connected.value().call(heavy_request(0));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().status.is_ok());
}

// ---------------------------------------------------------------------------
// The campaign itself: it passes, and its report is byte-deterministic
// for a fixed seed (the acceptance bar `rsmem_cli chaos` is held to).

TEST(ChaosCampaign, SmokePassesAndReportIsDeterministic) {
  ChaosCampaignConfig config;
  config.seed = 11;
  config.requests_per_scenario = 6;
  config.distinct = 2;
  const auto first = run_chaos_campaign(config);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_TRUE(first.value().passed())
      << format_chaos_report(config, first.value());
  EXPECT_EQ(first.value().scenarios.size(), 16u);
  EXPECT_EQ(first.value().timeouts, 0u);
  EXPECT_EQ(first.value().mismatches, 0u);

  const auto second = run_chaos_campaign(config);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(format_chaos_report(config, first.value()),
            format_chaos_report(config, second.value()));
}

TEST(ChaosCampaign, RejectsNonsensicalConfig) {
  ChaosCampaignConfig config;
  config.requests_per_scenario = 0;
  const auto result = run_chaos_campaign(config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidConfig);
}

}  // namespace
}  // namespace rsmem::service
