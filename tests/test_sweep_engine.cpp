// Equivalence tests for the parallel sweep engine: the cached/parallel
// path must reproduce the legacy serial per-point path for every figure
// workload of the paper, identically across thread counts, and the chain
// cache's replayed generators must be bitwise equal to direct builds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "analysis/code_search.h"
#include "analysis/experiment.h"
#include "models/chain_cache.h"
#include "models/duplex_model.h"
#include "models/simplex_model.h"

namespace rsmem::analysis {
namespace {

constexpr SweepOptions kLegacy{1, false};
constexpr SweepOptions kEngine1{1, true};
constexpr SweepOptions kEngine4{4, true};

double max_rel_diff(const std::vector<Series>& a,
                    const std::vector<Series>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t s = 0; s < a.size() && s < b.size(); ++s) {
    EXPECT_EQ(a[s].label, b[s].label);
    EXPECT_EQ(a[s].x, b[s].x);
    EXPECT_EQ(a[s].y.size(), b[s].y.size());
    for (std::size_t i = 0; i < a[s].y.size() && i < b[s].y.size(); ++i) {
      const double scale =
          std::max({std::fabs(a[s].y[i]), std::fabs(b[s].y[i]), 1e-300});
      worst = std::max(worst, std::fabs(a[s].y[i] - b[s].y[i]) / scale);
    }
  }
  return worst;
}

void expect_bitwise(const std::vector<Series>& a,
                    const std::vector<Series>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].label, b[s].label);
    EXPECT_EQ(a[s].x, b[s].x);
    EXPECT_EQ(a[s].y, b[s].y) << "series=" << a[s].label;
  }
}

// Reduced point counts vs the figure benches (25): the equivalence is per
// point, so 7 points per curve exercise the same code paths in a fraction
// of the time.
constexpr std::size_t kPoints = 7;
constexpr double kSeuRates[] = {1.7e-5, 3.6e-6, 7.3e-7};
constexpr double kPermRates[] = {1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10};
constexpr double kScrubPeriods[] = {900.0, 1200.0, 1800.0, 3600.0};

TEST(SweepEngine, Fig5SimplexSeuMatchesLegacy) {
  const CodeSpec code{18, 16, 8};
  const auto legacy = seu_rate_sweep(Arrangement::kSimplex, code, kSeuRates,
                                     48.0, kPoints, kLegacy);
  const auto engine = seu_rate_sweep(Arrangement::kSimplex, code, kSeuRates,
                                     48.0, kPoints, kEngine4);
  EXPECT_LE(max_rel_diff(legacy, engine), 1e-12);
}

TEST(SweepEngine, Fig6DuplexSeuMatchesLegacy) {
  const CodeSpec code{18, 16, 8};
  const auto legacy = seu_rate_sweep(Arrangement::kDuplex, code, kSeuRates,
                                     48.0, kPoints, kLegacy);
  const auto engine = seu_rate_sweep(Arrangement::kDuplex, code, kSeuRates,
                                     48.0, kPoints, kEngine4);
  EXPECT_LE(max_rel_diff(legacy, engine), 1e-12);
}

TEST(SweepEngine, Fig7DuplexScrubbingMatchesLegacy) {
  const CodeSpec code{18, 16, 8};
  const auto legacy = scrub_period_sweep(Arrangement::kDuplex, code, 1.7e-5,
                                         kScrubPeriods, 48.0, kPoints, kLegacy);
  const auto engine = scrub_period_sweep(Arrangement::kDuplex, code, 1.7e-5,
                                         kScrubPeriods, 48.0, kPoints,
                                         kEngine4);
  EXPECT_LE(max_rel_diff(legacy, engine), 1e-12);
}

TEST(SweepEngine, Fig8And9PermanentMatchesLegacy) {
  const CodeSpec code{18, 16, 8};
  for (const Arrangement arr :
       {Arrangement::kSimplex, Arrangement::kDuplex}) {
    const auto legacy =
        permanent_rate_sweep(arr, code, kPermRates, 24.0, kPoints, kLegacy);
    const auto engine =
        permanent_rate_sweep(arr, code, kPermRates, 24.0, kPoints, kEngine4);
    EXPECT_LE(max_rel_diff(legacy, engine), 1e-12) << to_string(arr);
  }
}

TEST(SweepEngine, Fig10Rs3616PermanentMatchesLegacy) {
  const CodeSpec wide{36, 16, 8};
  const auto legacy = permanent_rate_sweep(Arrangement::kSimplex, wide,
                                           kPermRates, 24.0, kPoints, kLegacy);
  const auto engine = permanent_rate_sweep(Arrangement::kSimplex, wide,
                                           kPermRates, 24.0, kPoints, kEngine4);
  EXPECT_LE(max_rel_diff(legacy, engine), 1e-12);
}

TEST(SweepEngine, ThreadCountDoesNotChangeResults) {
  const CodeSpec code{18, 16, 8};
  const auto one = scrub_period_sweep(Arrangement::kDuplex, code, 1.7e-5,
                                      kScrubPeriods, 48.0, kPoints, kEngine1);
  const auto four = scrub_period_sweep(Arrangement::kDuplex, code, 1.7e-5,
                                       kScrubPeriods, 48.0, kPoints, kEngine4);
  expect_bitwise(one, four);
  const auto perm1 = permanent_rate_sweep(Arrangement::kSimplex, code,
                                          kPermRates, 24.0, kPoints, kEngine1);
  const auto perm4 = permanent_rate_sweep(Arrangement::kSimplex, code,
                                          kPermRates, 24.0, kPoints, kEngine4);
  expect_bitwise(perm1, perm4);
}

TEST(ChainCacheTest, ReplayedChainBitwiseMatchesDirectBuild) {
  models::ChainCache cache;
  models::SimplexParams base;
  base.n = 18;
  base.k = 16;
  base.m = 8;
  base.scrub_rate_per_hour = 4.0;
  // First rate point: a direct build that records the structure.
  base.seu_rate_per_bit_hour = 1e-6;
  const auto first = cache.simplex(base);
  EXPECT_EQ(cache.stats().builds, 1u);
  // Further points with the same zero-pattern: replays.
  for (const double rate : {2e-6, 5e-7, 1.7e-5 / 24.0}) {
    models::SimplexParams p = base;
    p.seu_rate_per_bit_hour = rate;
    const auto cached = cache.simplex(p);
    const markov::StateSpace direct = models::SimplexModel{p}.build();
    ASSERT_EQ(cached->size(), direct.size());
    EXPECT_EQ(cached->states, direct.states);
    EXPECT_EQ(cached->chain.initial_state(), direct.chain.initial_state());
    const linalg::CsrMatrix& a = cached->chain.generator();
    const linalg::CsrMatrix& b = direct.chain.generator();
    ASSERT_EQ(a.nnz(), b.nnz());
    EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                           b.values().begin()));
    EXPECT_TRUE(std::equal(a.col_indices().begin(), a.col_indices().end(),
                           b.col_indices().begin()));
    EXPECT_TRUE(std::equal(a.row_pointers().begin(), a.row_pointers().end(),
                           b.row_pointers().begin()));
  }
  EXPECT_EQ(cache.stats().replays, 3u);
  EXPECT_EQ(cache.stats().replay_fallbacks, 0u);
  // Exactly repeated params short-circuit to the shared memo entry.
  const auto again = cache.simplex(base);
  EXPECT_EQ(again.get(), first.get());
  EXPECT_GE(cache.stats().exact_hits, 1u);
  cache.clear();
  EXPECT_EQ(cache.stats().builds, 0u);
}

TEST(ChainCacheTest, DuplexReplayAndZeroPatternSeparation) {
  models::ChainCache cache;
  models::DuplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = 1e-6;
  cache.duplex(p);
  p.seu_rate_per_bit_hour = 3e-6;
  const auto cached = cache.duplex(p);
  const markov::StateSpace direct = models::DuplexModel{p}.build();
  EXPECT_EQ(cached->states, direct.states);
  const linalg::CsrMatrix& a = cached->chain.generator();
  const linalg::CsrMatrix& b = direct.chain.generator();
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_TRUE(
      std::equal(a.values().begin(), a.values().end(), b.values().begin()));
  EXPECT_EQ(cache.stats().replays, 1u);
  // Turning a rate on changes the reachable set: must be a fresh build,
  // not a replay of the SEU-only structure.
  p.erasure_rate_per_symbol_hour = 1e-7;
  const auto wider = cache.duplex(p);
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_GT(wider->size(), cached->size());
}

TEST(CodeSearch, ParallelEvaluationMatchesSerial) {
  CodeSearchSpec spec;
  spec.base.seu_rate_per_bit_day = 1.7e-5;
  const std::vector<CodeCandidate> candidates = default_candidates(16);
  spec.threads = 1;
  const auto serial = evaluate_candidates(spec, candidates);
  spec.threads = 4;
  const auto parallel = evaluate_candidates(spec, candidates);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].candidate.n, parallel[i].candidate.n);
    EXPECT_EQ(serial[i].candidate.arrangement, parallel[i].candidate.arrangement);
    EXPECT_EQ(serial[i].ber, parallel[i].ber) << "i=" << i;
    EXPECT_EQ(serial[i].storage_overhead, parallel[i].storage_overhead);
    EXPECT_EQ(serial[i].decode_cycles, parallel[i].decode_cycles);
    EXPECT_EQ(serial[i].area_gates, parallel[i].area_gates);
    EXPECT_EQ(serial[i].pareto_efficient, parallel[i].pareto_efficient);
  }
}

}  // namespace
}  // namespace rsmem::analysis
