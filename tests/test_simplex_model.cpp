// Tests for the simplex memory-system Markov chain (paper Fig. 2).
#include "models/simplex_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>

#include "core/units.h"
#include "markov/rk45.h"
#include "markov/uniformization.h"
#include "models/ber.h"

namespace rsmem::models {
namespace {

using markov::PackedState;

SimplexParams base_params() {
  SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  return p;
}

std::map<PackedState, double> transitions_of(const SimplexModel& model,
                                             PackedState from) {
  std::map<PackedState, double> out;
  model.for_each_transition(from, [&](double rate, PackedState to) {
    out[to] += rate;
  });
  return out;
}

TEST(SimplexModel, ValidatesParams) {
  SimplexParams p = base_params();
  p.k = 18;
  EXPECT_THROW(SimplexModel{p}, std::invalid_argument);
  p = base_params();
  p.m = 4;  // n=18 > 2^4-1
  EXPECT_THROW(SimplexModel{p}, std::invalid_argument);
  p = base_params();
  p.seu_rate_per_bit_hour = -1.0;
  EXPECT_THROW(SimplexModel{p}, std::invalid_argument);
}

TEST(SimplexModel, PackUnpackRoundTrip) {
  const PackedState s = SimplexModel::pack(3, 7);
  EXPECT_EQ(SimplexModel::erasures_of(s), 3u);
  EXPECT_EQ(SimplexModel::random_errors_of(s), 7u);
  EXPECT_FALSE(SimplexModel::is_fail(s));
  EXPECT_TRUE(SimplexModel::is_fail(SimplexModel::fail_state()));
}

TEST(SimplexModel, Rs1816StateSpaceIsExactlyFiveStates) {
  // er + 2 re <= 2 admits (0,0), (1,0), (2,0), (0,1); plus Fail.
  SimplexParams p = base_params();
  p.seu_rate_per_bit_hour = 1e-3;
  p.erasure_rate_per_symbol_hour = 1e-3;
  const markov::StateSpace space = SimplexModel{p}.build();
  EXPECT_EQ(space.size(), 5u);
  EXPECT_TRUE(space.contains(SimplexModel::pack(0, 0)));
  EXPECT_TRUE(space.contains(SimplexModel::pack(1, 0)));
  EXPECT_TRUE(space.contains(SimplexModel::pack(2, 0)));
  EXPECT_TRUE(space.contains(SimplexModel::pack(0, 1)));
  EXPECT_TRUE(space.contains(SimplexModel::fail_state()));
}

TEST(SimplexModel, Rs3616StateSpaceSize) {
  // #{(er,re): er + 2re <= 20} = sum_{re=0..10} (21 - 2re) = 121, + Fail.
  SimplexParams p = base_params();
  p.n = 36;
  p.seu_rate_per_bit_hour = 1e-3;
  p.erasure_rate_per_symbol_hour = 1e-3;
  const markov::StateSpace space = SimplexModel{p}.build();
  EXPECT_EQ(space.size(), 122u);
}

TEST(SimplexModel, GoodStateTransitionRates) {
  SimplexParams p = base_params();
  p.seu_rate_per_bit_hour = 2.0;
  p.erasure_rate_per_symbol_hour = 3.0;
  p.scrub_rate_per_hour = 5.0;
  const SimplexModel model{p};
  const auto t = transitions_of(model, SimplexModel::pack(0, 0));
  // From (0,0): SEU -> (0,1) at m*lambda*n = 8*2*18; erasure -> (1,0) at
  // lambda_e*n = 3*18. No scrub self-loop (re == 0).
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.at(SimplexModel::pack(0, 1)), 8.0 * 2.0 * 18.0);
  EXPECT_DOUBLE_EQ(t.at(SimplexModel::pack(1, 0)), 3.0 * 18.0);
}

TEST(SimplexModel, BoundaryStateFeedsFail) {
  SimplexParams p = base_params();
  p.seu_rate_per_bit_hour = 2.0;
  p.erasure_rate_per_symbol_hour = 3.0;
  p.scrub_rate_per_hour = 5.0;
  const SimplexModel model{p};
  // (0,1): er+2re = 2 (full budget). SEU or erasure on untouched -> Fail;
  // erasure on the hit symbol -> (1,0); scrub -> (0,0).
  const auto t = transitions_of(model, SimplexModel::pack(0, 1));
  ASSERT_EQ(t.size(), 3u);
  const double fail_rate = 8.0 * 2.0 * 17.0 + 3.0 * 17.0;
  EXPECT_DOUBLE_EQ(t.at(SimplexModel::fail_state()), fail_rate);
  EXPECT_DOUBLE_EQ(t.at(SimplexModel::pack(1, 0)), 3.0 * 1.0);
  EXPECT_DOUBLE_EQ(t.at(SimplexModel::pack(0, 0)), 5.0);
}

TEST(SimplexModel, ScrubbingClearsOnlyTransients) {
  SimplexParams p = base_params();
  p.n = 36;  // wider budget to reach deeper states
  p.seu_rate_per_bit_hour = 1.0;
  p.erasure_rate_per_symbol_hour = 1.0;
  p.scrub_rate_per_hour = 7.0;
  const SimplexModel model{p};
  const auto t = transitions_of(model, SimplexModel::pack(3, 4));
  EXPECT_DOUBLE_EQ(t.at(SimplexModel::pack(3, 0)), 7.0);
}

TEST(SimplexModel, FailIsAbsorbing) {
  SimplexParams p = base_params();
  p.seu_rate_per_bit_hour = 1.0;
  const SimplexModel model{p};
  EXPECT_TRUE(transitions_of(model, SimplexModel::fail_state()).empty());
}

TEST(SimplexModel, ErasureOnHitSymbolConvertsErrorToErasure) {
  SimplexParams p = base_params();
  p.n = 36;
  p.erasure_rate_per_symbol_hour = 2.0;
  const SimplexModel model{p};
  const auto t = transitions_of(model, SimplexModel::pack(1, 3));
  // 3 hit symbols each at rate lambda_e -> (2, 2).
  EXPECT_DOUBLE_EQ(t.at(SimplexModel::pack(2, 2)), 2.0 * 3.0);
}

TEST(SimplexBer, ZeroRatesGiveZeroBer) {
  const SimplexParams p = base_params();  // all rates zero
  const markov::UniformizationSolver solver;
  const std::vector<double> times{0.0, 24.0, 48.0};
  const BerCurve curve = simplex_ber_curve(p, times, solver);
  for (const double b : curve.ber) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(SimplexBer, ScaleFactorAppliedPerEquationOne) {
  EXPECT_DOUBLE_EQ(ber_scale(18, 16, 8), 1.0);   // the paper's main code
  EXPECT_DOUBLE_EQ(ber_scale(36, 16, 8), 10.0);  // the comparison code
  EXPECT_THROW(ber_scale(16, 16, 8), std::invalid_argument);
  SimplexParams p = base_params();
  p.seu_rate_per_bit_hour = 1e-4;
  const markov::UniformizationSolver solver;
  const std::vector<double> times{10.0};
  const BerCurve curve = simplex_ber_curve(p, times, solver);
  EXPECT_DOUBLE_EQ(curve.ber[0], curve.fail_probability[0] * 1.0);
}

TEST(SimplexBer, MatchesClosedFormErasureOnlyChain) {
  // With lambda = 0 and no scrubbing, the RS(18,16) chain is a pure birth
  // chain (0,0) -> (1,0) -> (2,0) -> Fail with rates 18le, 17le, 16le.
  // P_Fail(t) has the hypoexponential closed form.
  SimplexParams p = base_params();
  const double le = 0.01;
  p.erasure_rate_per_symbol_hour = le;
  const markov::UniformizationSolver solver;
  const std::vector<double> times{5.0, 20.0, 80.0};
  const BerCurve curve = simplex_ber_curve(p, times, solver);
  const double a = 18 * le, b = 17 * le, c = 16 * le;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double t = times[i];
    // Density convolution result for hypoexponential(a,b,c) CDF.
    const double pa = std::exp(-a * t) * b * c / ((b - a) * (c - a));
    const double pb = std::exp(-b * t) * a * c / ((a - b) * (c - b));
    const double pc = std::exp(-c * t) * a * b / ((a - c) * (b - c));
    const double p_fail = 1.0 - pa - pb - pc;
    EXPECT_NEAR(curve.fail_probability[i], p_fail, 1e-10) << "t=" << t;
  }
}

TEST(SimplexBer, MonotoneInTimeAndRate) {
  const markov::UniformizationSolver solver;
  const std::vector<double> times{0.0, 12.0, 24.0, 48.0};
  double prev_end = -1.0;
  for (const double lam_day : {7.3e-7, 3.6e-6, 1.7e-5}) {
    SimplexParams p = base_params();
    p.seu_rate_per_bit_hour = core::per_day_to_per_hour(lam_day);
    const BerCurve curve = simplex_ber_curve(p, times, solver);
    for (std::size_t i = 1; i < curve.ber.size(); ++i) {
      EXPECT_GE(curve.ber[i], curve.ber[i - 1]);
    }
    EXPECT_GT(curve.ber.back(), prev_end);
    prev_end = curve.ber.back();
  }
}

TEST(SimplexBer, ScrubbingMonotonicallyImproves) {
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  double prev = 1.0;
  // Faster scrubbing (larger rate) must lower BER(48h).
  for (const double scrub_rate : {0.0, 1.0, 2.0, 4.0}) {
    SimplexParams p = base_params();
    p.seu_rate_per_bit_hour = core::per_day_to_per_hour(1.7e-5);
    p.scrub_rate_per_hour = scrub_rate;
    const BerCurve curve = simplex_ber_curve(p, times, solver);
    EXPECT_LT(curve.ber[0], prev);
    prev = curve.ber[0];
  }
}

TEST(SimplexBer, UniformizationAgreesWithRk45) {
  SimplexParams p = base_params();
  p.seu_rate_per_bit_hour = core::per_day_to_per_hour(1.7e-5);
  p.erasure_rate_per_symbol_hour = core::per_day_to_per_hour(1e-4);
  p.scrub_rate_per_hour = 1.0;
  const std::vector<double> times{6.0, 24.0, 48.0};
  const BerCurve a =
      simplex_ber_curve(p, times, markov::UniformizationSolver{});
  const BerCurve b = simplex_ber_curve(p, times, markov::Rk45Solver{});
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(a.fail_probability[i], b.fail_probability[i], 1e-9);
  }
}

TEST(SimplexBer, ResolvesTinyTailProbabilities) {
  // Figs. 8-10 of the paper plot BER down to 1e-30 and beyond. For the
  // erasure-only RS(18,16) chain, P_Fail(t) ~ 18*17*16/6 * (le*t)^3 for
  // small le*t; the solver must resolve these far-tail values accurately,
  // not truncate them to zero.
  const markov::UniformizationSolver solver;
  for (const double let : {1e-4, 1e-6, 1e-8}) {
    SimplexParams p = base_params();
    p.erasure_rate_per_symbol_hour = let;  // with t = 1 h below
    const std::vector<double> times{1.0};
    const double p_fail =
        simplex_ber_curve(p, times, solver).fail_probability[0];
    const double leading = 816.0 * let * let * let;
    EXPECT_NEAR(p_fail / leading, 1.0, 0.01) << "le*t=" << let;
  }
}

TEST(SimplexBer, TimeGridHelper) {
  const auto grid = time_grid_hours(48.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 48.0);
  EXPECT_DOUBLE_EQ(grid[1], 12.0);
  EXPECT_THROW(time_grid_hours(48.0, 1), std::invalid_argument);
  EXPECT_THROW(time_grid_hours(-1.0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace rsmem::models
