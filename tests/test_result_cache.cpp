// ResultCache unit tests: LRU behaviour and single-flight deduplication.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "service/result_cache.h"

namespace rsmem::service {
namespace {

core::Result<std::string> value_of(const std::string& text) { return text; }

TEST(ResultCache, MissThenHit) {
  ResultCache cache(4);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return value_of("v1");
  };
  ResultCache::Outcome first = cache.get_or_compute("k1", compute);
  ASSERT_TRUE(first.status.is_ok());
  EXPECT_EQ(*first.value, "v1");
  EXPECT_EQ(first.source, CacheSource::kMiss);
  ResultCache::Outcome second = cache.get_or_compute("k1", compute);
  EXPECT_EQ(second.source, CacheSource::kHit);
  EXPECT_EQ(*second.value, "v1");
  EXPECT_EQ(computes, 1);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultCache, LruEvictionPrefersStaleEntries) {
  ResultCache cache(2);
  (void)cache.get_or_compute("a", [] { return value_of("A"); });
  (void)cache.get_or_compute("b", [] { return value_of("B"); });
  // Touch "a" so "b" is the LRU victim.
  EXPECT_EQ(cache.get_or_compute("a", [] { return value_of("?"); }).source,
            CacheSource::kHit);
  (void)cache.get_or_compute("c", [] { return value_of("C"); });
  EXPECT_EQ(cache.get_or_compute("a", [] { return value_of("A2"); }).source,
            CacheSource::kHit);
  EXPECT_EQ(cache.get_or_compute("b", [] { return value_of("B2"); }).source,
            CacheSource::kMiss);
  EXPECT_EQ(cache.stats().evictions, 2u);  // "b" once, then a victim for "b"
}

TEST(ResultCache, FailuresAreNotCached) {
  ResultCache cache(4);
  ResultCache::Outcome failed = cache.get_or_compute(
      "k", [] { return core::Result<std::string>(
                    core::Status::solver_divergence("boom")); });
  EXPECT_FALSE(failed.status.is_ok());
  EXPECT_EQ(failed.status.code(), core::StatusCode::kSolverDivergence);
  EXPECT_EQ(failed.value, nullptr);
  // The next request retries and can succeed.
  ResultCache::Outcome retried =
      cache.get_or_compute("k", [] { return value_of("fixed"); });
  ASSERT_TRUE(retried.status.is_ok());
  EXPECT_EQ(retried.source, CacheSource::kMiss);
  EXPECT_EQ(*retried.value, "fixed");
  EXPECT_EQ(cache.stats().failures, 1u);
}

TEST(ResultCache, CapacityZeroStillDeduplicates) {
  ResultCache cache(0);
  (void)cache.get_or_compute("k", [] { return value_of("v"); });
  // Nothing stored...
  EXPECT_EQ(cache.stats().size, 0u);
  // ...so a sequential repeat recomputes (miss), but concurrent identical
  // requests still single-flight (exercised below with capacity > 0; here
  // we only pin the storage-off behaviour).
  EXPECT_EQ(cache.get_or_compute("k", [] { return value_of("v"); }).source,
            CacheSource::kMiss);
}

TEST(ResultCache, SingleFlightDeduplicatesConcurrentIdenticalRequests) {
  ResultCache cache(8);
  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  std::atomic<int> inside{0};
  std::barrier gate(kThreads);
  std::vector<ResultCache::Outcome> outcomes(kThreads);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        gate.arrive_and_wait();  // maximize overlap
        outcomes[i] = cache.get_or_compute("hot", [&] {
          inside.fetch_add(1);
          computes.fetch_add(1);
          // Hold the flight open long enough that peers pile up.
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          inside.fetch_sub(1);
          return value_of("computed-once");
        });
      });
    }
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(inside.load(), 0);
  int misses = 0, waits = 0, hits = 0;
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.is_ok());
    ASSERT_NE(outcome.value, nullptr);
    EXPECT_EQ(*outcome.value, "computed-once");
    misses += outcome.source == CacheSource::kMiss;
    waits += outcome.source == CacheSource::kWait;
    hits += outcome.source == CacheSource::kHit;
  }
  EXPECT_EQ(misses, 1);           // exactly one leader
  EXPECT_EQ(waits + hits + misses, kThreads);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.waits + stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ResultCache, ConcurrentDistinctKeysAllCompute) {
  ResultCache cache(64);
  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        const std::string key = "k" + std::to_string(i);
        const auto outcome = cache.get_or_compute(key, [&] {
          computes.fetch_add(1);
          return value_of(key);
        });
        EXPECT_TRUE(outcome.status.is_ok());
        EXPECT_EQ(*outcome.value, key);
      });
    }
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(computes.load(), kThreads);
  EXPECT_EQ(cache.stats().size, static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace rsmem::service
