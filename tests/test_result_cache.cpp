// ResultCache unit tests: LRU behaviour and single-flight deduplication —
// including the per-shard regime, where each shard owns an independent
// cache and single-flight must dedupe within a shard without any
// cross-shard coupling.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "service/result_cache.h"

namespace rsmem::service {
namespace {

core::Result<std::string> value_of(const std::string& text) { return text; }

TEST(ResultCache, MissThenHit) {
  ResultCache cache(4);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return value_of("v1");
  };
  ResultCache::Outcome first = cache.get_or_compute("k1", compute);
  ASSERT_TRUE(first.status.is_ok());
  EXPECT_EQ(*first.value, "v1");
  EXPECT_EQ(first.source, CacheSource::kMiss);
  ResultCache::Outcome second = cache.get_or_compute("k1", compute);
  EXPECT_EQ(second.source, CacheSource::kHit);
  EXPECT_EQ(*second.value, "v1");
  EXPECT_EQ(computes, 1);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultCache, LruEvictionPrefersStaleEntries) {
  ResultCache cache(2);
  (void)cache.get_or_compute("a", [] { return value_of("A"); });
  (void)cache.get_or_compute("b", [] { return value_of("B"); });
  // Touch "a" so "b" is the LRU victim.
  EXPECT_EQ(cache.get_or_compute("a", [] { return value_of("?"); }).source,
            CacheSource::kHit);
  (void)cache.get_or_compute("c", [] { return value_of("C"); });
  EXPECT_EQ(cache.get_or_compute("a", [] { return value_of("A2"); }).source,
            CacheSource::kHit);
  EXPECT_EQ(cache.get_or_compute("b", [] { return value_of("B2"); }).source,
            CacheSource::kMiss);
  EXPECT_EQ(cache.stats().evictions, 2u);  // "b" once, then a victim for "b"
}

TEST(ResultCache, FailuresAreNotCached) {
  ResultCache cache(4);
  ResultCache::Outcome failed = cache.get_or_compute(
      "k", [] { return core::Result<std::string>(
                    core::Status::solver_divergence("boom")); });
  EXPECT_FALSE(failed.status.is_ok());
  EXPECT_EQ(failed.status.code(), core::StatusCode::kSolverDivergence);
  EXPECT_EQ(failed.value, nullptr);
  // The next request retries and can succeed.
  ResultCache::Outcome retried =
      cache.get_or_compute("k", [] { return value_of("fixed"); });
  ASSERT_TRUE(retried.status.is_ok());
  EXPECT_EQ(retried.source, CacheSource::kMiss);
  EXPECT_EQ(*retried.value, "fixed");
  EXPECT_EQ(cache.stats().failures, 1u);
}

TEST(ResultCache, CapacityZeroStillDeduplicates) {
  ResultCache cache(0);
  (void)cache.get_or_compute("k", [] { return value_of("v"); });
  // Nothing stored...
  EXPECT_EQ(cache.stats().size, 0u);
  // ...so a sequential repeat recomputes (miss), but concurrent identical
  // requests still single-flight (exercised below with capacity > 0; here
  // we only pin the storage-off behaviour).
  EXPECT_EQ(cache.get_or_compute("k", [] { return value_of("v"); }).source,
            CacheSource::kMiss);
}

TEST(ResultCache, SingleFlightDeduplicatesConcurrentIdenticalRequests) {
  ResultCache cache(8);
  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  std::atomic<int> inside{0};
  std::barrier gate(kThreads);
  std::vector<ResultCache::Outcome> outcomes(kThreads);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        gate.arrive_and_wait();  // maximize overlap
        outcomes[i] = cache.get_or_compute("hot", [&] {
          inside.fetch_add(1);
          computes.fetch_add(1);
          // Hold the flight open long enough that peers pile up.
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          inside.fetch_sub(1);
          return value_of("computed-once");
        });
      });
    }
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(inside.load(), 0);
  int misses = 0, waits = 0, hits = 0;
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.is_ok());
    ASSERT_NE(outcome.value, nullptr);
    EXPECT_EQ(*outcome.value, "computed-once");
    misses += outcome.source == CacheSource::kMiss;
    waits += outcome.source == CacheSource::kWait;
    hits += outcome.source == CacheSource::kHit;
  }
  EXPECT_EQ(misses, 1);           // exactly one leader
  EXPECT_EQ(waits + hits + misses, kThreads);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.waits + stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

// Per-shard single-flight probe with a GATED (not merely slow) compute:
// the leader on shard 0 blocks until the test releases it, which removes
// all timing slack from the assertions. While shard 0's flight is pinned
// open, (a) concurrent identical requests on shard 0 pile onto the one
// leader — exactly one computation runs; (b) a different shard's cache
// computes the same key independently and immediately — shards share
// nothing, so one shard's in-flight work never blocks another's.
TEST(ResultCache, PerShardSingleFlightBlockingComputeProbe) {
  ResultCache shard0(8);
  ResultCache shard1(8);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool leader_entered = false;
  bool release_leader = false;
  std::atomic<int> shard0_computes{0};

  constexpr int kWaiters = 4;
  std::vector<ResultCache::Outcome> outcomes(kWaiters + 1);
  std::vector<std::thread> threads;
  // Leader + waiters, all asking shard 0 for the same key.
  for (int i = 0; i <= kWaiters; ++i) {
    threads.emplace_back([&, i] {
      outcomes[i] = shard0.get_or_compute("shared-key", [&] {
        shard0_computes.fetch_add(1);
        std::unique_lock<std::mutex> lock(gate_mutex);
        leader_entered = true;
        gate_cv.notify_all();
        gate_cv.wait(lock, [&] { return release_leader; });
        return core::Result<std::string>(std::string("from-shard-0"));
      });
    });
  }
  // Wait until the leader is provably inside its compute (flight open).
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return leader_entered; }));
  }
  // Shard 1 serves the same canonical key on its own cache NOW, while
  // shard 0's flight is still pinned open: independent caches, no
  // cross-shard blocking, its own miss.
  const ResultCache::Outcome other_shard =
      shard1.get_or_compute("shared-key", [] {
        return core::Result<std::string>(std::string("from-shard-1"));
      });
  ASSERT_TRUE(other_shard.status.is_ok());
  EXPECT_EQ(other_shard.source, CacheSource::kMiss);
  EXPECT_EQ(*other_shard.value, "from-shard-1");
  EXPECT_EQ(shard1.stats().misses, 1u);

  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    release_leader = true;
    gate_cv.notify_all();
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(shard0_computes.load(), 1);  // one leader, ever
  int misses = 0;
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.is_ok());
    EXPECT_EQ(*outcome.value, "from-shard-0");
    misses += outcome.source == CacheSource::kMiss;
  }
  EXPECT_EQ(misses, 1);
  const ResultCache::Stats stats = shard0.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.waits, static_cast<std::uint64_t>(kWaiters));
}

// A leader that FAILS while concurrent waiters are parked: every waiter
// sees the leader's typed status, nothing is cached on any shard, and the
// next request starts a fresh flight.
TEST(ResultCache, PerShardFailedFlightIsNeverCached) {
  ResultCache shard(8);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool leader_entered = false;
  bool release_leader = false;

  constexpr int kWaiters = 3;
  std::barrier start(kWaiters + 1);
  std::vector<ResultCache::Outcome> outcomes(kWaiters + 1);
  std::vector<std::thread> threads;
  for (int i = 0; i <= kWaiters; ++i) {
    threads.emplace_back([&, i] {
      start.arrive_and_wait();  // everyone races into the same flight
      outcomes[i] = shard.get_or_compute("doomed", [&] {
        std::unique_lock<std::mutex> lock(gate_mutex);
        leader_entered = true;
        gate_cv.notify_all();
        gate_cv.wait(lock, [&] { return release_leader; });
        return core::Result<std::string>(
            core::Status::solver_divergence("deliberate failure"));
      });
    });
  }
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    ASSERT_TRUE(gate_cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return leader_entered; }));
  }
  // Give the non-leaders time to park on the open flight before the
  // leader is released (same settle idiom as the single-flight test).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    release_leader = true;
    gate_cv.notify_all();
  }
  for (auto& thread : threads) thread.join();

  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.status.code(), core::StatusCode::kSolverDivergence);
    EXPECT_EQ(outcome.value, nullptr);
  }
  EXPECT_EQ(shard.stats().size, 0u);  // the failure was never cached
  EXPECT_EQ(shard.stats().failures, 1u);
  // The next ask is a fresh flight and may succeed.
  const ResultCache::Outcome retried = shard.get_or_compute(
      "doomed", [] { return core::Result<std::string>(std::string("ok")); });
  ASSERT_TRUE(retried.status.is_ok());
  EXPECT_EQ(retried.source, CacheSource::kMiss);
}

TEST(ResultCacheStats, MergeSumsCountersAcrossShards) {
  ResultCache::Stats a;
  a.hits = 10;
  a.misses = 4;
  a.waits = 2;
  a.evictions = 1;
  a.failures = 1;
  a.size = 3;
  ResultCache::Stats b;
  b.hits = 5;
  b.misses = 6;
  b.waits = 0;
  b.evictions = 0;
  b.failures = 2;
  b.size = 4;
  ResultCache::Stats merged;
  merged.merge(a).merge(b);
  EXPECT_EQ(merged.hits, 15u);
  EXPECT_EQ(merged.misses, 10u);
  EXPECT_EQ(merged.waits, 2u);
  EXPECT_EQ(merged.evictions, 1u);
  EXPECT_EQ(merged.failures, 3u);
  EXPECT_EQ(merged.size, 7u);
  // hit_rate over the merged counters, exactly as the stats plane reports.
  EXPECT_DOUBLE_EQ(merged.hit_rate(), 17.0 / 27.0);
}

TEST(ResultCache, ConcurrentDistinctKeysAllCompute) {
  ResultCache cache(64);
  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        const std::string key = "k" + std::to_string(i);
        const auto outcome = cache.get_or_compute(key, [&] {
          computes.fetch_add(1);
          return value_of(key);
        });
        EXPECT_TRUE(outcome.status.is_ok());
        EXPECT_EQ(*outcome.value, key);
      });
    }
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(computes.load(), kThreads);
  EXPECT_EQ(cache.stats().size, static_cast<std::size_t>(kThreads));
}

// ---------------------------------------------------------------------------
// Crash-safe snapshot files (warm start). Format: "RSMS" | u32 version |
// u64 count | entries | u32 CRC32 — every rejection path must be a typed
// Status the server can treat as a cold start, never a crash.

std::string snapshot_test_path(const char* tag) {
  return "/tmp/rsmem-test-snap-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".bin";
}

std::vector<SnapshotEntry> sample_entries() {
  std::vector<SnapshotEntry> entries;
  entries.push_back({"key-a", std::make_shared<const std::string>("1.5")});
  entries.push_back(
      {"key-b", std::make_shared<const std::string>(std::string(5000, 'v'))});
  entries.push_back({"key-c", std::make_shared<const std::string>("")});
  return entries;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class SnapshotFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }
  std::string track(std::string path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(SnapshotFileTest, RoundTripPreservesEntriesInOrder) {
  const std::string path = track(snapshot_test_path("roundtrip"));
  const std::vector<SnapshotEntry> entries = sample_entries();
  ASSERT_TRUE(write_snapshot_file(path, entries).is_ok());
  // The atomic-rename protocol must not leave its temp file behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  const auto loaded = read_snapshot_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].key, entries[i].key);
    EXPECT_EQ(*loaded.value()[i].value, *entries[i].value);
  }
}

TEST_F(SnapshotFileTest, EmptySnapshotRoundTrips) {
  const std::string path = track(snapshot_test_path("empty"));
  ASSERT_TRUE(write_snapshot_file(path, {}).is_ok());
  const auto loaded = read_snapshot_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST_F(SnapshotFileTest, MissingFileSaysNoSnapshot) {
  // Boot distinguishes first-run (normal) from corruption (reported) by
  // this message; the contract is load-bearing, not cosmetic.
  const auto loaded =
      read_snapshot_file(snapshot_test_path("never-written"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("no snapshot"), std::string::npos)
      << loaded.status().message();
}

TEST_F(SnapshotFileTest, EveryFlippedByteIsRejected) {
  const std::string path = track(snapshot_test_path("flip"));
  std::vector<SnapshotEntry> entries;
  entries.push_back({"k", std::make_shared<const std::string>("v")});
  ASSERT_TRUE(write_snapshot_file(path, entries).is_ok());
  const std::string good = slurp(path);
  ASSERT_FALSE(good.empty());
  // Small file: corrupt EVERY byte position in turn. The CRC (or a bounds
  // check that fires first) must catch each one; none may crash or
  // silently load, and none may masquerade as "no snapshot".
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(static_cast<unsigned char>(bad[i]) ^ 0x40);
    spew(path, bad);
    const auto loaded = read_snapshot_file(path);
    EXPECT_FALSE(loaded.ok()) << "byte " << i << " flip loaded silently";
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().message().find("no snapshot"),
                std::string::npos)
          << loaded.status().message();
    }
  }
}

TEST_F(SnapshotFileTest, EveryTruncationIsRejected) {
  const std::string path = track(snapshot_test_path("trunc"));
  std::vector<SnapshotEntry> entries;
  entries.push_back({"key", std::make_shared<const std::string>("value")});
  ASSERT_TRUE(write_snapshot_file(path, entries).is_ok());
  const std::string good = slurp(path);
  for (std::size_t keep = 0; keep < good.size(); ++keep) {
    spew(path, good.substr(0, keep));
    EXPECT_FALSE(read_snapshot_file(path).ok())
        << "truncation to " << keep << " bytes loaded silently";
  }
}

TEST_F(SnapshotFileTest, WrongMagicAndFutureVersionRejected) {
  const std::string path = track(snapshot_test_path("magic"));
  ASSERT_TRUE(write_snapshot_file(path, sample_entries()).is_ok());
  std::string bytes = slurp(path);
  {
    std::string wrong_magic = bytes;
    wrong_magic[0] = 'X';
    spew(path, wrong_magic);
    EXPECT_FALSE(read_snapshot_file(path).ok());
  }
  {
    // A future format version must be rejected even with a VALID trailing
    // CRC — this is a version check, not a corruption check.
    std::string future = bytes;
    future[4] = 2;  // version u32 little-endian, low byte first
    const std::size_t body = future.size() - 4;
    const std::uint32_t crc = snapshot_crc32(future.data(), body);
    future[body + 0] = static_cast<char>(crc & 0xFF);
    future[body + 1] = static_cast<char>((crc >> 8) & 0xFF);
    future[body + 2] = static_cast<char>((crc >> 16) & 0xFF);
    future[body + 3] = static_cast<char>((crc >> 24) & 0xFF);
    spew(path, future);
    const auto loaded = read_snapshot_file(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().message().find("no snapshot"),
              std::string::npos);
  }
}

TEST_F(SnapshotFileTest, HugeFieldLengthRejectedWithoutAllocating) {
  // count = 1 but key_len = 0xFFFFFF00: a reader that trusted the field
  // would try a ~4 GiB allocation. Bounds-vs-remaining-bytes must fire
  // first (the CRC is valid, so only the bounds check can reject).
  std::string bytes = "RSMS";
  bytes += std::string("\x01\x00\x00\x00", 4);                  // version 1
  bytes += std::string("\x01\x00\x00\x00\x00\x00\x00\x00", 8);  // count 1
  bytes += std::string("\x00\xFF\xFF\xFF", 4);                  // key_len
  const std::uint32_t crc = snapshot_crc32(bytes.data(), bytes.size());
  bytes.push_back(static_cast<char>(crc & 0xFF));
  bytes.push_back(static_cast<char>((crc >> 8) & 0xFF));
  bytes.push_back(static_cast<char>((crc >> 16) & 0xFF));
  bytes.push_back(static_cast<char>((crc >> 24) & 0xFF));
  const std::string path = track(snapshot_test_path("hugefield"));
  spew(path, bytes);
  EXPECT_FALSE(read_snapshot_file(path).ok());
}

TEST_F(SnapshotFileTest, WriteReplacesExistingSnapshotAtomically) {
  const std::string path = track(snapshot_test_path("replace"));
  std::vector<SnapshotEntry> first;
  first.push_back({"old", std::make_shared<const std::string>("1")});
  ASSERT_TRUE(write_snapshot_file(path, first).is_ok());
  std::vector<SnapshotEntry> second;
  second.push_back({"new", std::make_shared<const std::string>("2")});
  ASSERT_TRUE(write_snapshot_file(path, second).is_ok());
  const auto loaded = read_snapshot_file(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].key, "new");
}

TEST(ResultCacheWarmStart, InsertCountsWarmLoadsAndExportRebuildsLru) {
  ResultCache cache(2);
  cache.insert("a", std::make_shared<const std::string>("1"));
  cache.insert("b", std::make_shared<const std::string>("2"));
  EXPECT_EQ(cache.stats().warm_loads, 2u);
  // Warm inserts participate in LRU: a third insert at capacity 2 evicts
  // the least-recent entry, exactly like computed entries.
  cache.insert("c", std::make_shared<const std::string>("3"));
  EXPECT_EQ(cache.stats().size, 2u);
  EXPECT_EQ(cache.lookup("a"), nullptr);
  ASSERT_NE(cache.lookup("c"), nullptr);
  // export_entries lists least-recently-used first, so replaying the file
  // in order rebuilds the same recency order on the next boot.
  const auto exported = cache.export_entries();
  ASSERT_EQ(exported.size(), 2u);
  EXPECT_EQ(exported.back().key, "c");
}

}  // namespace
}  // namespace rsmem::service
