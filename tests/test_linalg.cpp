// Tests for the dense/sparse linear algebra substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "sim/rng.h"

namespace rsmem::linalg {
namespace {

TEST(DenseMatrix, IdentityAndApply) {
  const DenseMatrix eye = DenseMatrix::identity(3);
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_EQ(eye.apply(x), x);
  EXPECT_EQ(eye.apply_transpose(x), x);
}

TEST(DenseMatrix, ApplyRejectsBadSize) {
  const DenseMatrix a(2, 3);
  const std::vector<double> wrong{1.0, 2.0};
  EXPECT_THROW(a.apply(wrong), std::invalid_argument);
}

TEST(DenseMatrix, MulMatchesManual) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  DenseMatrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const DenseMatrix c = DenseMatrix::mul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(DenseMatrix, TransposeRoundTrip) {
  sim::Rng rng{5};
  DenseMatrix a(4, 7);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 7; ++c) a.at(r, c) = rng.uniform();
  }
  const DenseMatrix att = a.transpose().transpose();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_DOUBLE_EQ(att.at(r, c), a.at(r, c));
    }
  }
}

TEST(LuFactorization, SolvesKnownSystem) {
  DenseMatrix a(3, 3);
  // [[2,1,1],[1,3,2],[1,0,0]] x = [4,5,6] -> x = [6, 15, -23]
  a.at(0, 0) = 2; a.at(0, 1) = 1; a.at(0, 2) = 1;
  a.at(1, 0) = 1; a.at(1, 1) = 3; a.at(1, 2) = 2;
  a.at(2, 0) = 1; a.at(2, 1) = 0; a.at(2, 2) = 0;
  const LuFactorization lu{a};
  const std::vector<double> b{4.0, 5.0, 6.0};
  const std::vector<double> x = lu.solve(b);
  EXPECT_NEAR(x[0], 6.0, 1e-12);
  EXPECT_NEAR(x[1], 15.0, 1e-12);
  EXPECT_NEAR(x[2], -23.0, 1e-12);
}

TEST(LuFactorization, RandomRoundTrip) {
  sim::Rng rng{42};
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(12);
    DenseMatrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.uniform() - 0.5;
      a.at(r, r) += 2.0;  // diagonally dominant: non-singular
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform() * 10.0 - 5.0;
    const std::vector<double> b = a.apply(x_true);
    const std::vector<double> x = LuFactorization{a}.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(LuFactorization, DetectsSingular) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, std::domain_error);
}

TEST(LuFactorization, DeterminantWithPivoting) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  EXPECT_NEAR(LuFactorization{a}.determinant(), -1.0, 1e-12);
}

TEST(CsrMatrix, BuildsAndSumsDuplicates) {
  const CsrMatrix m(2, 2,
                    {{0, 0, 1.0}, {0, 0, 2.0}, {1, 0, 4.0}, {0, 1, -1.0}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(CsrMatrix, DropsExplicitZeroSums) {
  const CsrMatrix m(1, 1, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(CsrMatrix, RejectsOutOfRange) {
  EXPECT_THROW(CsrMatrix(2, 2, {{2, 0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(2, 2, {{0, 2, 1.0}}), std::invalid_argument);
}

TEST(CsrMatrix, ApplyMatchesDense) {
  sim::Rng rng{9};
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = 1 + rng.uniform_int(10);
    const std::size_t cols = 1 + rng.uniform_int(10);
    std::vector<Triplet> triplets;
    for (int e = 0; e < 30; ++e) {
      triplets.push_back({rng.uniform_int(rows), rng.uniform_int(cols),
                          rng.uniform() - 0.5});
    }
    const CsrMatrix sparse(rows, cols, triplets);
    const DenseMatrix dense = sparse.to_dense();
    std::vector<double> x(cols), y(rows);
    for (auto& v : x) v = rng.uniform();
    for (auto& v : y) v = rng.uniform();
    const auto ax_s = sparse.apply(x);
    const auto ax_d = dense.apply(x);
    for (std::size_t i = 0; i < rows; ++i) EXPECT_NEAR(ax_s[i], ax_d[i], 1e-12);
    const auto aty_s = sparse.apply_transpose(y);
    const auto aty_d = dense.apply_transpose(y);
    for (std::size_t i = 0; i < cols; ++i) {
      EXPECT_NEAR(aty_s[i], aty_d[i], 1e-12);
    }
  }
}

TEST(CsrMatrix, MaxAbsDiagonal) {
  const CsrMatrix m(3, 3, {{0, 0, -5.0}, {1, 1, 2.0}, {2, 0, 100.0}});
  EXPECT_DOUBLE_EQ(m.max_abs_diagonal(), 5.0);
}

TEST(CsrMatrix, CachedDiagonalMatchesLookup) {
  sim::Rng rng{17};
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t rows = 1 + rng.uniform_int(8);
    const std::size_t cols = 1 + rng.uniform_int(8);
    std::vector<Triplet> triplets;
    for (int e = 0; e < 20; ++e) {
      triplets.push_back({rng.uniform_int(rows), rng.uniform_int(cols),
                          rng.uniform() - 0.5});
    }
    const CsrMatrix m(rows, cols, triplets);
    const auto diag = m.diagonal();
    ASSERT_EQ(diag.size(), std::min(rows, cols));
    double max_abs = 0.0;
    for (std::size_t i = 0; i < diag.size(); ++i) {
      EXPECT_DOUBLE_EQ(diag[i], m.at(i, i));
      max_abs = std::max(max_abs, std::fabs(diag[i]));
    }
    EXPECT_DOUBLE_EQ(m.max_abs_diagonal(), max_abs);
  }
}

TEST(CsrMatrix, CscMirrorMatchesCsr) {
  const CsrMatrix m(
      3, 4, {{0, 1, 2.0}, {0, 3, -1.0}, {1, 0, 4.0}, {2, 1, 5.0}, {2, 2, 6.0}});
  const auto col_ptr = m.col_pointers();
  const auto row_idx = m.row_indices();
  const auto csc_vals = m.transposed_values();
  ASSERT_EQ(col_ptr.size(), m.cols() + 1);
  ASSERT_EQ(row_idx.size(), m.nnz());
  ASSERT_EQ(csc_vals.size(), m.nnz());
  // Every CSC entry must agree with element lookup, rows ascending within
  // each column (the order that keeps apply_transpose bitwise identical to
  // the scatter formulation).
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t i = col_ptr[c]; i < col_ptr[c + 1]; ++i) {
      EXPECT_DOUBLE_EQ(csc_vals[i], m.at(row_idx[i], c));
      if (i > col_ptr[c]) {
        EXPECT_LT(row_idx[i - 1], row_idx[i]);
      }
    }
  }
  EXPECT_EQ(col_ptr[0], 0u);
  EXPECT_EQ(col_ptr[m.cols()], m.nnz());
}

TEST(CsrMatrix, ApplyTransposeBitwiseMatchesScatter) {
  // The CSC gather must reproduce the historical scatter loop exactly --
  // same per-output accumulation order -- for arbitrary sign/zero patterns.
  sim::Rng rng{23};
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = 1 + rng.uniform_int(12);
    const std::size_t cols = 1 + rng.uniform_int(12);
    std::vector<Triplet> triplets;
    for (int e = 0; e < 40; ++e) {
      double v = rng.uniform() - 0.5;
      if (rng.uniform() < 0.2) v = 0.0;  // explicit zeros after summing
      triplets.push_back({rng.uniform_int(rows), rng.uniform_int(cols), v});
    }
    const CsrMatrix m(rows, cols, triplets);
    std::vector<double> x(rows);
    for (auto& v : x) v = rng.uniform() - 0.5;

    // Reference: scatter over the CSR layout (the pre-CSC implementation).
    std::vector<double> expected(cols, 0.0);
    const auto row_ptr = m.row_pointers();
    const auto col_idx = m.col_indices();
    const auto vals = m.values();
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        expected[col_idx[i]] += vals[i] * x[r];
      }
    }
    const std::vector<double> got = m.apply_transpose(x);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(got[c], expected[c]) << "trial=" << trial << " col=" << c;
    }
  }
}

TEST(VectorOps, DotAndNorms) {
  const std::vector<double> a{1.0, -2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, -6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 - 18.0);
  EXPECT_DOUBLE_EQ(norm1(a), 6.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 3.0);
  std::vector<double> y = b;
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(VectorOps, DimensionChecks) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(dot(a, b), std::invalid_argument);
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(axpy(1.0, a, y), std::invalid_argument);
}

}  // namespace
}  // namespace rsmem::linalg
