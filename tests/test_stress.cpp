// Stress and fuzz tests: large state spaces, decoder robustness on
// arbitrary inputs, end-to-end determinism.
#include <gtest/gtest.h>

#include <chrono>

#include "core/api.h"
#include "core/units.h"
#include "markov/uniformization.h"
#include "models/ber.h"
#include "models/duplex_model.h"
#include "rs/reed_solomon.h"
#include "sim/rng.h"

namespace rsmem {
namespace {

TEST(Stress, DuplexRs3616ChainBuildsAndSolves) {
  // The duplex chain for the WIDE code: budgets X + 2(b+ec+e_w) <= 20 with
  // a free Y component -- tens of thousands of states. Must build within
  // the explosion guard and solve in reasonable time.
  models::DuplexParams p;
  p.n = 36;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = core::per_day_to_per_hour(1.7e-5);
  p.erasure_rate_per_symbol_hour = core::per_day_to_per_hour(1e-4);
  const auto start = std::chrono::steady_clock::now();
  const markov::StateSpace space = models::DuplexModel{p}.build();
  EXPECT_GT(space.size(), 10'000u);
  EXPECT_LT(space.size(), 2'000'000u);

  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  const models::BerCurve curve = models::ber_curve(
      space, models::DuplexModel::fail_state(),
      models::ber_scale(36, 16, 8), times, solver);
  EXPECT_GE(curve.fail_probability[0], 0.0);
  EXPECT_LT(curve.fail_probability[0], 1e-3);  // wide code, mild rates
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            60);
}

TEST(Stress, DecoderFuzzNeverCrashesOrLies) {
  // Arbitrary random words (nowhere near codewords): the decoder must
  // either report failure or return a VALID codeword -- never crash, hang,
  // or hand back a non-codeword claiming success.
  const rs::ReedSolomon code{18, 16, 8};
  sim::Rng rng{0xFEED};
  int ok_count = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<gf::Element> word(18);
    for (auto& w : word) {
      w = static_cast<gf::Element>(rng.uniform_int(256));
    }
    // Random erasure sets of size 0..3.
    std::vector<unsigned> erasures;
    const unsigned count = static_cast<unsigned>(rng.uniform_int(4));
    while (erasures.size() < count) {
      const unsigned p = static_cast<unsigned>(rng.uniform_int(18));
      if (std::find(erasures.begin(), erasures.end(), p) == erasures.end()) {
        erasures.push_back(p);
      }
    }
    const rs::DecodeOutcome outcome = code.decode(word, erasures);
    if (outcome.ok()) {
      EXPECT_TRUE(code.is_codeword(word));
      ++ok_count;
    }
  }
  // Random 18-symbol words decode successfully at roughly the sphere
  // density (~7% for the no-erasure cases); both outcomes must occur.
  EXPECT_GT(ok_count, 200);
  EXPECT_LT(ok_count, 19000);
}

TEST(Stress, DecoderFuzzWideCode) {
  const rs::ReedSolomon code{36, 16, 8};
  sim::Rng rng{0xBEEF};
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<gf::Element> word(36);
    for (auto& w : word) {
      w = static_cast<gf::Element>(rng.uniform_int(256));
    }
    const rs::DecodeOutcome outcome = code.decode(word);
    if (outcome.ok()) {
      EXPECT_TRUE(code.is_codeword(word));
    }
  }
}

TEST(Stress, EndToEndAnalysisIsDeterministic) {
  // Two full runs of the headline experiment produce bit-identical curves.
  core::MemorySystemSpec spec;
  spec.arrangement = analysis::Arrangement::kDuplex;
  spec.seu_rate_per_bit_day = 1.7e-5;
  spec.scrub_period_seconds = 900.0;
  const std::vector<double> times = models::time_grid_hours(48.0, 25);
  const models::BerCurve a = analyze_ber(spec, times);
  const models::BerCurve b = analyze_ber(spec, times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(a.ber[i], b.ber[i]);
  }
}

}  // namespace
}  // namespace rsmem
