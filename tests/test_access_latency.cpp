// Tests for the codec access-latency queue, pinned against M/D/1 theory.
#include "memory/access_latency.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rsmem::memory {
namespace {

TEST(AccessLatency, Validation) {
  AccessLatencyConfig cfg;
  cfg.read_rate_per_second = 0.0;
  EXPECT_THROW(simulate_access_latency(cfg), std::invalid_argument);
  cfg = AccessLatencyConfig{};
  cfg.decode_seconds = -1.0;
  EXPECT_THROW(simulate_access_latency(cfg), std::invalid_argument);
  // Offered load >= 1.
  cfg = AccessLatencyConfig{};
  cfg.read_rate_per_second = 1e6;
  cfg.decode_seconds = 1e-6;
  EXPECT_THROW(simulate_access_latency(cfg), std::invalid_argument);
  // Scrub batch longer than its period.
  cfg = AccessLatencyConfig{};
  cfg.scrub_period_seconds = 1e-3;
  cfg.words_per_scrub = 1'000'000;
  EXPECT_THROW(simulate_access_latency(cfg), std::invalid_argument);
}

TEST(AccessLatency, MatchesMd1PollaczekKhinchine) {
  // M/D/1: W_q = rho * s / (2 (1 - rho)).
  for (const double rho : {0.3, 0.6, 0.8}) {
    AccessLatencyConfig cfg;
    cfg.decode_seconds = 74.0 / 50e6;  // RS(18,16) at 50 MHz
    cfg.read_rate_per_second = rho / cfg.decode_seconds;
    cfg.horizon_seconds = 5.0;  // ~ millions of reads
    cfg.seed = static_cast<std::uint64_t>(rho * 100);
    const AccessLatencyReport r = simulate_access_latency(cfg);
    const double expected = rho * cfg.decode_seconds / (2.0 * (1.0 - rho));
    EXPECT_NEAR(r.mean_wait_seconds / expected, 1.0, 0.05) << "rho=" << rho;
    EXPECT_NEAR(r.utilization, rho, 0.01);
    EXPECT_GT(r.reads_served, 100'000u);
  }
}

TEST(AccessLatency, LatencyGrowsWithServiceTimeSuperlinearly) {
  // Same read rate: the RS(36,16) codec (308 cycles) is 4.16x slower per
  // decode, but at this load its MEAN latency is far more than 4.16x worse
  // because utilization quadruples too.
  AccessLatencyConfig narrow;
  narrow.decode_seconds = 74.0 / 50e6;
  narrow.read_rate_per_second = 0.2 / narrow.decode_seconds * 4.0 / 4.0;
  narrow.read_rate_per_second = 135000.0;  // rho ~ 0.2 narrow, ~0.83 wide
  narrow.horizon_seconds = 3.0;
  const AccessLatencyReport fast = simulate_access_latency(narrow);

  AccessLatencyConfig wide = narrow;
  wide.decode_seconds = 308.0 / 50e6;
  const AccessLatencyReport slow = simulate_access_latency(wide);
  const double service_ratio = 308.0 / 74.0;
  EXPECT_GT(slow.mean_latency_seconds / fast.mean_latency_seconds,
            2.0 * service_ratio);
}

TEST(AccessLatency, ScrubBatchesInflateTailLatency) {
  AccessLatencyConfig cfg;
  cfg.decode_seconds = 74.0 / 50e6;
  cfg.read_rate_per_second = 1e5;  // rho ~ 0.15
  cfg.horizon_seconds = 4.0;
  const AccessLatencyReport plain = simulate_access_latency(cfg);

  cfg.scrub_period_seconds = 0.5;
  cfg.words_per_scrub = 50'000;  // batch ~ 74 ms every 500 ms
  const AccessLatencyReport scrubbed = simulate_access_latency(cfg);
  EXPECT_GT(scrubbed.utilization, plain.utilization + 0.1);
  // Reads caught behind a scrub batch wait ~ the batch length.
  EXPECT_GT(scrubbed.max_latency_seconds, 0.05);
  EXPECT_LT(plain.max_latency_seconds, 0.01);
  EXPECT_GT(scrubbed.mean_wait_seconds, 5.0 * plain.mean_wait_seconds);
}

TEST(AccessLatency, SpreadScrubbingRemovesTheTailSpike) {
  AccessLatencyConfig cfg;
  cfg.decode_seconds = 74.0 / 50e6;
  cfg.read_rate_per_second = 1e5;
  cfg.horizon_seconds = 4.0;
  cfg.scrub_period_seconds = 0.5;
  cfg.words_per_scrub = 50'000;
  const AccessLatencyReport batch = simulate_access_latency(cfg);
  cfg.spread_scrub = true;
  const AccessLatencyReport spread = simulate_access_latency(cfg);
  // Identical duty, drastically shorter tail.
  EXPECT_NEAR(spread.utilization, batch.utilization, 0.02);
  EXPECT_LT(spread.max_latency_seconds, batch.max_latency_seconds / 100.0);
  EXPECT_LT(spread.mean_wait_seconds, batch.mean_wait_seconds / 10.0);
}

TEST(AccessLatency, DeterministicGivenSeed) {
  AccessLatencyConfig cfg;
  cfg.horizon_seconds = 0.2;
  const AccessLatencyReport a = simulate_access_latency(cfg);
  const AccessLatencyReport b = simulate_access_latency(cfg);
  EXPECT_EQ(a.reads_served, b.reads_served);
  EXPECT_DOUBLE_EQ(a.mean_latency_seconds, b.mean_latency_seconds);
}

}  // namespace
}  // namespace rsmem::memory
