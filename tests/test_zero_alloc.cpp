// Verifies the headline guarantee of the codec fast path: once a
// DecoderWorkspace has been reserved (or has seen one decode of a given
// code), further encode/decode/batch calls perform ZERO heap allocations.
//
// Implemented with counting global operator new/delete overrides, which is
// why this lives in its own test binary: the overrides are process-wide and
// must not contaminate the main suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "rs/reed_solomon.h"
#include "sim/rng.h"

// GCC pairs `new` expressions with the DEFAULT operator delete when warning,
// but this TU replaces both globals consistently on top of malloc/free.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rsmem::rs {
namespace {

// Counts heap allocations performed by `fn`.
template <typename Fn>
std::uint64_t allocations_in(Fn&& fn) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  fn();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

std::vector<Element> random_data(const ReedSolomon& code, sim::Rng& rng) {
  std::vector<Element> data(code.k());
  for (auto& d : data) {
    d = static_cast<Element>(rng.uniform_int(code.field().size()));
  }
  return data;
}

class ZeroAlloc : public ::testing::TestWithParam<rs::CodeParams> {};

TEST_P(ZeroAlloc, SteadyStateDecodeDoesNotAllocate) {
  const ReedSolomon code{GetParam()};
  DecoderWorkspace ws;
  ws.reserve(code);
  sim::Rng rng{GetParam().n};

  const auto data = random_data(code, rng);
  const std::vector<Element> clean = code.encode(data);
  const unsigned t = code.t();

  // Pre-build every fault pattern outside the counting window.
  std::vector<Element> clean_word = clean;
  std::vector<Element> error_word = clean;
  for (unsigned i = 0; i < t; ++i) error_word[2 * i] ^= 1;
  std::vector<Element> erased_word = clean;
  std::vector<unsigned> erasures(code.parity_symbols());
  for (unsigned i = 0; i < erasures.size(); ++i) {
    erasures[i] = i;
    erased_word[i] ^= 3;
  }
  std::vector<Element> scratch(code.n());

  // Warm-up pass: first decode of each shape may still grow buffers.
  scratch = error_word;
  code.decode(ws, scratch, {});
  scratch = erased_word;
  code.decode(ws, scratch, erasures);

  const std::uint64_t count = allocations_in([&] {
    for (int rep = 0; rep < 10; ++rep) {
      std::copy(clean.begin(), clean.end(), scratch.begin());
      code.decode(ws, scratch, {});                      // clean exit
      std::copy(error_word.begin(), error_word.end(), scratch.begin());
      code.decode(ws, scratch, {});                      // full pipeline
      std::copy(erased_word.begin(), erased_word.end(), scratch.begin());
      code.decode(ws, scratch, erasures);                // erasure pipeline
      code.encode(ws, data, scratch);                    // LFSR encoder
    }
  });
  EXPECT_EQ(count, 0u) << "steady-state codec calls must not hit the heap";
}

TEST_P(ZeroAlloc, SteadyStateBatchDoesNotAllocate) {
  const ReedSolomon code{GetParam()};
  DecoderWorkspace ws;
  ws.reserve(code);
  sim::Rng rng{GetParam().n + 1};

  const std::size_t count = 16;
  const unsigned n = code.n();
  std::vector<Element> data_plane(count * code.k());
  for (auto& d : data_plane) {
    d = static_cast<Element>(rng.uniform_int(code.field().size()));
  }
  std::vector<Element> plane(count * n);
  std::vector<Element> damaged(count * n);
  std::vector<std::uint8_t> flags(count * n, 0);
  std::vector<DecodeOutcome> outcomes(count);

  code.encode_batch(ws, data_plane, plane);
  for (std::size_t w = 0; w < count; ++w) {
    damaged[w * n] = plane[w * n] ^ 1;  // one corrupted symbol per word...
    flags[w * n + 1] = 1;               // ...and one erasure flag
  }
  // Warm-up: erasure_scratch grows on the first flagged batch.
  std::copy(plane.begin(), plane.end(), damaged.begin());
  code.decode_batch(ws, damaged, outcomes, flags);

  const std::uint64_t allocs = allocations_in([&] {
    for (int rep = 0; rep < 5; ++rep) {
      code.encode_batch(ws, data_plane, plane);
      std::copy(plane.begin(), plane.end(), damaged.begin());
      for (std::size_t w = 0; w < count; ++w) damaged[w * n] ^= 1;
      code.decode_batch(ws, damaged, outcomes, flags);
    }
  });
  EXPECT_EQ(allocs, 0u) << "steady-state batch calls must not hit the heap";
}

INSTANTIATE_TEST_SUITE_P(
    Codes, ZeroAlloc,
    ::testing::Values(rs::CodeParams{18, 16, 8, 1, 0},
                      rs::CodeParams{36, 16, 8, 1, 0},
                      rs::CodeParams{255, 223, 8, 1, 0},
                      // m > 8: no dense table; the log/exp fast path must
                      // be allocation-free too.
                      rs::CodeParams{100, 88, 10, 1, 0}));

}  // namespace
}  // namespace rsmem::rs
