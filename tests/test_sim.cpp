// Tests for the simulation substrate: RNG determinism and distribution
// sanity, the event queue, and the Poisson process helper.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"
#include "sim/poisson.h"
#include "sim/rng.h"

namespace rsmem::sim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  const Rng root{999};
  Rng s1 = root.split(1);
  Rng s2 = root.split(2);
  Rng s1_again = root.split(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (s1.next_u64() == s2.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformPositiveNeverZero) {
  Rng rng{8};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.uniform_positive(), 0.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng{9};
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++hits[v];
  }
  for (const int h : hits) EXPECT_GT(h, 700);  // ~1000 each
}

TEST(Rng, BernoulliEdges) {
  Rng rng{10};
  EXPECT_THROW(rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.1), std::invalid_argument);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{11};
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, PoissonMeanAndVariance) {
  Rng rng{12};
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  const double mean = 6.5;
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.poisson(mean));
    sum += x;
    sum2 += x * x;
  }
  const double mu = sum / n;
  const double var = sum2 / n - mu * mu;
  EXPECT_NEAR(mu, mean, 0.1);
  EXPECT_NEAR(var, mean, 0.2);
}

TEST(Rng, PoissonLargeMeanChunking) {
  Rng rng{13};
  const double mean = 1800.0;  // exercises the chunked path
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n / mean, 1.0, 0.01);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(1.0, [&] { order.push_back(2); });
  q.schedule_at(1.0, [&] { order.push_back(3); });
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.5, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(3.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> ping = [&] {
    ++count;
    if (count < 5) q.schedule_in(1.0, ping);
  };
  q.schedule_at(0.5, ping);
  q.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const auto id = q.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  q.run_until(2.0);
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(q.cancel(9999));  // unknown id
}

TEST(EventQueue, RejectsPastAndNonFinite) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(
      q.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
      std::invalid_argument);
  EXPECT_THROW(q.schedule_at(6.0, EventAction{}), std::invalid_argument);
  EXPECT_THROW(q.run_until(1.0), std::invalid_argument);
}

TEST(EventQueue, StepSingleEvent) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(PoissonProcess, ZeroRateNeverFires) {
  PoissonProcess p{0.0, Rng{1}};
  EXPECT_TRUE(std::isinf(p.next_after(0.0)));
  EXPECT_TRUE(p.arrivals_in(0.0, 100.0).empty());
}

TEST(PoissonProcess, RejectsNegativeRate) {
  EXPECT_THROW(PoissonProcess(-1.0, Rng{1}), std::invalid_argument);
}

TEST(PoissonProcess, ArrivalCountMatchesRate) {
  PoissonProcess p{5.0, Rng{77}};
  const auto arrivals = p.arrivals_in(0.0, 2000.0);
  // Expect ~10000 arrivals, sd = 100.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 10000.0, 500.0);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GT(arrivals[i], arrivals[i - 1]);
  }
  EXPECT_GT(arrivals.front(), 0.0);
  EXPECT_LE(arrivals.back(), 2000.0);
}

TEST(PoissonProcess, EmptyWindow) {
  PoissonProcess p{5.0, Rng{78}};
  EXPECT_TRUE(p.arrivals_in(10.0, 10.0).empty());
  EXPECT_TRUE(p.arrivals_in(10.0, 5.0).empty());
}

}  // namespace
}  // namespace rsmem::sim
