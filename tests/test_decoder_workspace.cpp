// Tests for the allocation-free DecoderWorkspace fast path: differential
// equivalence with the legacy Poly-based decoder over every fault regime
// (including beyond-capability mis-corrections), workspace reuse hygiene,
// the batch API, and Monte-Carlo campaign bit-identicality.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/monte_carlo.h"
#include "rs/reed_solomon.h"
#include "sim/rng.h"

namespace rsmem::rs {
namespace {

std::vector<Element> random_data(const ReedSolomon& code, sim::Rng& rng) {
  std::vector<Element> data(code.k());
  for (auto& d : data) {
    d = static_cast<Element>(rng.uniform_int(code.field().size()));
  }
  return data;
}

// Picks `count` distinct positions in [0, n).
std::vector<unsigned> random_positions(unsigned n, unsigned count,
                                       sim::Rng& rng) {
  std::vector<unsigned> all(n);
  for (unsigned i = 0; i < n; ++i) all[i] = i;
  for (unsigned i = 0; i < count; ++i) {
    const unsigned j =
        i + static_cast<unsigned>(rng.uniform_int(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

void corrupt_symbol(std::vector<Element>& word, unsigned pos,
                    const ReedSolomon& code, sim::Rng& rng) {
  const Element old = word[pos];
  Element nv;
  do {
    nv = static_cast<Element>(rng.uniform_int(code.field().size()));
  } while (nv == old);
  word[pos] = nv;
}

// Runs one fault pattern through both decoder paths and asserts the outcome
// AND the resulting word are identical.
void expect_paths_identical(const ReedSolomon& code, DecoderWorkspace& ws,
                            const std::vector<Element>& damaged,
                            const std::vector<unsigned>& erasures) {
  std::vector<Element> fast_word = damaged;
  std::vector<Element> legacy_word = damaged;
  const DecodeOutcome fast = code.decode(ws, fast_word, erasures);
  const DecodeOutcome legacy = code.decode_legacy(legacy_word, erasures);
  ASSERT_EQ(fast.status, legacy.status);
  ASSERT_EQ(fast.errors_corrected, legacy.errors_corrected);
  ASSERT_EQ(fast.erasures_corrected, legacy.erasures_corrected);
  ASSERT_EQ(fast_word, legacy_word);
}

// Differential sweep: for each code, randomized fault patterns spanning
// every (er, re) regime from clean through at-capability to well beyond
// capability, where the legacy decoder's real behaviour (failure detection
// or silent mis-correction) must be reproduced bit for bit.
TEST(DecoderWorkspace, DifferentialAgainstLegacyAllRegimes) {
  const CodeParams shapes[] = {
      {18, 16, 8, 1, 0},   // paper's t=1 code
      {36, 16, 8, 1, 0},   // paper's t=10 code
      {15, 9, 4, 1, 0},    // small field, odd parity count
      {18, 16, 8, 0, 0},   // fcr=0 exercises the Forney scale table
  };
  DecoderWorkspace ws;  // ONE workspace across all codes and patterns
  for (const CodeParams& p : shapes) {
    const ReedSolomon code{p};
    const unsigned budget = code.parity_symbols();
    sim::Rng rng{40000 + p.n * 100 + p.k * 10 + p.fcr};
    for (unsigned er = 0; er <= std::min(budget + 2, code.n()); ++er) {
      for (unsigned re = 0; 2 * re <= budget + 4 && er + re <= code.n();
           ++re) {
        for (int rep = 0; rep < 8; ++rep) {
          const auto data = random_data(code, rng);
          std::vector<Element> word = code.encode(data);
          const auto positions = random_positions(code.n(), er + re, rng);
          const std::vector<unsigned> erasures(positions.begin(),
                                               positions.begin() + er);
          // Erased positions get corrupted with probability ~1/2 (erasure
          // decoding must not rely on the content); error positions always.
          for (unsigned i = 0; i < er; ++i) {
            if (rng.uniform_int(2) == 0) {
              corrupt_symbol(word, positions[i], code, rng);
            }
          }
          for (unsigned i = er; i < er + re; ++i) {
            corrupt_symbol(word, positions[i], code, rng);
          }
          expect_paths_identical(code, ws, word, erasures);
        }
      }
    }
  }
}

TEST(DecoderWorkspace, ValidationErrorsMatchLegacy) {
  const ReedSolomon code{18, 16, 8};
  DecoderWorkspace ws;
  std::vector<Element> word(18, 0);

  std::vector<Element> short_word(17, 0);
  EXPECT_THROW(code.decode(ws, short_word), std::invalid_argument);

  const std::vector<unsigned> out_of_range{18};
  EXPECT_THROW(code.decode(ws, word, out_of_range), std::invalid_argument);

  const std::vector<unsigned> duplicate{3, 3};
  EXPECT_THROW(code.decode(ws, word, duplicate), std::invalid_argument);

  word[5] = 256;  // out of GF(256)
  EXPECT_THROW(code.decode(ws, word), std::invalid_argument);
}

// One workspace serving decodes of DIFFERENT codes back to back: buffers
// must adapt per call with no cross-talk.
TEST(DecoderWorkspace, InterleavedCodesShareOneWorkspace) {
  const ReedSolomon small{18, 16, 8};
  const ReedSolomon large{255, 223, 8};
  const ReedSolomon tiny{15, 9, 4};
  const ReedSolomon* codes[] = {&small, &large, &tiny};
  DecoderWorkspace ws;
  sim::Rng rng{99};
  for (int round = 0; round < 30; ++round) {
    const ReedSolomon& code = *codes[round % 3];
    const auto data = random_data(code, rng);
    std::vector<Element> word = code.encode(data);
    const unsigned t = code.t();
    const unsigned re = t == 0 ? 0 : 1 + static_cast<unsigned>(
                                             rng.uniform_int(t));
    const auto positions = random_positions(code.n(), re, rng);
    for (const unsigned p : positions) corrupt_symbol(word, p, code, rng);
    const DecodeOutcome outcome = code.decode(ws, word);
    ASSERT_EQ(outcome.status, re == 0 ? DecodeStatus::kNoError
                                      : DecodeStatus::kCorrected);
    EXPECT_EQ(code.extract_data(word), data);
  }
}

// A failed decode must leave no state that perturbs the next call through
// the same workspace (and must leave the failed word untouched).
TEST(DecoderWorkspace, DecodeAfterFailureIsClean) {
  const ReedSolomon code{36, 16, 8};
  DecoderWorkspace ws;
  sim::Rng rng{123};
  for (int round = 0; round < 20; ++round) {
    // 1. Overwhelm the decoder: 2t+1 erasures is a guaranteed kFailure.
    const auto junk_data = random_data(code, rng);
    std::vector<Element> failed = code.encode(junk_data);
    std::vector<unsigned> too_many(code.parity_symbols() + 1);
    for (unsigned i = 0; i < too_many.size(); ++i) too_many[i] = i;
    for (const unsigned p : too_many) corrupt_symbol(failed, p, code, rng);
    const std::vector<Element> failed_before = failed;
    ASSERT_EQ(code.decode(ws, failed, too_many).status,
              DecodeStatus::kFailure);
    EXPECT_EQ(failed, failed_before);  // kFailure leaves the word untouched

    // 2. The very next decode through the same workspace must be perfect.
    const auto data = random_data(code, rng);
    std::vector<Element> word = code.encode(data);
    const auto positions = random_positions(code.n(), code.t(), rng);
    for (const unsigned p : positions) corrupt_symbol(word, p, code, rng);
    ASSERT_EQ(code.decode(ws, word).status, DecodeStatus::kCorrected);
    EXPECT_EQ(code.extract_data(word), data);
  }
}

// Clean word with erasure hints still short-circuits to kNoError (matching
// the legacy pipeline, which walks Chien/Forney to zero magnitudes).
TEST(DecoderWorkspace, CleanWordWithErasuresIsNoError) {
  const ReedSolomon code{18, 16, 8};
  DecoderWorkspace ws;
  sim::Rng rng{5};
  const auto data = random_data(code, rng);
  const std::vector<Element> cw = code.encode(data);
  for (const std::vector<unsigned>& erasures :
       {std::vector<unsigned>{}, std::vector<unsigned>{0},
        std::vector<unsigned>{2, 17}}) {
    std::vector<Element> word = cw;
    const DecodeOutcome outcome = code.decode(ws, word, erasures);
    EXPECT_EQ(outcome.status, DecodeStatus::kNoError);
    EXPECT_EQ(outcome.errors_corrected, 0u);
    EXPECT_EQ(outcome.erasures_corrected, 0u);
    EXPECT_EQ(word, cw);
    expect_paths_identical(code, ws, cw, erasures);
  }
}

TEST(DecoderWorkspace, EncodeBatchMatchesSingleEncodes) {
  const ReedSolomon code{18, 16, 8};
  DecoderWorkspace ws;
  sim::Rng rng{17};
  const std::size_t count = 25;
  std::vector<Element> data_plane(count * code.k());
  for (auto& d : data_plane) {
    d = static_cast<Element>(rng.uniform_int(code.field().size()));
  }
  std::vector<Element> plane(count * code.n());
  code.encode_batch(ws, data_plane, plane);
  for (std::size_t w = 0; w < count; ++w) {
    const std::vector<Element> data(
        data_plane.begin() + w * code.k(),
        data_plane.begin() + (w + 1) * code.k());
    const std::vector<Element> expect = code.encode(data);
    const std::vector<Element> got(plane.begin() + w * code.n(),
                                   plane.begin() + (w + 1) * code.n());
    ASSERT_EQ(got, expect) << "word " << w;
  }

  std::vector<Element> bad_plane(count * code.n() + 1);
  EXPECT_THROW(code.encode_batch(ws, data_plane, bad_plane),
               std::invalid_argument);
  std::vector<Element> ragged(code.k() + 1, 0);
  EXPECT_THROW(code.encode_batch(ws, ragged, plane), std::invalid_argument);
}

TEST(DecoderWorkspace, DecodeBatchMatchesSingleDecodes) {
  const ReedSolomon code{36, 16, 8};
  DecoderWorkspace ws;
  sim::Rng rng{31};
  const std::size_t count = 40;
  const unsigned n = code.n();
  std::vector<Element> plane(count * n);
  std::vector<std::uint8_t> flags(count * n, 0);
  std::vector<std::vector<Element>> singles(count);
  std::vector<std::vector<unsigned>> single_erasures(count);
  for (std::size_t w = 0; w < count; ++w) {
    const auto data = random_data(code, rng);
    std::vector<Element> word = code.encode(data);
    // Mix of regimes across the batch, some beyond capability.
    const unsigned er = static_cast<unsigned>(rng.uniform_int(8));
    const unsigned re = static_cast<unsigned>(rng.uniform_int(12));
    const auto positions = random_positions(n, er + re, rng);
    for (unsigned i = 0; i < er; ++i) {
      flags[w * n + positions[i]] = 1;
      single_erasures[w].push_back(positions[i]);
      if (rng.uniform_int(2) == 0) {
        corrupt_symbol(word, positions[i], code, rng);
      }
    }
    for (unsigned i = er; i < er + re; ++i) {
      corrupt_symbol(word, positions[i], code, rng);
    }
    std::copy(word.begin(), word.end(), plane.begin() + w * n);
    singles[w] = std::move(word);
  }

  std::vector<DecodeOutcome> outcomes(count);
  code.decode_batch(ws, plane, outcomes, flags);

  DecoderWorkspace single_ws;
  for (std::size_t w = 0; w < count; ++w) {
    // decode_batch gathers flags in ascending position order; the reference
    // list was built the same way, so outputs must match exactly.
    std::sort(single_erasures[w].begin(), single_erasures[w].end());
    const DecodeOutcome expect =
        code.decode(single_ws, singles[w], single_erasures[w]);
    ASSERT_EQ(outcomes[w].status, expect.status) << "word " << w;
    ASSERT_EQ(outcomes[w].errors_corrected, expect.errors_corrected);
    ASSERT_EQ(outcomes[w].erasures_corrected, expect.erasures_corrected);
    const std::vector<Element> got(plane.begin() + w * n,
                                   plane.begin() + (w + 1) * n);
    ASSERT_EQ(got, singles[w]) << "word " << w;
  }

  std::vector<DecodeOutcome> wrong_count(count + 1);
  EXPECT_THROW(code.decode_batch(ws, plane, wrong_count, flags),
               std::invalid_argument);
  std::vector<std::uint8_t> wrong_flags(count * n - 1, 0);
  EXPECT_THROW(code.decode_batch(ws, plane, outcomes, wrong_flags),
               std::invalid_argument);
}

TEST(DecoderWorkspace, ReserveMakesFirstDecodeAllocationStable) {
  // Functional half of the zero-allocation story (the counting-allocator
  // check lives in test_zero_alloc.cpp): reserve() then decode works and
  // the workspace survives arbitrary reuse.
  const ReedSolomon code{255, 223, 8};
  DecoderWorkspace ws;
  ws.reserve(code);
  sim::Rng rng{77};
  const auto data = random_data(code, rng);
  std::vector<Element> word = code.encode(data);
  const auto positions = random_positions(code.n(), code.t(), rng);
  for (const unsigned p : positions) corrupt_symbol(word, p, code, rng);
  ASSERT_EQ(code.decode(ws, word).status, DecodeStatus::kCorrected);
  EXPECT_EQ(code.extract_data(word), data);
}

// The campaign engine with the shared-codec fast path must reproduce the
// legacy per-trial-codec campaign EXACTLY — same failure counts, same fault
// tallies — for simplex and duplex, across thread counts.
TEST(DecoderWorkspace, MonteCarloFastPathBitIdenticalToLegacy) {
  analysis::MonteCarloConfig mc;
  mc.trials = 600;
  mc.t_end_hours = 200.0;
  mc.seed = 2026;
  mc.chunk_trials = 64;

  memory::SimplexSystemConfig simplex;
  simplex.code = {18, 16, 8, 1};
  simplex.rates.seu_rate_per_bit_hour = 2e-4;
  simplex.rates.perm_rate_per_symbol_hour = 2e-5;

  memory::DuplexSystemConfig duplex;
  duplex.code = {18, 16, 8, 1};
  duplex.rates = simplex.rates;

  for (const unsigned threads : {1u, 4u}) {
    mc.threads = threads;
    mc.legacy_codec = true;
    const analysis::MonteCarloResult s_legacy =
        analysis::run_simplex_trials(simplex, mc);
    const analysis::MonteCarloResult d_legacy =
        analysis::run_duplex_trials(duplex, mc);
    mc.legacy_codec = false;
    const analysis::MonteCarloResult s_fast =
        analysis::run_simplex_trials(simplex, mc);
    const analysis::MonteCarloResult d_fast =
        analysis::run_duplex_trials(duplex, mc);

    EXPECT_EQ(s_fast.failure.failures, s_legacy.failure.failures);
    EXPECT_EQ(s_fast.no_output_failures, s_legacy.no_output_failures);
    EXPECT_EQ(s_fast.wrong_data_failures, s_legacy.wrong_data_failures);
    EXPECT_EQ(s_fast.mean_seu_per_trial, s_legacy.mean_seu_per_trial);
    EXPECT_EQ(s_fast.mean_permanent_per_trial,
              s_legacy.mean_permanent_per_trial);

    EXPECT_EQ(d_fast.failure.failures, d_legacy.failure.failures);
    EXPECT_EQ(d_fast.no_output_failures, d_legacy.no_output_failures);
    EXPECT_EQ(d_fast.wrong_data_failures, d_legacy.wrong_data_failures);
    EXPECT_EQ(d_fast.mean_seu_per_trial, d_legacy.mean_seu_per_trial);
    EXPECT_EQ(d_fast.mean_permanent_per_trial,
              d_legacy.mean_permanent_per_trial);
  }
}

}  // namespace
}  // namespace rsmem::rs
