// Tests for the parallel Monte-Carlo campaign engine: the thread pool, the
// sharded runner, and the bit-identical-across-thread-counts guarantee.
#include "analysis/campaign.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "analysis/monte_carlo.h"
#include "sim/thread_pool.h"

namespace rsmem::analysis {
namespace {

memory::SimplexSystemConfig busy_simplex() {
  memory::SimplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 1e-3;
  cfg.rates.perm_rate_per_symbol_hour = 5e-4;
  cfg.scrub_policy = memory::ScrubPolicy::kExponential;
  cfg.scrub_period_hours = 4.0;
  return cfg;
}

memory::DuplexSystemConfig busy_duplex() {
  memory::DuplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 1e-3;
  cfg.rates.perm_rate_per_symbol_hour = 5e-4;
  return cfg;
}

void expect_identical(const MonteCarloResult& a, const MonteCarloResult& b) {
  EXPECT_EQ(a.failure.trials, b.failure.trials);
  EXPECT_EQ(a.failure.failures, b.failure.failures);
  // Bitwise equality is intended: the accumulator sums integers held in
  // doubles, so merging in chunk order is exact for any shard layout.
  EXPECT_EQ(a.mean_seu_per_trial, b.mean_seu_per_trial);
  EXPECT_EQ(a.mean_permanent_per_trial, b.mean_permanent_per_trial);
  EXPECT_EQ(a.scrub_failures, b.scrub_failures);
  EXPECT_EQ(a.scrub_miscorrections, b.scrub_miscorrections);
  EXPECT_EQ(a.no_output_failures, b.no_output_failures);
  EXPECT_EQ(a.wrong_data_failures, b.wrong_data_failures);
}

// ---- ThreadPool ----

TEST(ThreadPool, RunsEverySubmittedTask) {
  sim::ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 250; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 250);
  // The pool is reusable after going idle.
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 251);
}

TEST(ThreadPool, ResolveZeroPicksHardwareConcurrency) {
  EXPECT_GE(sim::ThreadPool::resolve(0), 1u);
  EXPECT_EQ(sim::ThreadPool::resolve(3), 3u);
}

// ---- run_chunked ----

TEST(Campaign, ChunksPartitionTrialRangeExactly) {
  CampaignConfig config;
  config.trials = 1000;
  config.chunk_trials = 333;  // trials not divisible by chunk size
  config.threads = 2;
  EXPECT_EQ(campaign_chunk_count(config), 4u);

  std::vector<char> seen(config.trials, 0);
  std::atomic<std::size_t> chunks_run{0};
  CampaignReport report;
  CampaignProgress progress;
  run_chunked(
      config,
      [&](std::size_t chunk, std::size_t first, std::size_t last) {
        EXPECT_EQ(first, chunk * config.chunk_trials);
        EXPECT_LE(last, config.trials);
        for (std::size_t t = first; t < last; ++t) seen[t] = 1;
        chunks_run.fetch_add(1);
      },
      &report, &progress);

  EXPECT_EQ(chunks_run.load(), 4u);
  for (std::size_t t = 0; t < config.trials; ++t) {
    EXPECT_TRUE(seen[t]) << "trial " << t << " never ran";
  }
  EXPECT_EQ(report.trials, config.trials);
  EXPECT_EQ(report.chunks, 4u);
  EXPECT_EQ(report.threads_used, 2u);
  EXPECT_GE(report.trials_per_second, 0.0);
  EXPECT_EQ(progress.trials_completed.load(), config.trials);
  EXPECT_EQ(progress.chunks_completed.load(), 4u);
}

TEST(Campaign, NeverSpawnsMoreThreadsThanChunks) {
  CampaignConfig config;
  config.trials = 10;
  config.chunk_trials = 8;  // 2 chunks
  config.threads = 16;
  CampaignReport report;
  run_chunked(
      config, [](std::size_t, std::size_t, std::size_t) {}, &report);
  EXPECT_EQ(report.threads_used, 2u);
}

TEST(Campaign, RejectsEmptyCampaigns) {
  CampaignConfig config;
  config.trials = 0;
  EXPECT_THROW(campaign_chunk_count(config), std::invalid_argument);
  config.trials = 10;
  config.chunk_trials = 0;
  EXPECT_THROW(
      run_chunked(config, [](std::size_t, std::size_t, std::size_t) {}),
      std::invalid_argument);
}

TEST(Campaign, PropagatesFirstChunkErrorByIndex) {
  CampaignConfig config;
  config.trials = 64;
  config.chunk_trials = 8;
  config.threads = 4;
  try {
    run_chunked(config,
                [](std::size_t chunk, std::size_t, std::size_t) {
                  if (chunk == 2 || chunk == 6) {
                    throw std::runtime_error("chunk " + std::to_string(chunk));
                  }
                });
    FAIL() << "expected the chunk error to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 2");  // lowest failing index wins
  }
}

// ---- run_sharded fold order ----

TEST(Campaign, ShardedFoldsInChunkOrder) {
  CampaignConfig config;
  config.trials = 100;
  config.chunk_trials = 10;
  config.threads = 8;
  const auto order = run_sharded<std::vector<std::size_t>>(
      config,
      [](std::size_t first, std::size_t, std::vector<std::size_t>& acc) {
        acc.push_back(first);
      },
      [](std::vector<std::size_t>& total,
         const std::vector<std::size_t>& shard) {
        total.insert(total.end(), shard.begin(), shard.end());
      });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i * 10) << "fold order must follow chunk index";
  }
}

// ---- MonteCarloAccumulator merge ----

TEST(Campaign, AccumulatorMergeIsAssociative) {
  MonteCarloAccumulator a, b, c;
  a.trials = 100; a.failures = 3; a.seu_sum = 211.0; a.permanent_sum = 17.0;
  a.scrub_failures = 2; a.scrub_miscorrections = 1;
  a.no_output_failures = 2; a.wrong_data_failures = 1;
  b.trials = 50; b.failures = 7; b.seu_sum = 99.0; b.permanent_sum = 5.0;
  b.scrub_failures = 0; b.scrub_miscorrections = 3;
  b.no_output_failures = 6; b.wrong_data_failures = 1;
  c.trials = 75; c.failures = 1; c.seu_sum = 143.0; c.permanent_sum = 29.0;
  c.scrub_failures = 4; c.scrub_miscorrections = 0;
  c.no_output_failures = 0; c.wrong_data_failures = 1;

  // (a + b) + c
  MonteCarloAccumulator left = a;
  left.merge_from(b);
  left.merge_from(c);
  // a + (b + c)
  MonteCarloAccumulator right_tail = b;
  right_tail.merge_from(c);
  MonteCarloAccumulator right = a;
  right.merge_from(right_tail);

  expect_identical(left.finalize(), right.finalize());
  EXPECT_EQ(left.trials, 225u);
  EXPECT_EQ(left.failures, 11u);
  EXPECT_EQ(left.seu_sum, 453.0);  // integer-valued double sums are exact
}

// ---- End-to-end determinism across thread counts ----

TEST(Campaign, SimplexResultIdenticalForAnyThreadCount) {
  MonteCarloConfig mc;
  mc.trials = 3000;
  mc.t_end_hours = 24.0;
  mc.seed = 1234;
  mc.chunk_trials = 256;

  mc.threads = 1;
  const MonteCarloResult one = run_simplex_trials(busy_simplex(), mc);
  EXPECT_GT(one.failure.failures, 0u);  // the campaign actually exercises faults

  for (unsigned threads : {2u, 8u}) {
    mc.threads = threads;
    expect_identical(one, run_simplex_trials(busy_simplex(), mc));
  }
}

TEST(Campaign, DuplexResultIdenticalForAnyThreadCount) {
  MonteCarloConfig mc;
  mc.trials = 1500;
  mc.t_end_hours = 24.0;
  mc.seed = 4321;
  mc.chunk_trials = 128;

  mc.threads = 1;
  const MonteCarloResult one = run_duplex_trials(busy_duplex(), mc);

  for (unsigned threads : {2u, 8u}) {
    mc.threads = threads;
    expect_identical(one, run_duplex_trials(busy_duplex(), mc));
  }
}

TEST(Campaign, ResultIndependentOfChunkSize) {
  // Chunk-boundary invariance: shard layout must not leak into the result,
  // including a partial final chunk and a single-chunk campaign.
  MonteCarloConfig mc;
  mc.trials = 1000;
  mc.t_end_hours = 24.0;
  mc.seed = 99;
  mc.threads = 4;

  mc.chunk_trials = 1000;  // one chunk
  const MonteCarloResult whole = run_simplex_trials(busy_simplex(), mc);
  for (std::size_t chunk_trials : {7ul, 333ul, 1024ul}) {
    mc.chunk_trials = chunk_trials;
    expect_identical(whole, run_simplex_trials(busy_simplex(), mc));
  }
}

TEST(Campaign, ObserverSeesEveryTrialExactlyOnce) {
  MonteCarloConfig mc;
  mc.trials = 500;
  mc.t_end_hours = 24.0;
  mc.seed = 7;
  mc.threads = 4;
  mc.chunk_trials = 64;
  std::vector<std::atomic<int>> seen(mc.trials);
  mc.observer = [&seen](const TrialRecord& record) {
    ASSERT_LT(record.trial_index, seen.size());
    seen[record.trial_index].fetch_add(1);
  };
  run_simplex_trials(busy_simplex(), mc);
  for (std::size_t t = 0; t < seen.size(); ++t) {
    EXPECT_EQ(seen[t].load(), 1) << "trial " << t;
  }
}

}  // namespace
}  // namespace rsmem::analysis
