// Tests for the chip-kill correlation model, including a direct functional
// cross-check of the correlated-vs-independent array behaviour.
#include "models/chipkill.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace rsmem::models {
namespace {

TEST(ChipKill, Validation) {
  EXPECT_THROW(chipkill_array_survival(16, 16, 1e-6, 10.0),
               std::invalid_argument);
  EXPECT_THROW(chipkill_array_survival(18, 16, -1.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(chip_fail_probability(1e-6, -1.0), std::invalid_argument);
}

TEST(ChipKill, Limits) {
  EXPECT_DOUBLE_EQ(chipkill_array_survival(18, 16, 1e-6, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(chip_fail_probability(0.0, 1e9), 0.0);
  // All chips certainly failed: survival 0 (budget 2 < 18 failures).
  EXPECT_NEAR(chipkill_array_survival(18, 16, 1.0, 1e6), 0.0, 1e-12);
}

TEST(ChipKill, MatchesExplicitBinomialSum) {
  const double rate = 1e-5;
  const double t = 10000.0;
  const double p = 1.0 - std::exp(-rate * t);
  // Direct sum for n=18, budget=2.
  double expected = 0.0;
  double c = 1.0;  // C(18, j)
  for (unsigned j = 0; j <= 2; ++j) {
    expected += c * std::pow(p, j) * std::pow(1.0 - p, 18.0 - j);
    c *= static_cast<double>(18 - j) / static_cast<double>(j + 1);
  }
  EXPECT_NEAR(chipkill_array_survival(18, 16, rate, t), expected, 1e-12);
}

TEST(ChipKill, IndependentApproximationIsPessimisticByW) {
  // Small p regime: P_loss(chipkill) ~ p_word;
  // P_loss(independent) ~ W * p_word.
  const double rate = 1e-7;
  const double t = 8760.0;
  const std::size_t words = 4096;
  const double correlated =
      1.0 - chipkill_array_survival(18, 16, rate, t);
  const double independent =
      1.0 - independent_word_array_survival(18, 16, rate, t, words);
  EXPECT_GT(correlated, 0.0);
  EXPECT_NEAR(independent / correlated, static_cast<double>(words),
              0.05 * words);
}

TEST(ChipKill, FunctionalCrossCheck) {
  // Direct simulation: 18 chips fail as Poisson first-arrivals; the array
  // (any W) is lost iff > 2 chips failed by t. Compare the closed form.
  const double rate = 5e-5;
  const double t = 10000.0;
  sim::Rng rng{909};
  int lost = 0;
  const int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    int failed = 0;
    for (int chip = 0; chip < 18; ++chip) {
      if (rng.uniform() < 1.0 - std::exp(-rate * t)) ++failed;
    }
    lost += (failed > 2);
  }
  const double p_hat = static_cast<double>(lost) / kTrials;
  const double predicted = 1.0 - chipkill_array_survival(18, 16, rate, t);
  const double se = std::sqrt(predicted * (1.0 - predicted) / kTrials);
  EXPECT_NEAR(p_hat, predicted, 4.0 * se + 1e-4);
}

TEST(ChipKill, WiderCodeToleratesMoreChipDeaths) {
  const double rate = 1e-4;
  const double t = 5000.0;
  EXPECT_GT(chipkill_array_survival(36, 16, rate, t),
            chipkill_array_survival(18, 16, rate, t));
}

}  // namespace
}  // namespace rsmem::models
