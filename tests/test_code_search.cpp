// Tests for the code/arrangement design-space search.
#include "analysis/code_search.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rsmem::analysis {
namespace {

CodeSearchSpec base_search() {
  CodeSearchSpec spec;
  spec.base.seu_rate_per_bit_day = 1.7e-5;
  spec.base.erasure_rate_per_symbol_day = 1e-6;
  spec.t_hours = 48.0;
  return spec;
}

TEST(CodeSearch, DefaultCandidateFamily) {
  const auto candidates = default_candidates(16);
  EXPECT_EQ(candidates.size(), 10u);
  EXPECT_EQ(candidates.front().n, 18u);
  EXPECT_EQ(candidates.back().n, 36u);
}

TEST(CodeSearch, Validation) {
  const CodeSearchSpec spec = base_search();
  EXPECT_THROW(evaluate_candidates(spec, {}), std::invalid_argument);
  CodeSearchSpec bad = spec;
  bad.t_hours = 0.0;
  EXPECT_THROW(evaluate_candidates(bad, default_candidates(16)),
               std::invalid_argument);
  // A candidate with n <= k is rejected by spec validation.
  EXPECT_THROW(
      evaluate_candidates(spec, {{Arrangement::kSimplex, 16}}),
      std::invalid_argument);
}

TEST(CodeSearch, EvaluationsCarryTheExpectedCosts) {
  const CodeSearchSpec spec = base_search();
  const auto evals = evaluate_candidates(
      spec, {{Arrangement::kSimplex, 18}, {Arrangement::kDuplex, 18},
             {Arrangement::kSimplex, 36}});
  ASSERT_EQ(evals.size(), 3u);
  EXPECT_DOUBLE_EQ(evals[0].storage_overhead, 18.0 / 16.0);
  EXPECT_DOUBLE_EQ(evals[1].storage_overhead, 2.0 * 18.0 / 16.0);
  EXPECT_DOUBLE_EQ(evals[0].decode_cycles, 74.0);
  EXPECT_DOUBLE_EQ(evals[2].decode_cycles, 308.0);
  EXPECT_GT(evals[1].area_gates, evals[0].area_gates);  // two decoders
  for (const auto& e : evals) EXPECT_GT(e.ber, 0.0);
}

TEST(CodeSearch, ParetoInvariants) {
  const CodeSearchSpec spec = base_search();
  const auto evals =
      evaluate_candidates(spec, default_candidates(16));
  // At least one candidate is efficient, and not all of them.
  unsigned efficient = 0;
  for (const auto& e : evals) efficient += e.pareto_efficient;
  EXPECT_GE(efficient, 1u);
  EXPECT_LT(efficient, evals.size());
  // No efficient candidate is dominated by any other (re-check directly).
  for (const auto& a : evals) {
    if (!a.pareto_efficient) continue;
    for (const auto& b : evals) {
      const bool dominates =
          b.ber <= a.ber && b.storage_overhead <= a.storage_overhead &&
          b.decode_cycles <= a.decode_cycles &&
          b.area_gates <= a.area_gates &&
          (b.ber < a.ber || b.storage_overhead < a.storage_overhead ||
           b.decode_cycles < a.decode_cycles ||
           b.area_gates < a.area_gates);
      EXPECT_FALSE(dominates);
    }
  }
  // Every dominated candidate really has a dominator.
  for (const auto& a : evals) {
    if (a.pareto_efficient) continue;
    bool found = false;
    for (const auto& b : evals) {
      if (b.ber <= a.ber && b.storage_overhead <= a.storage_overhead &&
          b.decode_cycles <= a.decode_cycles &&
          b.area_gates <= a.area_gates &&
          (b.ber < a.ber || b.storage_overhead < a.storage_overhead ||
           b.decode_cycles < a.decode_cycles ||
           b.area_gates < a.area_gates)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(CodeSearch, CheapestSimplexIsAlwaysEfficient) {
  // The (k+2) simplex minimizes overhead, cycles and area simultaneously,
  // so nothing can dominate it (it would need strictly better BER at equal
  // cost, impossible with fewer parity symbols).
  const CodeSearchSpec spec = base_search();
  const auto evals = evaluate_candidates(spec, default_candidates(16));
  for (const auto& e : evals) {
    if (e.candidate.arrangement == Arrangement::kSimplex &&
        e.candidate.n == 18) {
      EXPECT_TRUE(e.pareto_efficient);
    }
  }
}

}  // namespace
}  // namespace rsmem::analysis
