// Tests for the CLI argument parser and the command layer.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "cli/args.h"
#include "cli/commands.h"
#include "gf/simd_mul.h"

namespace rsmem::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"rsmem_cli"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesCommandFlagsAndSwitches) {
  const Args args = parse({"analyze", "--n", "18", "--csv", "--seu",
                           "1.7e-5"});
  EXPECT_EQ(args.command(), "analyze");
  EXPECT_EQ(args.get_long("n"), 18);
  EXPECT_TRUE(args.get_switch("csv"));
  EXPECT_FALSE(args.get_switch("periodic"));
  EXPECT_DOUBLE_EQ(args.get_double("seu"), 1.7e-5);
  EXPECT_TRUE(args.has("n"));
  EXPECT_FALSE(args.has("k"));
}

TEST(Args, DefaultsAndRequired) {
  const Args args = parse({"mttf"});
  EXPECT_EQ(args.get_long_or("n", 18), 18);
  EXPECT_DOUBLE_EQ(args.get_double_or("seu", 0.5), 0.5);
  EXPECT_EQ(args.get_string_or("arrangement", "simplex"), "simplex");
  EXPECT_THROW(args.get_string("missing"), ArgError);
  EXPECT_THROW(args.get_double("missing"), ArgError);
}

TEST(Args, ParseErrors) {
  EXPECT_THROW(parse({}), ArgError);                       // no command
  EXPECT_THROW(parse({"--flag", "x"}), ArgError);          // flag first
  EXPECT_THROW(parse({"cmd", "bare"}), ArgError);          // non-flag token
  EXPECT_THROW(parse({"cmd", "--a", "1", "--a", "2"}), ArgError);  // dup
  const Args bad_num = parse({"cmd", "--x", "12abc"});
  EXPECT_THROW(bad_num.get_double("x"), ArgError);
  EXPECT_THROW(bad_num.get_long("x"), ArgError);
  const Args has_value = parse({"cmd", "--x", "1"});
  EXPECT_THROW(has_value.get_switch("x"), ArgError);  // switch with value
}

TEST(Args, DoubleList) {
  const Args args = parse({"sweep", "--values", "1e-5,2e-6,3"});
  const std::vector<double> values = args.get_double_list("values");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 1e-5);
  EXPECT_DOUBLE_EQ(values[2], 3.0);
  const Args bad = parse({"sweep", "--values", "1,,2"});
  EXPECT_THROW(bad.get_double_list("values"), ArgError);
}

TEST(Args, RequireKnownCatchesTypos) {
  const Args args = parse({"analyze", "--huors", "48"});
  EXPECT_THROW(args.require_known({"hours"}), ArgError);
  const Args ok = parse({"analyze", "--hours", "48"});
  EXPECT_NO_THROW(ok.require_known({"hours"}));
}

// ---- command layer ----

int run(std::initializer_list<const char*> tokens, std::string* out_text,
        std::string* err_text = nullptr) {
  std::vector<const char*> argv{"rsmem_cli"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  std::ostringstream out, err;
  const int code =
      run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return code;
}

TEST(Cli, HelpListsCommands) {
  std::string out;
  EXPECT_EQ(run({"help"}, &out), 0);
  EXPECT_NE(out.find("analyze"), std::string::npos);
  EXPECT_NE(out.find("simulate"), std::string::npos);
  EXPECT_NE(out.find("mttf"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  std::string out, err;
  EXPECT_EQ(run({"frobnicate"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(Cli, VersionNamesSelectedGfBackend) {
  std::string out;
  EXPECT_EQ(run({"version"}, &out), 0);
  EXPECT_NE(out.find("rsmem_cli"), std::string::npos);
  EXPECT_NE(out.find("build:"), std::string::npos);
  // The reported backend must be the one the dispatcher actually selected.
  const std::string want =
      std::string("gf backend: ") + rsmem::gf::simd::active().name + "\n";
  EXPECT_NE(out.find(want), std::string::npos) << out;
}

TEST(Cli, VersionListsCompiledAndSupportedBackends) {
  std::string out;
  EXPECT_EQ(run({"version"}, &out), 0);
  // The portable backends are always compiled in and always usable, so both
  // inventory lines exist and contain at least them; the supported list must
  // include the selected backend and only name compiled backends.
  const auto line_after = [&](const std::string& tag) {
    const std::size_t at = out.find(tag);
    EXPECT_NE(at, std::string::npos) << out;
    if (at == std::string::npos) return std::string();
    const std::size_t end = out.find('\n', at);
    return out.substr(at + tag.size(),
                      end == std::string::npos ? std::string::npos
                                               : end - at - tag.size());
  };
  const std::string compiled = line_after("gf backends compiled:");
  const std::string supported = line_after("gf backends supported:");
  for (const char* always : {"scalar", "swar"}) {
    EXPECT_NE(compiled.find(always), std::string::npos) << compiled;
    EXPECT_NE(supported.find(always), std::string::npos) << supported;
  }
  EXPECT_NE(supported.find(rsmem::gf::simd::active().name),
            std::string::npos)
      << supported;
  for (const rsmem::gf::simd::Backend b : rsmem::gf::simd::kAllBackends) {
    if (rsmem::gf::simd::backend_supported(b)) {
      EXPECT_NE(supported.find(rsmem::gf::simd::to_string(b)),
                std::string::npos)
          << supported;
      EXPECT_NE(compiled.find(rsmem::gf::simd::to_string(b)),
                std::string::npos)
          << compiled;
    }
  }
}

TEST(Cli, AnalyzeProducesCurve) {
  std::string out;
  EXPECT_EQ(run({"analyze", "--seu", "1.7e-5", "--hours", "48", "--points",
                 "3"},
                &out),
            0);
  EXPECT_NE(out.find("48.00"), std::string::npos);
  EXPECT_NE(out.find("P_fail"), std::string::npos);
}

TEST(Cli, AnalyzeCsvAndPeriodic) {
  std::string out;
  EXPECT_EQ(run({"analyze", "--seu", "1e-2", "--tsc", "1800", "--periodic",
                 "--csv", "--points", "3"},
                &out),
            0);
  EXPECT_NE(out.find("hours,P_fail,BER"), std::string::npos);
}

TEST(Cli, AnalyzeRejectsBadFlags) {
  std::string out, err;
  EXPECT_EQ(run({"analyze", "--bogus", "1"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown flag"), std::string::npos);
  EXPECT_EQ(run({"analyze", "--points", "1"}, &out, &err), 2);
  EXPECT_EQ(run({"analyze", "--arrangement", "triplex"}, &out, &err), 2);
}

TEST(Cli, MttfOutputsHours) {
  std::string out;
  EXPECT_EQ(run({"mttf", "--perm", "1e-3"}, &out), 0);
  EXPECT_NE(out.find("MTTF"), std::string::npos);
  EXPECT_NE(out.find("months"), std::string::npos);
  // Zero-rate spec: library throws, CLI reports exit code 1.
  std::string err;
  EXPECT_EQ(run({"mttf"}, &out, &err), 1);
}

TEST(Cli, SimulateReportsEstimate) {
  std::string out;
  EXPECT_EQ(run({"simulate", "--seu", "2e-3", "--trials", "50", "--hours",
                 "48", "--seed", "9"},
                &out),
            0);
  EXPECT_NE(out.find("P_fail estimate"), std::string::npos);
  EXPECT_NE(out.find("Markov prediction"), std::string::npos);
  std::string err;
  EXPECT_EQ(run({"simulate", "--policy", "nonsense"}, &out, &err), 2);
}

TEST(Cli, SimulateParallelMatchesSingleThread) {
  // The campaign engine guarantees bit-identical results for every thread
  // count; everything above the campaign/throughput footer must match.
  const std::vector<const char*> base{"simulate", "--seu",  "2e-3",
                                      "--trials", "400",    "--hours", "24",
                                      "--seed",   "9",      "--chunk", "64"};
  const auto run_with_threads = [&](const char* threads, std::string* out) {
    std::vector<const char*> cmd{base};
    cmd.push_back("--threads");
    cmd.push_back(threads);
    std::vector<const char*> argv{"rsmem_cli"};
    argv.insert(argv.end(), cmd.begin(), cmd.end());
    std::ostringstream os, es;
    const int rc = run_cli(static_cast<int>(argv.size()), argv.data(), os, es);
    *out = os.str();
    return rc;
  };
  std::string out1, out8;
  EXPECT_EQ(run_with_threads("1", &out1), 0);
  EXPECT_EQ(run_with_threads("8", &out8), 0);
  const auto strip_footer = [](const std::string& s) {
    return s.substr(0, s.find("campaign:"));
  };
  EXPECT_FALSE(strip_footer(out1).empty());
  EXPECT_EQ(strip_footer(out1), strip_footer(out8));
  EXPECT_NE(out8.find("trials/s"), std::string::npos);
  // Invalid shard size is a usage error.
  std::string out, err;
  EXPECT_EQ(run({"simulate", "--chunk", "0"}, &out, &err), 2);
}

TEST(Cli, CostPrintsBothModels) {
  std::string out;
  EXPECT_EQ(run({"cost", "--n", "36"}, &out), 0);
  EXPECT_NE(out.find("308"), std::string::npos);  // the paper fit
  EXPECT_NE(out.find("structural"), std::string::npos);
}

TEST(Cli, SensitivityCommand) {
  std::string out;
  EXPECT_EQ(run({"sensitivity", "--seu", "1.7e-5", "--hours", "48"}, &out),
            0);
  EXPECT_NE(out.find("E[seu rate]"), std::string::npos);
  // Elasticity ~ 2: printed as 1.99x or 2.00x.
  EXPECT_TRUE(out.find("1.99") != std::string::npos ||
              out.find("2.00") != std::string::npos)
      << out;
}

TEST(Cli, SparingCommand) {
  std::string out;
  EXPECT_EQ(run({"sparing", "--modules", "8", "--spares-max", "2",
                 "--module-rate", "1e-5", "--hours", "10000"},
                &out),
            0);
  EXPECT_NE(out.find("reliability"), std::string::npos);
  std::string err;
  EXPECT_EQ(run({"sparing", "--spares-max", "2"}, &out, &err), 2);  // rate
  EXPECT_EQ(run({"sparing", "--module-rate", "1e-5", "--spares-max", "-1"},
                &out, &err),
            2);
}

TEST(Cli, ParetoCommand) {
  std::string out;
  EXPECT_EQ(run({"pareto", "--seu", "1.7e-5", "--perm", "1e-6", "--hours",
                 "48"},
                &out),
            0);
  EXPECT_NE(out.find("(36,16)"), std::string::npos);
  EXPECT_NE(out.find("*"), std::string::npos);  // some Pareto point
}

TEST(Cli, LatencyCommand) {
  std::string out;
  EXPECT_EQ(run({"latency", "--read-rate", "1e5", "--cycles", "74",
                 "--horizon", "0.2"},
                &out),
            0);
  EXPECT_NE(out.find("mean latency [us]"), std::string::npos);
  std::string err;
  EXPECT_EQ(run({"latency", "--cycles", "74"}, &out, &err), 2);  // rate req
  // Diverging load reported as an error, not a hang.
  EXPECT_EQ(run({"latency", "--read-rate", "1e9", "--cycles", "74"}, &out,
                &err),
            1);
}

TEST(Cli, ChipkillCommand) {
  std::string out;
  EXPECT_EQ(run({"chipkill", "--chip-rate", "1e-7", "--words", "1024",
                 "--hours", "8760"},
                &out),
            0);
  EXPECT_NE(out.find("chip-kill (correlated)"), std::string::npos);
  EXPECT_NE(out.find("independent words"), std::string::npos);
}

TEST(Cli, SweepOverSeuRates) {
  std::string out;
  EXPECT_EQ(run({"sweep", "--param", "seu", "--values",
                 "7.3e-7,3.6e-6,1.7e-5", "--hours", "48"},
                &out),
            0);
  EXPECT_NE(out.find("7.3"), std::string::npos);
  std::string err;
  EXPECT_EQ(run({"sweep", "--param", "bogus", "--values", "1"}, &out, &err),
            2);
}

// ---- serve / query / loadgen flag handling ----

TEST(Cli, ServeRejectsConflictingAndMalformedEndpoints) {
  std::string out, err;
  // --socket and --listen are mutually exclusive.
  EXPECT_EQ(run({"serve", "--socket", "/tmp/x.sock", "--listen",
                 "localhost:0"},
                &out, &err),
            2);
  EXPECT_NE(err.find("not both"), std::string::npos);
  // Malformed host:port endpoints are InvalidConfig => exit 2.
  for (const char* bad : {"nocolon", ":8080", "localhost:", "localhost:abc",
                          "localhost:70000", "unix:"}) {
    err.clear();
    EXPECT_EQ(run({"serve", "--listen", bad}, &out, &err), 2) << bad;
    EXPECT_NE(err.find("InvalidConfig"), std::string::npos) << err;
  }
  // Scheduler knobs must be sane.
  EXPECT_EQ(run({"serve", "--max-queue", "0"}, &out, &err), 2);
  EXPECT_EQ(run({"serve", "--batch", "0"}, &out, &err), 2);
  EXPECT_EQ(run({"serve", "--threads", "-1"}, &out, &err), 2);
  // Typos are caught by require_known.
  EXPECT_EQ(run({"serve", "--sockett", "/tmp/x.sock"}, &out, &err), 2);
  // A server with zero shards cannot route anything.
  err.clear();
  EXPECT_EQ(run({"serve", "--shards", "0"}, &out, &err), 2);
  EXPECT_NE(err.find("InvalidConfig"), std::string::npos);
  EXPECT_NE(err.find("shards"), std::string::npos);
}

TEST(Cli, QueryRejectsBadFlagsWithoutConnecting) {
  std::string out, err;
  // Negative deadline is InvalidConfig => exit 2, before any socket IO.
  EXPECT_EQ(run({"query", "--deadline", "-5"}, &out, &err), 2);
  EXPECT_NE(err.find("InvalidConfig"), std::string::npos);
  EXPECT_NE(err.find("deadline"), std::string::npos);
  // Malformed --at endpoint.
  err.clear();
  EXPECT_EQ(run({"query", "--at", "host:port:extra:colon"}, &out, &err), 2);
  EXPECT_NE(err.find("InvalidConfig"), std::string::npos);
  // Unknown query kind.
  EXPECT_EQ(run({"query", "--kind", "frobnicate"}, &out, &err), 2);
}

TEST(Cli, QueryAgainstMissingSocketFailsWithTypedError) {
  std::string out, err;
  EXPECT_EQ(run({"query", "--at", "unix:/tmp/rsmem-no-such-daemon.sock",
                 "--kind", "ping"},
                &out, &err),
            1);
  EXPECT_NE(err.find("error ["), std::string::npos);
}

TEST(Cli, LoadgenValidatesShape) {
  std::string out, err;
  EXPECT_EQ(run({"loadgen", "--clients", "0"}, &out, &err), 2);
  EXPECT_NE(err.find("InvalidConfig"), std::string::npos);
  EXPECT_EQ(run({"loadgen", "--requests", "0"}, &out, &err), 2);
  EXPECT_EQ(run({"loadgen", "--kind", "ping"}, &out, &err), 2);
  EXPECT_EQ(run({"loadgen", "--at", "bad-endpoint"}, &out, &err), 2);
  EXPECT_EQ(run({"loadgen", "--deadline", "-1"}, &out, &err), 2);
  // Sharding and open-loop knobs are validated before any server starts.
  EXPECT_EQ(run({"loadgen", "--shards", "0"}, &out, &err), 2);
  EXPECT_EQ(run({"loadgen", "--rate", "-1"}, &out, &err), 2);
  // --shard-sweep needs a self-hosted server (no --at) and sane counts.
  EXPECT_EQ(run({"loadgen", "--at", "unix:/tmp/x.sock", "--shard-sweep",
                 "1,2"},
                &out, &err),
            2);
  EXPECT_EQ(run({"loadgen", "--shard-sweep", "0,2"}, &out, &err), 2);
  EXPECT_EQ(run({"loadgen", "--shard-sweep", "1.5"}, &out, &err), 2);
}

TEST(Cli, LoadgenOpenLoopSelfHostedSmokeRun) {
  // Open-loop mode across 2 shards over the real wire protocol; a small
  // uncapped burst that must complete with zero errors and zero rejections.
  std::string out, err;
  EXPECT_EQ(run({"loadgen", "--clients", "2", "--requests", "4", "--distinct",
                 "2", "--threads", "2", "--hours", "24", "--shards", "2",
                 "--open-loop", "--max-queue", "256"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("open"), std::string::npos);
  EXPECT_NE(out.find("rejected"), std::string::npos);
}

TEST(Cli, LoadgenSelfHostedSmokeRun) {
  // A tiny end-to-end run over the real wire protocol: in-process server
  // on a private Unix socket, 2 clients x 4 requests over 2 distinct keys.
  std::string out, err;
  EXPECT_EQ(run({"loadgen", "--clients", "2", "--requests", "4", "--distinct",
                 "2", "--threads", "2", "--hours", "24"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("requests"), std::string::npos);
  EXPECT_NE(out.find("hit rate"), std::string::npos);
  EXPECT_NE(out.find("p99"), std::string::npos);
}

TEST(Cli, HelpListsServiceCommands) {
  std::string out;
  EXPECT_EQ(run({"help"}, &out), 0);
  EXPECT_NE(out.find("serve"), std::string::npos);
  EXPECT_NE(out.find("query"), std::string::npos);
  EXPECT_NE(out.find("loadgen"), std::string::npos);
  EXPECT_NE(out.find("chaos"), std::string::npos);
}

TEST(Cli, ServeValidatesHardeningFlags) {
  std::string out, err;
  // Negative timeouts/rates and a sub-minimum frame cap are all typed
  // InvalidConfig => exit 2, before any socket is bound.
  EXPECT_EQ(run({"serve", "--idle-timeout-ms", "-1"}, &out, &err), 2);
  EXPECT_NE(err.find("InvalidConfig"), std::string::npos) << err;
  err.clear();
  EXPECT_EQ(run({"serve", "--max-frames-per-second", "-2"}, &out, &err), 2);
  EXPECT_NE(err.find("InvalidConfig"), std::string::npos) << err;
  err.clear();
  EXPECT_EQ(run({"serve", "--max-frame-bytes", "10"}, &out, &err), 2);
  EXPECT_NE(err.find("InvalidConfig"), std::string::npos) << err;
  // The new flags are spelled right or rejected (require_known).
  EXPECT_EQ(run({"serve", "--snapshott", "/tmp/x.snap"}, &out, &err), 2);
}

TEST(Cli, ChaosValidatesPresetAndShape) {
  std::string out, err;
  // Only the serve-churn preset exists; anything else is a usage error.
  EXPECT_EQ(run({"chaos", "--preset", "frobnicate"}, &out, &err), 2);
  EXPECT_NE(err.find("serve-churn"), std::string::npos) << err;
  err.clear();
  EXPECT_EQ(run({"chaos", "--requests", "0"}, &out, &err), 2);
  EXPECT_EQ(run({"chaos", "--distinct", "0"}, &out, &err), 2);
  EXPECT_EQ(run({"chaos", "--timeout-ms", "0"}, &out, &err), 2);
  EXPECT_EQ(run({"chaos", "--seedd", "1"}, &out, &err), 2);
}

TEST(Cli, ChaosCampaignSmokeRun) {
  std::string out;
  EXPECT_EQ(run({"chaos", "--preset", "serve-churn", "--seed", "3",
                 "--requests", "4", "--distinct", "2"},
                &out),
            0);
  EXPECT_NE(out.find("CHAOS CAMPAIGN PASSED"), std::string::npos) << out;
  EXPECT_NE(out.find("snapshot-warm-start"), std::string::npos);
  EXPECT_NE(out.find("mixed-storm"), std::string::npos);
}

TEST(Cli, VersionReportsChaosShim) {
  std::string out;
  EXPECT_EQ(run({"version"}, &out), 0);
  EXPECT_NE(out.find("chaos shim: available"), std::string::npos) << out;
}

}  // namespace
}  // namespace rsmem::cli
