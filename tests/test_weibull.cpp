// Tests for the Weibull NHPP process and wearout fault injection.
#include "sim/weibull.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "memory/simplex_system.h"

namespace rsmem::sim {
namespace {

TEST(WeibullProcess, Validation) {
  EXPECT_THROW(WeibullProcess(0.0, 1.0, Rng{1}), std::invalid_argument);
  EXPECT_THROW(WeibullProcess(1.0, -1.0, Rng{1}), std::invalid_argument);
  WeibullProcess p{1.0, 1.0, Rng{1}};
  EXPECT_THROW(p.next_after(-1.0), std::invalid_argument);
  EXPECT_THROW(p.cumulative_hazard(-1.0), std::invalid_argument);
}

TEST(WeibullProcess, CumulativeHazard) {
  const WeibullProcess p{2.0, 10.0, Rng{1}};
  EXPECT_DOUBLE_EQ(p.cumulative_hazard(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.cumulative_hazard(10.0), 1.0);
  EXPECT_DOUBLE_EQ(p.cumulative_hazard(20.0), 4.0);
}

TEST(WeibullProcess, ShapeOneIsExponential) {
  // beta = 1: inter-arrival times are iid Exp(1/eta); check the mean.
  WeibullProcess p{1.0, 2.0, Rng{7}};
  double t = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) t = p.next_after(t);
  EXPECT_NEAR(t / n, 2.0, 0.05);  // mean gap = eta
}

TEST(WeibullProcess, CountsMatchCumulativeHazard) {
  // E[N(0,T)] = (T/eta)^beta for any beta.
  for (const double beta : {0.5, 1.0, 2.0, 3.0}) {
    WeibullProcess p{beta, 50.0, Rng{static_cast<std::uint64_t>(beta * 10)}};
    double total = 0.0;
    const int reps = 2000;
    for (int r = 0; r < reps; ++r) {
      WeibullProcess fresh{beta, 50.0,
                           Rng{static_cast<std::uint64_t>(beta * 1000 + r)}};
      total += static_cast<double>(fresh.arrivals_in(0.0, 100.0).size());
    }
    const double expected = std::pow(100.0 / 50.0, beta);
    EXPECT_NEAR(total / reps, expected, expected * 0.05 + 0.02)
        << "beta=" << beta;
  }
}

TEST(WeibullProcess, WearoutClustersLate) {
  // beta = 3: over [0, T], 7/8 of the expected arrivals land in the second
  // half ((1 - (1/2)^3) of the cumulative hazard).
  WeibullProcess p{3.0, 10.0, Rng{77}};
  int early = 0, late = 0;
  for (int r = 0; r < 3000; ++r) {
    WeibullProcess fresh{3.0, 10.0, Rng{static_cast<std::uint64_t>(r)}};
    for (const double t : fresh.arrivals_in(0.0, 20.0)) {
      (t < 10.0 ? early : late) += 1;
    }
  }
  const double late_fraction =
      static_cast<double>(late) / std::max(1, early + late);
  EXPECT_NEAR(late_fraction, 7.0 / 8.0, 0.02);
}

TEST(WearoutInjection, ShapeValidation) {
  memory::SimplexSystemConfig cfg;
  cfg.rates.perm_rate_per_symbol_hour = 1e-3;
  cfg.rates.perm_weibull_shape = 0.0;
  EXPECT_THROW(memory::SimplexSystem{cfg}, std::invalid_argument);
}

TEST(WearoutInjection, MatchedCountsAtCharacteristicLife) {
  // At t = 1/rate the expected per-symbol fault count is 1 for EVERY shape;
  // compare injected totals between beta = 1 and beta = 2 at that horizon.
  const double rate = 0.01;  // characteristic life = 100 h
  double total_const = 0.0, total_wear = 0.0;
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    memory::SimplexSystemConfig cfg;
    cfg.rates.perm_rate_per_symbol_hour = rate;
    cfg.seed = 10'000 + r;
    memory::SimplexSystem constant{cfg};
    std::vector<gf::Element> data(16, 1);
    constant.store(data);
    constant.advance_to(100.0);
    total_const += constant.stats().permanent_injected;

    cfg.rates.perm_weibull_shape = 2.0;
    memory::SimplexSystem wearing{cfg};
    wearing.store(data);
    wearing.advance_to(100.0);
    total_wear += wearing.stats().permanent_injected;
  }
  // Both should average ~18 faults (n symbols, 1 per symbol).
  EXPECT_NEAR(total_const / reps, 18.0, 1.0);
  EXPECT_NEAR(total_wear / reps, 18.0, 1.0);
}

TEST(WearoutInjection, EarlyLifeIsQuieterUnderWearout) {
  // At t = (1/rate)/4, beta=2 has only 1/4 the cumulative hazard of the
  // constant-rate process.
  const double rate = 0.01;
  double total_const = 0.0, total_wear = 0.0;
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    memory::SimplexSystemConfig cfg;
    cfg.rates.perm_rate_per_symbol_hour = rate;
    cfg.seed = 20'000 + r;
    memory::SimplexSystem constant{cfg};
    std::vector<gf::Element> data(16, 1);
    constant.store(data);
    constant.advance_to(25.0);
    total_const += constant.stats().permanent_injected;

    cfg.rates.perm_weibull_shape = 2.0;
    memory::SimplexSystem wearing{cfg};
    wearing.store(data);
    wearing.advance_to(25.0);
    total_wear += wearing.stats().permanent_injected;
  }
  EXPECT_NEAR(total_const / reps, 18.0 * 0.25, 0.5);
  EXPECT_NEAR(total_wear / reps, 18.0 * 0.0625, 0.3);
}

}  // namespace
}  // namespace rsmem::sim
