// Tests for the decoder cost models and the MIL-HDBK-217-style rate model.
#include <gtest/gtest.h>

#include <stdexcept>

#include "reliability/decoder_cost.h"
#include "reliability/milhdbk217.h"

namespace rsmem::reliability {
namespace {

TEST(DecoderCost, PaperHeadlineNumbers) {
  // Paper Section 6: Td(36,16) ~= 308, Td(18,16) ~= 74 cycles.
  const DecoderCostModel model;
  EXPECT_DOUBLE_EQ(model.decode_cycles(36, 16), 308.0);
  EXPECT_DOUBLE_EQ(model.decode_cycles(18, 16), 74.0);
  // "more than four times higher"
  EXPECT_GT(model.decode_cycles(36, 16) / model.decode_cycles(18, 16), 4.0);
}

TEST(DecoderCost, Validation) {
  const DecoderCostModel model;
  EXPECT_THROW(model.decode_cycles(16, 16), std::invalid_argument);
  EXPECT_THROW(model.area_gates(18, 0, 8), std::invalid_argument);
  EXPECT_THROW(model.area_gates(18, 16, 0), std::invalid_argument);
}

TEST(DecoderCost, AreaGrowsWithParityAndSymbolWidth) {
  const DecoderCostModel model;
  EXPECT_GT(model.area_gates(36, 16, 8), model.area_gates(18, 16, 8));
  EXPECT_GT(model.area_gates(18, 16, 10), model.area_gates(18, 16, 8));
}

TEST(DecoderCost, ArrangementCosts) {
  const DecoderCostModel model;
  const ArrangementCost simplex3616 = simplex_cost(model, 36, 16, 8);
  const ArrangementCost duplex1816 = duplex_cost(model, 18, 16, 8);
  // Paper: one RS(36,16) decoder needs MORE area than two RS(18,16).
  EXPECT_GT(simplex3616.area_gates, duplex1816.area_gates);
  // And its access latency is > 4x the duplex's (parallel decoders).
  EXPECT_GT(simplex3616.decode_cycles / duplex1816.decode_cycles, 4.0);
}

TEST(MilHdbk217, FactorMonotonicity) {
  // Temperature acceleration grows with junction temperature.
  EXPECT_GT(MilHdbk217Model::pi_temperature(85.0),
            MilHdbk217Model::pi_temperature(25.0));
  EXPECT_NEAR(MilHdbk217Model::pi_temperature(25.0), 1.0, 1e-12);
  // Die complexity grows with capacity.
  EXPECT_GT(MilHdbk217Model::c1_die_complexity(16e6),
            MilHdbk217Model::c1_die_complexity(1e6));
  // Extrapolated bracket beyond the table keeps growing.
  EXPECT_GT(MilHdbk217Model::c1_die_complexity(1e9),
            MilHdbk217Model::c1_die_complexity(64e6));
  // COTS quality is worse (larger factor) than space-certified.
  EXPECT_GT(MilHdbk217Model::pi_quality(Quality::kCommercial),
            MilHdbk217Model::pi_quality(Quality::kSpaceCertified));
  // Package factor grows with pins.
  EXPECT_GT(MilHdbk217Model::c2_package(64), MilHdbk217Model::c2_package(16));
  // Mature parts have lower learning factor, clamped at 1.
  EXPECT_GT(MilHdbk217Model::pi_learning(0.0),
            MilHdbk217Model::pi_learning(2.0));
  EXPECT_DOUBLE_EQ(MilHdbk217Model::pi_learning(20.0), 1.0);
}

TEST(MilHdbk217, Validation) {
  EXPECT_THROW(MilHdbk217Model::c1_die_complexity(0.0),
               std::invalid_argument);
  EXPECT_THROW(MilHdbk217Model::c2_package(0), std::invalid_argument);
  EXPECT_THROW(MilHdbk217Model::pi_temperature(-300.0),
               std::invalid_argument);
  EXPECT_THROW(MilHdbk217Model::pi_learning(-1.0), std::invalid_argument);
  EXPECT_THROW(
      MilHdbk217Model::erasure_rate_per_symbol_day(MemoryChipSpec{}, 0, 1.0),
      std::invalid_argument);
}

TEST(MilHdbk217, ChipRateInPlausibleRange) {
  // A 16 Mbit COTS SRAM around 40 C in space flight: published 217F rates
  // for MOS memories land between ~0.01 and ~10 failures/1e6 h.
  const MemoryChipSpec spec;
  const double rate = MilHdbk217Model::chip_failures_per_1e6_hours(spec);
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 50.0);
}

TEST(MilHdbk217, SymbolRateCoversThePaperSweepRange) {
  // The paper sweeps lambda_e in [1e-10, 1e-4] per symbol per day
  // (Figs. 8-10). The parametric model must be able to generate rates at
  // both ends of that range with physically sensible knobs.
  MemoryChipSpec benign;
  benign.quality = Quality::kSpaceCertified;
  benign.junction_temp_celsius = 20.0;
  benign.years_in_production = 10.0;
  const double low = MilHdbk217Model::erasure_rate_per_symbol_day(
      benign, 8, /*words_per_chip=*/2.0 * 1024 * 1024);
  EXPECT_LT(low, 1e-8);
  EXPECT_GT(low, 1e-16);

  MemoryChipSpec harsh;
  harsh.quality = Quality::kCommercial;
  harsh.junction_temp_celsius = 110.0;
  harsh.years_in_production = 0.0;
  harsh.capacity_bits = 1e9;
  const double high = MilHdbk217Model::erasure_rate_per_symbol_day(
      harsh, 8, /*words_per_chip=*/64.0);
  EXPECT_GT(high, 1e-5);
}

}  // namespace
}  // namespace rsmem::reliability
