// Integration tests for the functional simplex/duplex memory systems.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/units.h"
#include "memory/duplex_system.h"
#include "memory/simplex_system.h"

namespace rsmem::memory {
namespace {

std::vector<Element> test_data() {
  std::vector<Element> data(16);
  for (unsigned i = 0; i < 16; ++i) data[i] = 3 * i + 1;
  return data;
}

TEST(SimplexSystem, StoreReadWithoutFaults) {
  SimplexSystemConfig cfg;
  SimplexSystem sys{cfg};
  EXPECT_THROW(sys.advance_to(1.0), std::logic_error);
  EXPECT_THROW(sys.read(), std::logic_error);
  sys.store(test_data());
  EXPECT_THROW(sys.store(test_data()), std::logic_error);
  sys.advance_to(1000.0);
  const ReadResult r = sys.read();
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.data_correct);
  EXPECT_EQ(r.data, test_data());
  EXPECT_EQ(r.outcome.status, rs::DecodeStatus::kNoError);
  EXPECT_EQ(sys.stats().seu_injected, 0u);
}

TEST(SimplexSystem, SurvivesLowFaultRateAndCorrects) {
  SimplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 1e-4;  // ~0.7 SEU over 48 h on the word
  cfg.seed = 11;
  SimplexSystem sys{cfg};
  sys.store(test_data());
  sys.advance_to(48.0);
  const ReadResult r = sys.read();
  // With <= 1 SEU the read must succeed with correct data.
  if (sys.stats().seu_injected <= 1) {
    EXPECT_TRUE(r.success);
    EXPECT_TRUE(r.data_correct);
  }
}

TEST(SimplexSystem, ScrubbingKeepsHighSeuRateWordAlive) {
  // An SEU rate that accumulates many flips over the run; without scrubbing
  // failure is near-certain, with aggressive scrubbing survival is likely.
  // ~0.29 flips/h on the word: ~14 flips over 48 h, so an unscrubbed word
  // almost surely accumulates >1 symbol error and dies, while scrubbing
  // every 0.02 h leaves ~2e-5 double-hit probability per window.
  SimplexSystemConfig no_scrub;
  no_scrub.rates.seu_rate_per_bit_hour = 0.002;
  int plain_survived = 0;
  int scrubbed_survived = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SimplexSystemConfig c = no_scrub;
    c.seed = 100 + seed;
    SimplexSystem sys{c};
    sys.store(test_data());
    sys.advance_to(48.0);
    const ReadResult r = sys.read();
    plain_survived += (r.success && r.data_correct);

    c.scrub_policy = ScrubPolicy::kPeriodic;
    c.scrub_period_hours = 0.02;
    SimplexSystem scrubbed{c};
    scrubbed.store(test_data());
    scrubbed.advance_to(48.0);
    const ReadResult rs = scrubbed.read();
    EXPECT_GT(scrubbed.stats().scrubs_attempted, 2000u);
    scrubbed_survived += (rs.success && rs.data_correct);
  }
  EXPECT_LE(plain_survived, 5);       // unscrubbed mostly dies
  EXPECT_GE(scrubbed_survived, 15);   // scrubbing must rescue most runs
}

TEST(SimplexSystem, PermanentFaultsBecomeErasuresAndAreRidden) {
  SimplexSystemConfig cfg;
  cfg.rates.perm_rate_per_symbol_hour = 0.001;
  cfg.seed = 31;
  SimplexSystem sys{cfg};
  sys.store(test_data());
  sys.advance_to(60.0);  // expect ~1 permanent fault (18*0.001*60)
  const ReadResult r = sys.read();
  if (sys.stats().permanent_injected <= 2) {
    EXPECT_TRUE(r.success);
    EXPECT_TRUE(r.data_correct);
  }
}

TEST(SimplexSystem, DeterministicGivenSeed) {
  SimplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 0.01;
  cfg.rates.perm_rate_per_symbol_hour = 0.001;
  cfg.scrub_policy = ScrubPolicy::kPeriodic;
  cfg.scrub_period_hours = 1.0;
  cfg.seed = 77;
  auto run = [&] {
    SimplexSystem sys{cfg};
    sys.store(test_data());
    sys.advance_to(48.0);
    const ReadResult r = sys.read();
    return std::tuple{sys.stats().seu_injected,
                      sys.stats().permanent_injected, r.success,
                      r.data_correct};
  };
  EXPECT_EQ(run(), run());
}

TEST(DuplexSystem, StoreReadWithoutFaults) {
  DuplexSystemConfig cfg;
  DuplexSystem sys{cfg};
  sys.store(test_data());
  sys.advance_to(500.0);
  const DuplexReadResult r = sys.read();
  EXPECT_TRUE(r.read.success);
  EXPECT_TRUE(r.read.data_correct);
  EXPECT_EQ(r.arbitration.decision, ArbiterDecision::kWord1);
  const auto pairs = sys.classify_pairs();
  EXPECT_EQ(pairs.x + pairs.y + pairs.b + pairs.e1 + pairs.e2 + pairs.ec, 0u);
}

TEST(DuplexSystem, ClassifiesPairDamage) {
  DuplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 0.002;
  cfg.rates.perm_rate_per_symbol_hour = 0.0005;
  cfg.seed = 41;
  DuplexSystem sys{cfg};
  sys.store(test_data());
  sys.advance_to(100.0);
  const auto pairs = sys.classify_pairs();
  const unsigned touched =
      pairs.x + pairs.y + pairs.b + pairs.e1 + pairs.e2 + pairs.ec;
  EXPECT_LE(touched, 18u);
  // Ground truth: injections happened, so some class must be populated
  // unless flips cancelled (possible but rare at these settings).
  EXPECT_GT(sys.stats().seu_injected + sys.stats().permanent_injected, 0u);
}

TEST(DuplexSystem, RidesThroughPermanentFaultsThatKillSimplex) {
  // X=3 double erasures are needed to break the duplex; a simplex word dies
  // at 3 single erasures. At a rate giving ~4 permanents per module over
  // the run, the duplex should survive clearly more often.
  int simplex_ok = 0, duplex_ok = 0;
  const int kRuns = 30;
  for (int i = 0; i < kRuns; ++i) {
    SimplexSystemConfig scfg;
    scfg.rates.perm_rate_per_symbol_hour = 0.0045;  // ~3.9 faults / 48 h
    scfg.seed = 1000 + i;
    SimplexSystem simplex{scfg};
    simplex.store(test_data());
    simplex.advance_to(48.0);
    const ReadResult sr = simplex.read();
    simplex_ok += (sr.success && sr.data_correct);

    DuplexSystemConfig dcfg;
    dcfg.rates.perm_rate_per_symbol_hour = 0.0045;
    dcfg.seed = 1000 + i;
    DuplexSystem duplex{dcfg};
    duplex.store(test_data());
    duplex.advance_to(48.0);
    const DuplexReadResult dr = duplex.read();
    duplex_ok += (dr.read.success && dr.read.data_correct);
  }
  EXPECT_GT(duplex_ok, simplex_ok);
  EXPECT_GE(duplex_ok, kRuns - 2);  // duplex: near-certain survival here
}

TEST(DuplexSystem, ScrubbingClearsTransientsKeepsErasures) {
  DuplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 0.01;
  cfg.scrub_policy = ScrubPolicy::kPeriodic;
  cfg.scrub_period_hours = 0.25;
  cfg.seed = 51;
  DuplexSystem sys{cfg};
  sys.store(test_data());
  sys.advance_to(48.0);
  EXPECT_GT(sys.stats().scrubs_attempted, 100u);
  const DuplexReadResult r = sys.read();
  EXPECT_TRUE(r.read.success);
  EXPECT_TRUE(r.read.data_correct);
}

TEST(DuplexSystem, DeterministicGivenSeed) {
  DuplexSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 0.005;
  cfg.rates.perm_rate_per_symbol_hour = 0.002;
  cfg.seed = 99;
  auto run = [&] {
    DuplexSystem sys{cfg};
    sys.store(test_data());
    sys.advance_to(48.0);
    const auto pairs = sys.classify_pairs();
    return std::tuple{sys.stats().seu_injected, pairs.x, pairs.y, pairs.b,
                      pairs.e1, pairs.e2, pairs.ec};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rsmem::memory
