// Tests for the TMR baseline system, the closed-form baselines, and the
// quasi-stationary hazard analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/units.h"
#include "markov/quasi_stationary.h"
#include "markov/uniformization.h"
#include "memory/tmr_system.h"
#include "models/baselines.h"
#include "models/ber.h"
#include "models/simplex_model.h"
#include "sim/rng.h"

namespace rsmem {
namespace {

std::vector<gf::Element> test_data() {
  std::vector<gf::Element> data(16);
  for (unsigned i = 0; i < 16; ++i) data[i] = 0x5A ^ i;
  return data;
}

TEST(TmrSystem, Validation) {
  memory::TmrSystemConfig cfg;
  cfg.word_symbols = 0;
  EXPECT_THROW(memory::TmrSystem{cfg}, std::invalid_argument);
  memory::TmrSystemConfig ok;
  memory::TmrSystem sys{ok};
  EXPECT_THROW(sys.advance_to(1.0), std::logic_error);
  EXPECT_THROW(sys.read(), std::logic_error);
  std::vector<gf::Element> wrong(3, 0);
  EXPECT_THROW(sys.store(wrong), std::invalid_argument);
}

TEST(TmrSystem, NoFaultsCleanRead) {
  memory::TmrSystemConfig cfg;
  memory::TmrSystem sys{cfg};
  sys.store(test_data());
  sys.advance_to(100.0);
  const memory::ReadResult r = sys.read();
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.data_correct);
  EXPECT_EQ(r.data, test_data());
  EXPECT_EQ(sys.corrupted_voted_bits(), 0u);
}

TEST(TmrSystem, VoterMasksSingleModuleDamage) {
  // High SEU rate but the voter should ride out single-module flips while
  // coincident double-flips on the same bit remain rare.
  memory::TmrSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 1e-4;
  int correct = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    cfg.seed = 100 + seed;
    memory::TmrSystem sys{cfg};
    sys.store(test_data());
    sys.advance_to(48.0);
    correct += sys.read().data_correct;
  }
  EXPECT_GE(correct, 18);  // q ~ 0.0048/bit -> word fail ~ 0.9% per run
}

TEST(TmrSystem, ScrubReconvergesModules) {
  // At this rate an UNscrubbed TMR word almost surely fails by 48 h
  // (per-bit odd-flip q ~ 0.087 -> majority-wrong ~ 0.95 per word), while
  // scrubbing every 0.1 h leaves only the ~1.5% chance of a double hit on
  // one bit inside a single window (which, once mis-scrubbed, is latched
  // forever -- real TMR behaviour).
  memory::TmrSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 2e-3;
  int plain_ok = 0;
  int scrubbed_ok = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    cfg.scrub_policy = memory::ScrubPolicy::kNone;
    cfg.seed = 900 + seed;
    memory::TmrSystem plain{cfg};
    plain.store(test_data());
    plain.advance_to(48.0);
    plain_ok += plain.read().data_correct;

    cfg.scrub_policy = memory::ScrubPolicy::kPeriodic;
    cfg.scrub_period_hours = 0.1;
    memory::TmrSystem scrubbed{cfg};
    scrubbed.store(test_data());
    scrubbed.advance_to(48.0);
    EXPECT_GT(scrubbed.stats().scrubs_attempted, 400u);
    scrubbed_ok += scrubbed.read().data_correct;
  }
  EXPECT_LE(plain_ok, 8);
  EXPECT_GE(scrubbed_ok, 26);
}

TEST(Baselines, Validation) {
  models::BaselineParams p;
  p.m = 0;
  EXPECT_THROW(models::bit_wrong_probability(p, 1.0), std::invalid_argument);
  models::BaselineParams ok;
  EXPECT_THROW(models::bit_wrong_probability(ok, -1.0),
               std::invalid_argument);
}

TEST(Baselines, ClosedFormLimits) {
  models::BaselineParams p;
  p.seu_rate_per_bit_hour = 1e-3;
  EXPECT_DOUBLE_EQ(models::bit_wrong_probability(p, 0.0), 0.0);
  // Long-time limit of the odd-flip probability is 1/2.
  EXPECT_NEAR(models::bit_wrong_probability(p, 1e6), 0.5, 1e-6);
  // Small-time: q ~ lambda t.
  EXPECT_NEAR(models::bit_wrong_probability(p, 0.01), 1e-5, 1e-8);
  // Stuck-at contribution: with only permanent faults, q -> 1/2 as well.
  models::BaselineParams perm;
  perm.erasure_rate_per_symbol_hour = 1.0;
  EXPECT_NEAR(models::bit_wrong_probability(perm, 1e4), 0.5, 1e-6);
}

TEST(Baselines, TmrBeatsUnprotectedAtSmallQ) {
  models::BaselineParams p;
  p.seu_rate_per_bit_hour = 1e-5;
  const double t = 48.0;
  const double plain = models::unprotected_word_fail(p, t);
  const double tmr = models::tmr_word_fail(p, t);
  EXPECT_GT(plain, 0.0);
  EXPECT_LT(tmr, plain / 100.0);  // majority suppresses q to ~3q^2
}

TEST(Baselines, MatchFunctionalTmrMonteCarlo) {
  models::BaselineParams p;
  p.seu_rate_per_bit_hour = 2e-3;  // accelerated
  const double t = 48.0;
  const double predicted = models::tmr_word_fail(p, t);
  ASSERT_GT(predicted, 0.02);

  memory::TmrSystemConfig cfg;
  cfg.rates.seu_rate_per_bit_hour = 2e-3;
  int failures = 0;
  const int kTrials = 400;
  sim::Rng root{31337};
  for (int trial = 0; trial < kTrials; ++trial) {
    cfg.seed = root.next_u64();
    memory::TmrSystem sys{cfg};
    sys.store(test_data());
    sys.advance_to(t);
    failures += !sys.read().data_correct;
  }
  const double p_hat = static_cast<double>(failures) / kTrials;
  const double se = std::sqrt(predicted * (1.0 - predicted) / kTrials);
  EXPECT_NEAR(p_hat, predicted, 4.0 * se + 5e-3);
}

TEST(Baselines, MatchFunctionalUnprotectedViaSingleModuleVote) {
  // An unprotected module == TMR where all three copies share one fault
  // pattern is not constructible here; instead check the closed form with
  // stuck-at faults against a direct bit-process simulation.
  models::BaselineParams p;
  p.erasure_rate_per_symbol_hour = 5e-3;
  const double t = 48.0;
  const double predicted = models::unprotected_word_fail(p, t);

  sim::Rng rng{77};
  int failures = 0;
  const int kTrials = 3000;
  const double le_bit = 5e-3 / 8.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    bool wrong = false;
    for (int bit = 0; bit < 16 * 8 && !wrong; ++bit) {
      const bool stuck = rng.uniform() < 1.0 - std::exp(-le_bit * t);
      if (stuck && rng.bernoulli(0.5)) wrong = true;
    }
    failures += wrong;
  }
  const double p_hat = static_cast<double>(failures) / kTrials;
  const double se = std::sqrt(predicted * (1.0 - predicted) / kTrials);
  EXPECT_NEAR(p_hat, predicted, 4.0 * se);
}

}  // namespace
}  // namespace rsmem

namespace rsmem::markov {
namespace {

using linalg::CsrMatrix;

TEST(QuasiStationary, SingleTransientStateHazardIsExitRate) {
  const double mu = 3.5;
  const Ctmc chain{CsrMatrix(2, 2, {{0, 0, -mu}, {0, 1, mu}}), 0};
  const QuasiStationaryResult r = quasi_stationary(chain);
  EXPECT_NEAR(r.hazard, mu, 1e-9);
  ASSERT_EQ(r.distribution.size(), 1u);
  EXPECT_NEAR(r.distribution[0], 1.0, 1e-12);
}

TEST(QuasiStationary, BirthChainHazardIsSlowestStage) {
  // Q_TT is triangular with eigenvalues -a, -b: dominant is -min(a,b).
  const double a = 2.0, b = 0.4;
  const Ctmc chain{
      CsrMatrix(3, 3, {{0, 0, -a}, {0, 1, a}, {1, 1, -b}, {1, 2, b}}), 0};
  const QuasiStationaryResult r = quasi_stationary(chain);
  EXPECT_NEAR(r.hazard, std::min(a, b), 1e-8);
}

TEST(QuasiStationary, Validation) {
  const Ctmc ring{CsrMatrix(2, 2,
                            {{0, 0, -1.0},
                             {0, 1, 1.0},
                             {1, 0, 1.0},
                             {1, 1, -1.0}}),
                  0};
  EXPECT_THROW(quasi_stationary(ring), std::invalid_argument);
}

TEST(QuasiStationary, MatchesLateTransientHazardOfScrubbedSimplex) {
  // The paper's Fig. 7 regime: scrubbed chain settles into constant hazard.
  models::SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = core::per_day_to_per_hour(1.7e-5);
  p.scrub_rate_per_hour = 1.0;
  const StateSpace space = models::SimplexModel{p}.build();
  const QuasiStationaryResult qs = quasi_stationary(space.chain);
  EXPECT_GT(qs.hazard, 0.0);

  const UniformizationSolver solver;
  const std::vector<double> times{40.0, 48.0};
  const std::vector<double> p_fail = solver.occupancy_curve(
      space.chain, space.index_of(models::SimplexModel::fail_state()), times);
  const double empirical_hazard =
      (p_fail[1] - p_fail[0]) / (times[1] - times[0]) / (1.0 - p_fail[1]);
  EXPECT_NEAR(empirical_hazard / qs.hazard, 1.0, 1e-3);
}

}  // namespace
}  // namespace rsmem::markov
