// Tests for the elasticity analysis: the measured log-log slopes must match
// the combinatorial structure of the chains.
#include "analysis/sensitivity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rsmem::analysis {
namespace {

TEST(Sensitivity, Validation) {
  const core::MemorySystemSpec spec;
  EXPECT_THROW(ber_sensitivity(spec, 0.0), std::invalid_argument);
  EXPECT_THROW(ber_sensitivity(spec, 48.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ber_sensitivity(spec, 48.0, 0.9), std::invalid_argument);
}

TEST(Sensitivity, ZeroKnobsReportNaN) {
  core::MemorySystemSpec spec;
  spec.seu_rate_per_bit_day = 1e-5;  // only the SEU knob is active
  const SensitivityReport r = ber_sensitivity(spec, 48.0);
  EXPECT_FALSE(std::isnan(r.seu_elasticity));
  EXPECT_TRUE(std::isnan(r.erasure_elasticity));
  EXPECT_TRUE(std::isnan(r.scrub_period_elasticity));
}

TEST(Sensitivity, SimplexSeuElasticityIsTwo) {
  // Fail needs 2 random errors: BER ~ lambda^2 -> elasticity ~ 2.
  core::MemorySystemSpec spec;
  spec.seu_rate_per_bit_day = 1.7e-5;
  const SensitivityReport r = ber_sensitivity(spec, 48.0);
  EXPECT_NEAR(r.seu_elasticity, 2.0, 0.02);
}

TEST(Sensitivity, SimplexErasureElasticityIsThree) {
  core::MemorySystemSpec spec;
  spec.erasure_rate_per_symbol_day = 1e-6;
  const SensitivityReport r = ber_sensitivity(spec, 730.0 * 24.0 / 12.0);
  EXPECT_NEAR(r.erasure_elasticity, 3.0, 0.05);
}

TEST(Sensitivity, DuplexErasureElasticityIsSix) {
  // Three double-erasures = six erasure events.
  core::MemorySystemSpec spec;
  spec.arrangement = Arrangement::kDuplex;
  spec.erasure_rate_per_symbol_day = 1e-6;
  const SensitivityReport r = ber_sensitivity(spec, 730.0 * 24.0 / 12.0);
  EXPECT_NEAR(r.erasure_elasticity, 6.0, 0.1);
}

TEST(Sensitivity, Rs3616ErasureElasticityIsTwentyOne) {
  // The wide code dies at the 21st erasure.
  core::MemorySystemSpec spec;
  spec.code = {36, 16, 8, 1};
  spec.erasure_rate_per_symbol_day = 1e-4;
  const SensitivityReport r = ber_sensitivity(spec, 730.0);
  EXPECT_NEAR(r.erasure_elasticity, 21.0, 0.5);
}

TEST(Sensitivity, ScrubPeriodElasticityNearOne) {
  // Quasi-steady hazard ~ proportional to the double-hit-per-window
  // probability ~ Tsc, so BER moves ~1:1 with the scrub period.
  core::MemorySystemSpec spec;
  spec.seu_rate_per_bit_day = 1.7e-5;
  spec.scrub_period_seconds = 1800.0;
  const SensitivityReport r = ber_sensitivity(spec, 48.0);
  EXPECT_NEAR(r.scrub_period_elasticity, 1.0, 0.1);
  // And the SEU elasticity stays ~2 (two flips inside one window kill).
  EXPECT_NEAR(r.seu_elasticity, 2.0, 0.1);
}

TEST(Sensitivity, SaturationShrinksElasticity) {
  // Near BER ~ 1 the curve flattens: elasticity falls well below the
  // small-rate exponent.
  core::MemorySystemSpec spec;
  spec.erasure_rate_per_symbol_day = 1e-3;  // saturating over 24 months
  const SensitivityReport r = ber_sensitivity(spec, 730.0 * 24.0);
  EXPECT_LT(r.erasure_elasticity, 1.0);
}

}  // namespace
}  // namespace rsmem::analysis
