// Property tests for the bounded MPMC queues behind the service
// scheduler (service/mpmc_queue.h). The same battery runs against BOTH
// implementations — the lock-free Vyukov ring and its mutex-based twin —
// via a typed test suite, because the two must be behaviourally
// indistinguishable: tools/run_sanitizers.sh A/B-tests the service under
// TSan with either one dispatched through the scheduler.
//
// The concurrency properties proven here, across {1,2,4,8} producers x
// {1,2,4,8} consumers:
//   * no item is lost and none is duplicated (exact multiset match);
//   * items from one producer are never reordered relative to each other
//     (per-producer FIFO: a consumer pops a producer's items in strictly
//     increasing sequence, and so does the merged per-producer stream);
//   * a full queue makes try_push return false immediately — backpressure
//     is a return value, never a blocked thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "service/mpmc_queue.h"

namespace rsmem::service {
namespace {

template <typename Queue>
class MpmcQueueTest : public ::testing::Test {};

using QueueTypes =
    ::testing::Types<LockFreeMpmcRing<std::uint64_t>,
                     MutexMpmcRing<std::uint64_t>>;
TYPED_TEST_SUITE(MpmcQueueTest, QueueTypes);

TEST(MpmcQueueCapacity, RoundsUpToPowerOfTwo) {
  EXPECT_EQ(ring_capacity_for(0), 2u);
  EXPECT_EQ(ring_capacity_for(1), 2u);
  EXPECT_EQ(ring_capacity_for(2), 2u);
  EXPECT_EQ(ring_capacity_for(3), 4u);
  EXPECT_EQ(ring_capacity_for(128), 128u);
  EXPECT_EQ(ring_capacity_for(129), 256u);
}

TYPED_TEST(MpmcQueueTest, SingleThreadedFifo) {
  TypeParam queue(8);
  EXPECT_EQ(queue.capacity(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(queue.try_push(std::uint64_t(i)));
  }
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);  // single producer, single consumer: strict FIFO
  }
  EXPECT_FALSE(queue.try_pop(out));
}

TYPED_TEST(MpmcQueueTest, FullQueueRejectsImmediatelyAndRecovers) {
  TypeParam queue(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_push(std::uint64_t(i)));
  }
  // Backpressure is a return value: the call comes back, it never blocks.
  EXPECT_FALSE(queue.try_push(std::uint64_t(99)));
  EXPECT_FALSE(queue.try_push(std::uint64_t(99)));
  std::uint64_t out = 0;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(queue.try_push(std::uint64_t(4)));  // freed slot is reusable
  EXPECT_FALSE(queue.try_push(std::uint64_t(99)));

  // Wrap the ring twice to prove slot sequence numbers recycle cleanly.
  for (std::uint64_t lap = 0; lap < 2; ++lap) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(queue.try_pop(out));
      ASSERT_TRUE(queue.try_push(out + 4));
    }
  }
  std::size_t drained = 0;
  while (queue.try_pop(out)) ++drained;
  EXPECT_EQ(drained, 4u);
}

// Items encode (producer << 32) | per-producer sequence so the consumers
// can verify provenance and ordering after the fact.
TYPED_TEST(MpmcQueueTest, NoLostDuplicatedOrReorderedItems) {
  constexpr std::uint64_t kPerProducer = 2000;
  for (unsigned producers : {1u, 2u, 4u, 8u}) {
    for (unsigned consumers : {1u, 2u, 4u, 8u}) {
      TypeParam queue(64);
      std::atomic<unsigned> producers_left{producers};
      std::vector<std::vector<std::uint64_t>> popped(consumers);

      std::vector<std::thread> threads;
      threads.reserve(producers + consumers);
      for (unsigned p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
          for (std::uint64_t i = 0; i < kPerProducer; ++i) {
            const std::uint64_t item = (std::uint64_t(p) << 32) | i;
            while (!queue.try_push(std::uint64_t(item))) {
              std::this_thread::yield();  // full: spin, the property under
            }                             // test is the consumers' view
          }
          producers_left.fetch_sub(1, std::memory_order_release);
        });
      }
      for (unsigned c = 0; c < consumers; ++c) {
        threads.emplace_back([&, c] {
          std::uint64_t item = 0;
          while (true) {
            if (queue.try_pop(item)) {
              popped[c].push_back(item);
            } else if (producers_left.load(std::memory_order_acquire) == 0) {
              // Producers done and the queue read empty: one more pop
              // settles the race where an item lands between the checks.
              if (!queue.try_pop(item)) break;
              popped[c].push_back(item);
            } else {
              std::this_thread::yield();
            }
          }
        });
      }
      for (std::thread& thread : threads) thread.join();

      // Per-consumer: each producer's items arrive in increasing sequence
      // (per-producer FIFO survives the merge into any single consumer).
      for (unsigned c = 0; c < consumers; ++c) {
        std::map<std::uint64_t, std::uint64_t> last_seq;
        for (const std::uint64_t item : popped[c]) {
          const std::uint64_t producer = item >> 32;
          const std::uint64_t seq = item & 0xffffffffu;
          const auto it = last_seq.find(producer);
          if (it != last_seq.end()) {
            EXPECT_LT(it->second, seq)
                << "producer " << producer << " reordered at consumer " << c
                << " (" << producers << "p x " << consumers << "c)";
          }
          last_seq[producer] = seq;
        }
      }
      // Global: the multiset of popped items is exactly what was pushed —
      // nothing lost, nothing duplicated.
      std::vector<std::uint64_t> all;
      all.reserve(std::size_t(producers) * kPerProducer);
      for (const auto& chunk : popped) {
        all.insert(all.end(), chunk.begin(), chunk.end());
      }
      ASSERT_EQ(all.size(), std::size_t(producers) * kPerProducer)
          << producers << "p x " << consumers << "c";
      std::sort(all.begin(), all.end());
      std::size_t index = 0;
      bool exact = true;
      for (std::uint64_t p = 0; p < producers && exact; ++p) {
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
          if (all[index++] != ((p << 32) | i)) {
            exact = false;
            break;
          }
        }
      }
      EXPECT_TRUE(exact) << "lost or duplicated items at " << producers
                         << "p x " << consumers << "c";
    }
  }
}

// TSan-targeted hammer: a tiny ring (capacity 4) maximizes slot reuse and
// head/tail contention, which is where a misordered atomic would race.
// The assertion load is light; the point is the interleavings TSan sees.
TYPED_TEST(MpmcQueueTest, HammerTinyRingUnderContention) {
  constexpr unsigned kThreadsPerSide = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  TypeParam queue(4);
  std::atomic<unsigned> producers_left{kThreadsPerSide};
  std::atomic<std::uint64_t> popped_count{0};
  std::atomic<std::uint64_t> popped_sum{0};

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kThreadsPerSide; ++p) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 1; i <= kPerProducer; ++i) {
        while (!queue.try_push(std::uint64_t(i))) std::this_thread::yield();
      }
      producers_left.fetch_sub(1, std::memory_order_release);
    });
  }
  for (unsigned c = 0; c < kThreadsPerSide; ++c) {
    threads.emplace_back([&] {
      std::uint64_t item = 0;
      while (true) {
        if (queue.try_pop(item)) {
          popped_count.fetch_add(1, std::memory_order_relaxed);
          popped_sum.fetch_add(item, std::memory_order_relaxed);
        } else if (producers_left.load(std::memory_order_acquire) == 0) {
          if (!queue.try_pop(item)) break;
          popped_count.fetch_add(1, std::memory_order_relaxed);
          popped_sum.fetch_add(item, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::uint64_t expected_count = kThreadsPerSide * kPerProducer;
  EXPECT_EQ(popped_count.load(), expected_count);
  EXPECT_EQ(popped_sum.load(),
            kThreadsPerSide * (kPerProducer * (kPerProducer + 1) / 2));
}

TEST(MpmcQueueBackend, AliasMatchesCompileTimeSelection) {
#if defined(RSMEM_SERVICE_MUTEX_QUEUE)
  EXPECT_STREQ(kQueueBackendName, "mutex");
  EXPECT_FALSE(MpmcQueue<int>::kIsLockFree);
#else
  EXPECT_STREQ(kQueueBackendName, "lockfree");
  EXPECT_TRUE(MpmcQueue<int>::kIsLockFree);
#endif
}

}  // namespace
}  // namespace rsmem::service
