// Tests for the byte-stream codec layer.
#include "rs/stream_codec.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/rng.h"

namespace rsmem::rs {
namespace {

std::vector<std::uint8_t> random_payload(sim::Rng& rng, std::size_t bytes) {
  std::vector<std::uint8_t> p(bytes);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return p;
}

TEST(StreamCodec, RequiresByteSymbols) {
  EXPECT_THROW(StreamCodec(CodeParams{15, 11, 4, 1, 0}),
               std::invalid_argument);
  EXPECT_NO_THROW(StreamCodec(CodeParams{18, 16, 8, 1, 0}));
}

TEST(StreamCodec, SizesAndFraming) {
  const StreamCodec codec{CodeParams{18, 16, 8, 1, 0}};
  EXPECT_EQ(codec.frames_for(0), 1u);
  EXPECT_EQ(codec.frames_for(1), 1u);
  EXPECT_EQ(codec.frames_for(16), 1u);
  EXPECT_EQ(codec.frames_for(17), 2u);
  EXPECT_EQ(codec.encoded_size(100), 7u * 18);
}

TEST(StreamCodec, RoundTripVariousSizes) {
  const StreamCodec codec{CodeParams{18, 16, 8, 1, 0}};
  sim::Rng rng{1};
  for (const std::size_t bytes : {std::size_t{0}, std::size_t{1},
                                  std::size_t{16}, std::size_t{17},
                                  std::size_t{1000}}) {
    const auto payload = random_payload(rng, bytes);
    const auto encoded = codec.encode(payload);
    EXPECT_EQ(encoded.size(), codec.encoded_size(bytes));
    const auto result = codec.decode(encoded, bytes);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.frames_corrected, 0u);
    EXPECT_EQ(result.payload, payload);
  }
}

TEST(StreamCodec, CorrectsScatteredCorruption) {
  const StreamCodec codec{CodeParams{18, 16, 8, 1, 0}};
  sim::Rng rng{2};
  const auto payload = random_payload(rng, 1000);  // 63 frames
  auto encoded = codec.encode(payload);
  // One corrupted byte per frame: always within the t=1 budget.
  const std::size_t frames = codec.frames_for(payload.size());
  for (std::size_t f = 0; f < frames; ++f) {
    encoded[f * 18 + rng.uniform_int(18)] ^= 0xFF;
  }
  const auto result = codec.decode(encoded, payload.size());
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.frames_corrected, frames);
  EXPECT_EQ(result.payload, payload);
}

TEST(StreamCodec, ReportsFailedFramesAndKeepsGoing) {
  const StreamCodec codec{CodeParams{18, 16, 8, 1, 0}};
  sim::Rng rng{3};
  const auto payload = random_payload(rng, 160);  // 10 frames
  auto encoded = codec.encode(payload);
  // Destroy frame 4 beyond repair (many corrupted symbols).
  for (unsigned i = 0; i < 9; ++i) encoded[4 * 18 + 2 * i] ^= 0xA5;
  const auto result = codec.decode(encoded, payload.size());
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.frames, 10u);
  EXPECT_GE(result.frames_failed, 1u);
  // Other frames still decoded correctly.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(result.payload[i], payload[i]) << i;
  }
  for (std::size_t i = 5 * 16; i < payload.size(); ++i) {
    EXPECT_EQ(result.payload[i], payload[i]) << i;
  }
}

TEST(StreamCodec, ErasureFlagsExtendTheBudget) {
  const StreamCodec codec{CodeParams{18, 16, 8, 1, 0}};
  sim::Rng rng{4};
  const auto payload = random_payload(rng, 32);  // 2 frames
  auto encoded = codec.encode(payload);
  std::vector<std::uint8_t> flags(encoded.size(), 0);
  // Two corrupted bytes in frame 0, both flagged as erasures: correctable
  // only thanks to the flags (2 random errors would exceed t=1).
  encoded[3] ^= 0x11;
  encoded[9] ^= 0x22;
  flags[3] = 1;
  flags[9] = 1;
  const auto result = codec.decode(encoded, payload.size(), flags);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.payload, payload);
  // Over-budget erasures in a frame are a clean failure, not a throw.
  std::fill(flags.begin(), flags.begin() + 3, 1);
  const auto overloaded = codec.decode(encoded, payload.size(), flags);
  EXPECT_FALSE(overloaded.ok);
}

TEST(StreamCodec, Validation) {
  const StreamCodec codec{CodeParams{18, 16, 8, 1, 0}};
  std::vector<std::uint8_t> bad(17, 0);
  EXPECT_THROW(codec.decode(bad, 16), std::invalid_argument);
  std::vector<std::uint8_t> encoded(18, 0);
  std::vector<std::uint8_t> flags(17, 0);
  EXPECT_THROW(codec.decode(encoded, 16, flags), std::invalid_argument);
}

}  // namespace
}  // namespace rsmem::rs
