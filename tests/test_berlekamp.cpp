// Differential tests: Berlekamp-Massey decoder vs the Euclidean decoder.
// Bounded-distance decoding is unique, so the two independent
// implementations must agree everywhere -- in-budget, at the boundary, and
// in overload (same detected failures, same mis-corrections).
#include "rs/berlekamp.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sim/rng.h"

namespace rsmem::rs {
namespace {

std::vector<Element> random_data(const ReedSolomon& code, sim::Rng& rng) {
  std::vector<Element> data(code.k());
  for (auto& d : data) {
    d = static_cast<Element>(rng.uniform_int(code.field().size()));
  }
  return data;
}

void expect_same(const ReedSolomon& code, const BerlekampDecoder& bm,
                 std::vector<Element> word,
                 const std::vector<unsigned>& erasures,
                 const std::string& what) {
  std::vector<Element> euclid_word = word;
  std::vector<Element> bm_word = word;
  const DecodeOutcome euclid = code.decode(euclid_word, erasures);
  const DecodeOutcome massey = bm.decode(bm_word, erasures);
  ASSERT_EQ(euclid.status, massey.status) << what;
  if (euclid.ok()) {
    EXPECT_EQ(euclid_word, bm_word) << what;
    EXPECT_EQ(euclid.errors_corrected, massey.errors_corrected) << what;
    EXPECT_EQ(euclid.erasures_corrected, massey.erasures_corrected) << what;
  }
}

TEST(Berlekamp, Validation) {
  const ReedSolomon code{18, 16, 8};
  const BerlekampDecoder bm{code};
  std::vector<Element> short_word(17, 0);
  EXPECT_THROW(bm.decode(short_word), std::invalid_argument);
  std::vector<Element> ok(18, 0);
  const unsigned bad[] = {18};
  EXPECT_THROW(bm.decode(ok, bad), std::invalid_argument);
  const unsigned dup[] = {3, 3};
  EXPECT_THROW(bm.decode(ok, dup), std::invalid_argument);
}

TEST(Berlekamp, CorrectsWithinBudgetRs1816) {
  const ReedSolomon code{18, 16, 8};
  const BerlekampDecoder bm{code};
  sim::Rng rng{1};
  const auto cw = code.encode(random_data(code, rng));
  for (unsigned pos = 0; pos < 18; ++pos) {
    std::vector<Element> word = cw;
    word[pos] ^= 0x3C;
    const DecodeOutcome outcome = bm.decode(word);
    ASSERT_EQ(outcome.status, DecodeStatus::kCorrected);
    EXPECT_EQ(word, cw);
  }
}

struct DiffCase {
  unsigned n, k, m;
};

class BerlekampDifferential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(BerlekampDifferential, AgreesWithEuclidEverywhere) {
  const auto [n, k, m] = GetParam();
  const ReedSolomon code{n, k, m};
  const BerlekampDecoder bm{code};
  sim::Rng rng{n * 7919u + k};
  const unsigned budget = code.parity_symbols();

  for (int trial = 0; trial < 600; ++trial) {
    const auto cw = code.encode(random_data(code, rng));
    std::vector<Element> word = cw;
    // Random damage: 0..budget+2 corrupted symbols, a random subset
    // declared as erasures (possibly over-budget -> overload behaviour).
    const unsigned damage =
        static_cast<unsigned>(rng.uniform_int(budget + 3));
    std::set<unsigned> positions;
    while (positions.size() < damage && positions.size() < n) {
      positions.insert(static_cast<unsigned>(rng.uniform_int(n)));
    }
    std::vector<unsigned> erasures;
    for (const unsigned p : positions) {
      word[p] ^= static_cast<Element>(
          1 + rng.uniform_int(code.field().size() - 1));
      if (rng.bernoulli(0.4)) erasures.push_back(p);
    }
    expect_same(code, bm, word, erasures,
                "n=" + std::to_string(n) + " trial " + std::to_string(trial));
  }
}

TEST_P(BerlekampDifferential, AgreesOnRandomNoise) {
  // Words sampled uniformly from the whole space (far from any codeword).
  const auto [n, k, m] = GetParam();
  const ReedSolomon code{n, k, m};
  const BerlekampDecoder bm{code};
  sim::Rng rng{n * 104729u + k};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Element> word(n);
    for (auto& w : word) {
      w = static_cast<Element>(rng.uniform_int(code.field().size()));
    }
    expect_same(code, bm, word, {}, "noise trial " + std::to_string(trial));
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, BerlekampDifferential,
                         ::testing::Values(DiffCase{18, 16, 8},
                                           DiffCase{36, 16, 8},
                                           DiffCase{15, 11, 4},
                                           DiffCase{7, 3, 3}));

TEST(Berlekamp, PureErasureBudgetRs3616) {
  const ReedSolomon code{36, 16, 8};
  const BerlekampDecoder bm{code};
  sim::Rng rng{5};
  const auto cw = code.encode(random_data(code, rng));
  std::vector<Element> word = cw;
  std::vector<unsigned> erasures;
  for (unsigned i = 0; i < 20; ++i) {
    erasures.push_back(i);
    word[i] ^= static_cast<Element>(1 + rng.uniform_int(255));
  }
  const DecodeOutcome outcome = bm.decode(word, erasures);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(word, cw);
  EXPECT_EQ(outcome.erasures_corrected, 20u);
}

}  // namespace
}  // namespace rsmem::rs
