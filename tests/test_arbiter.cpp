// Decision-table tests for the duplex arbiter (paper Section 3).
#include "memory/arbiter.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>

#include "sim/rng.h"

namespace rsmem::memory {
namespace {

class ArbiterTest : public ::testing::Test {
 protected:
  ArbiterTest() : code_(18, 16, 8), arbiter_(code_), rng_(2024) {
    std::vector<Element> data(16);
    for (unsigned i = 0; i < 16; ++i) data[i] = 0xA0 + i;
    codeword_ = code_.encode(data);
  }

  void corrupt(std::vector<Element>& w, unsigned pos) {
    w[pos] ^= (1u + static_cast<Element>(rng_.uniform_int(254)));
  }

  // Finds a 2-error corruption of the base codeword with the requested
  // decode behaviour (mis-correction or detected failure).
  std::vector<Element> find_double_error(rs::DecodeStatus wanted) {
    for (int attempt = 0; attempt < 10000; ++attempt) {
      std::vector<Element> w = codeword_;
      const unsigned p1 = static_cast<unsigned>(rng_.uniform_int(18));
      unsigned p2;
      do {
        p2 = static_cast<unsigned>(rng_.uniform_int(18));
      } while (p2 == p1);
      corrupt(w, p1);
      corrupt(w, p2);
      std::vector<Element> probe = w;
      if (code_.decode(probe).status == wanted) return w;
    }
    throw std::runtime_error("no corruption with wanted status found");
  }

  rs::ReedSolomon code_;
  Arbiter arbiter_;
  sim::Rng rng_;
  std::vector<Element> codeword_;
};

TEST_F(ArbiterTest, ValidatesInputs) {
  std::vector<Element> short_word(17, 0);
  EXPECT_THROW(arbiter_.arbitrate(short_word, codeword_, {}, {}),
               std::invalid_argument);
  const unsigned bad[] = {18};
  EXPECT_THROW(arbiter_.arbitrate(codeword_, codeword_, bad, {}),
               std::invalid_argument);
  EXPECT_THROW(arbiter_.arbitrate(codeword_, codeword_, {}, bad),
               std::invalid_argument);
}

TEST_F(ArbiterTest, CleanWordsNoFlagsOutputWord1) {
  const ArbiterResult r = arbiter_.arbitrate(codeword_, codeword_, {}, {});
  EXPECT_EQ(r.decision, ArbiterDecision::kWord1);
  EXPECT_FALSE(r.flag1);
  EXPECT_FALSE(r.flag2);
  EXPECT_EQ(r.output, codeword_);
  EXPECT_EQ(r.masked_erasures, 0u);
  EXPECT_TRUE(r.common_erasures.empty());
}

TEST_F(ArbiterTest, SingleErrorCorrectedEqualWordsFlagSet) {
  std::vector<Element> w1 = codeword_;
  corrupt(w1, 7);
  const ArbiterResult r = arbiter_.arbitrate(w1, codeword_, {}, {});
  EXPECT_EQ(r.decision, ArbiterDecision::kWord1);
  EXPECT_TRUE(r.flag1);
  EXPECT_FALSE(r.flag2);
  EXPECT_EQ(r.output, codeword_);  // the right correction was performed
}

TEST_F(ArbiterTest, SingleSidedErasureIsMaskedWithoutDecoding) {
  std::vector<Element> w1 = codeword_;
  w1[3] = 0x00;  // garbage at the erased location
  const unsigned erasures1[] = {3};
  const ArbiterResult r = arbiter_.arbitrate(w1, codeword_, erasures1, {});
  EXPECT_EQ(r.decision, ArbiterDecision::kWord1);
  EXPECT_FALSE(r.flag1);  // masking happens before decoding: no correction
  EXPECT_FALSE(r.flag2);
  EXPECT_EQ(r.masked_erasures, 1u);
  EXPECT_TRUE(r.common_erasures.empty());
  EXPECT_EQ(r.output, codeword_);
}

TEST_F(ArbiterTest, OppositeSingleSidedErasuresBothMasked) {
  std::vector<Element> w1 = codeword_;
  std::vector<Element> w2 = codeword_;
  w1[3] = 0x11;
  w2[9] = 0x22;
  const unsigned erasures1[] = {3};
  const unsigned erasures2[] = {9};
  const ArbiterResult r = arbiter_.arbitrate(w1, w2, erasures1, erasures2);
  EXPECT_EQ(r.masked_erasures, 2u);
  EXPECT_EQ(r.output, codeword_);
}

TEST_F(ArbiterTest, CommonErasuresGoToTheDecoders) {
  std::vector<Element> w1 = codeword_;
  std::vector<Element> w2 = codeword_;
  w1[5] = 0x00;
  w2[5] = 0x3C;  // both erased at 5, different garbage
  const unsigned erasures[] = {5};
  const ArbiterResult r = arbiter_.arbitrate(w1, w2, erasures, erasures);
  ASSERT_EQ(r.common_erasures, (std::vector<unsigned>{5}));
  EXPECT_TRUE(r.has_output());
  EXPECT_EQ(r.output, codeword_);
}

TEST_F(ArbiterTest, MiscorrectionOutvotedByCleanModule) {
  // Word 1 carries a double error that the decoder mis-corrects (flag set,
  // wrong codeword); word 2 is clean (flag reset). Paper rule 3: output the
  // word with the reset flag.
  const std::vector<Element> w1 =
      find_double_error(rs::DecodeStatus::kCorrected);
  const ArbiterResult r = arbiter_.arbitrate(w1, codeword_, {}, {});
  EXPECT_EQ(r.decision, ArbiterDecision::kWord2);
  EXPECT_TRUE(r.flag1);
  EXPECT_FALSE(r.flag2);
  EXPECT_EQ(r.output, codeword_);
}

TEST_F(ArbiterTest, DetectedFailureDisqualifiesWord) {
  const std::vector<Element> w1 =
      find_double_error(rs::DecodeStatus::kFailure);
  const ArbiterResult r = arbiter_.arbitrate(w1, codeword_, {}, {});
  EXPECT_EQ(r.decision, ArbiterDecision::kWord2);
  EXPECT_EQ(r.output, codeword_);
}

TEST_F(ArbiterTest, BothFailNoOutput) {
  const std::vector<Element> w1 =
      find_double_error(rs::DecodeStatus::kFailure);
  const std::vector<Element> w2 =
      find_double_error(rs::DecodeStatus::kFailure);
  const ArbiterResult r = arbiter_.arbitrate(w1, w2, {}, {});
  EXPECT_EQ(r.decision, ArbiterDecision::kNoOutput);
  EXPECT_FALSE(r.has_output());
  EXPECT_TRUE(r.output.empty());
}

TEST_F(ArbiterTest, TwoDifferentMiscorrectionsNoOutput) {
  // Both modules mis-correct to different codewords: rule 4, no output.
  std::optional<ArbiterResult> found;
  for (int attempt = 0; attempt < 200 && !found; ++attempt) {
    const std::vector<Element> w1 =
        find_double_error(rs::DecodeStatus::kCorrected);
    const std::vector<Element> w2 =
        find_double_error(rs::DecodeStatus::kCorrected);
    const ArbiterResult r = arbiter_.arbitrate(w1, w2, {}, {});
    if (r.flag1 && r.flag2) {
      // Either equal mis-corrections (accidentally the same codeword:
      // astronomically unlikely from independent corruptions) or no output.
      found = r;
    }
  }
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->decision, ArbiterDecision::kNoOutput);
}

TEST_F(ArbiterTest, PolicyAblationOnSilentDivergence) {
  // Two DIFFERENT valid codewords with no corrections anywhere (silent
  // divergence, e.g. after a historical mis-scrub): the paper-verbatim
  // rule 1 outputs word 1 blind; kCompareFirst refuses.
  std::vector<Element> other_data(16);
  for (unsigned i = 0; i < 16; ++i) other_data[i] = 0x11 + i;
  const std::vector<Element> other_cw = code_.encode(other_data);
  ASSERT_NE(other_cw, codeword_);

  const ArbiterResult verbatim =
      arbiter_.arbitrate(codeword_, other_cw, {}, {});
  EXPECT_EQ(verbatim.decision, ArbiterDecision::kWord1);
  EXPECT_FALSE(verbatim.flag1);

  const Arbiter strict{code_, ArbiterPolicy::kCompareFirst};
  const ArbiterResult compared =
      strict.arbitrate(codeword_, other_cw, {}, {});
  EXPECT_EQ(compared.decision, ArbiterDecision::kNoOutput);
  // On agreeing clean words the policies coincide.
  const ArbiterResult agree = strict.arbitrate(codeword_, codeword_, {}, {});
  EXPECT_EQ(agree.decision, ArbiterDecision::kWord1);
  // And flagged paths are unaffected.
  std::vector<Element> w1 = codeword_;
  corrupt(w1, 2);
  EXPECT_EQ(strict.arbitrate(w1, codeword_, {}, {}).decision,
            ArbiterDecision::kWord1);
}

TEST_F(ArbiterTest, ErrorPlusOppositeErasureMasksThenCorrects) {
  // Module 1: erasure at 3 (garbage). Module 2: SEU at 12.
  // Masking copies w2[3] (clean) into w1; both decoders then see the SEU
  // at 12 (in w1's copy too, because masking copied it? no -- position 3
  // only). w1 after masking: clean; w2: one error.
  std::vector<Element> w1 = codeword_;
  std::vector<Element> w2 = codeword_;
  w1[3] = 0x7E;
  corrupt(w2, 12);
  const unsigned erasures1[] = {3};
  const ArbiterResult r = arbiter_.arbitrate(w1, w2, erasures1, {});
  EXPECT_TRUE(r.has_output());
  EXPECT_EQ(r.output, codeword_);
}

TEST_F(ArbiterTest, BErasureCopiesTheNeighboursError) {
  // The paper's "b" pair: module 1 erased at p, module 2 has a random error
  // at the SAME symbol p. Masking imports the error into word 1; both words
  // then carry one identical random error, both decoders correct it, flags
  // set, words equal -> output word 1, data correct.
  std::vector<Element> w1 = codeword_;
  std::vector<Element> w2 = codeword_;
  w1[6] = 0x55;     // erased garbage
  corrupt(w2, 6);   // SEU in the homologous symbol
  const unsigned erasures1[] = {6};
  const ArbiterResult r = arbiter_.arbitrate(w1, w2, erasures1, {});
  EXPECT_TRUE(r.has_output());
  EXPECT_TRUE(r.flag1);
  EXPECT_TRUE(r.flag2);
  EXPECT_EQ(r.output, codeword_);
}

}  // namespace
}  // namespace rsmem::memory
