// Tests for the duplex memory-system Markov chain (paper Figs. 3 and 4).
#include "models/duplex_model.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "core/units.h"
#include "markov/rk45.h"
#include "markov/uniformization.h"
#include "models/ber.h"
#include "models/simplex_model.h"

namespace rsmem::models {
namespace {

using markov::PackedState;

DuplexParams base_params() {
  DuplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  return p;
}

std::map<PackedState, double> transitions_of(const DuplexModel& model,
                                             PackedState from) {
  std::map<PackedState, double> out;
  model.for_each_transition(from, [&](double rate, PackedState to) {
    out[to] += rate;
  });
  return out;
}

PackedState pk(unsigned x, unsigned y, unsigned b, unsigned e1, unsigned e2,
               unsigned ec) {
  return DuplexModel::pack(DuplexState{x, y, b, e1, e2, ec});
}

TEST(DuplexModel, PackUnpackRoundTrip) {
  const DuplexState s{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(DuplexModel::unpack(DuplexModel::pack(s)), s);
  EXPECT_TRUE(DuplexModel::is_fail(DuplexModel::fail_state()));
  EXPECT_FALSE(DuplexModel::is_fail(DuplexModel::pack(s)));
}

TEST(DuplexModel, ValidatesParams) {
  DuplexParams p = base_params();
  p.k = 20;
  EXPECT_THROW(DuplexModel{p}, std::invalid_argument);
  p = base_params();
  p.erasure_rate_per_symbol_hour = -2.0;
  EXPECT_THROW(DuplexModel{p}, std::invalid_argument);
}

TEST(DuplexModel, RecoverableUsesBothWordBudgets) {
  const DuplexModel model{base_params()};  // n-k = 2
  EXPECT_TRUE(model.recoverable({0, 0, 0, 0, 0, 0}));
  EXPECT_TRUE(model.recoverable({2, 0, 0, 0, 0, 0}));   // X = 2 ok
  EXPECT_FALSE(model.recoverable({3, 0, 0, 0, 0, 0}));  // X = 3 fails
  EXPECT_TRUE(model.recoverable({0, 18, 0, 0, 0, 0}));  // Y is maskable
  EXPECT_TRUE(model.recoverable({0, 0, 1, 0, 0, 0}));   // 2b = 2 ok
  EXPECT_FALSE(model.recoverable({1, 0, 1, 0, 0, 0}));  // X + 2b = 3
  EXPECT_TRUE(model.recoverable({0, 0, 0, 1, 1, 0}));   // each word sees 2
  EXPECT_FALSE(model.recoverable({0, 0, 0, 2, 0, 0}));  // word1 sees 4
  EXPECT_FALSE(model.recoverable({0, 0, 0, 0, 0, 2}));  // both words see 4
}

TEST(DuplexModel, GoodStateTransitions) {
  DuplexParams p = base_params();
  p.seu_rate_per_bit_hour = 2.0;    // lambda; per-symbol rate m*lambda = 16
  p.erasure_rate_per_symbol_hour = 3.0;
  const DuplexModel model{p};
  const auto t = transitions_of(model, pk(0, 0, 0, 0, 0, 0));
  // C: erasure on untouched pair (rate 3*18); L/M: bit flips (16*18 each).
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.at(pk(0, 1, 0, 0, 0, 0)), 3.0 * 18.0);
  EXPECT_DOUBLE_EQ(t.at(pk(0, 0, 0, 1, 0, 0)), 16.0 * 18.0);
  EXPECT_DOUBLE_EQ(t.at(pk(0, 0, 0, 0, 1, 0)), 16.0 * 18.0);
}

TEST(DuplexModel, Figure4TransitionFamilyFromGenericState) {
  // Use a wide code so no destination hits the Fail boundary, and a state
  // with every class populated: (X,Y,b,e1,e2,ec) = (1,2,1,1,1,1), n = 36.
  DuplexParams p = base_params();
  p.n = 36;
  p.seu_rate_per_bit_hour = 1.0;  // m*lambda = 8
  p.erasure_rate_per_symbol_hour = 1.0;
  p.scrub_rate_per_hour = 11.0;
  const DuplexModel model{p};
  const PackedState from = pk(1, 2, 1, 1, 1, 1);
  const auto t = transitions_of(model, from);
  const unsigned untouched = 36 - 7;
  // A: (X+1, Y-1) at le*Y = 2.
  EXPECT_DOUBLE_EQ(t.at(pk(2, 1, 1, 1, 1, 1)), 2.0);
  // B: (X+1, b-1) at le*b = 1 (Fig. 4 rate).
  EXPECT_DOUBLE_EQ(t.at(pk(2, 2, 0, 1, 1, 1)), 1.0);
  // C: (Y+1) at le*untouched.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 3, 1, 1, 1, 1)), 1.0 * untouched);
  // D: (Y+1, e1-1) at le*e1 = 1.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 3, 1, 0, 1, 1)), 1.0);
  // E: (Y+1, e2-1) at le*e2 = 1.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 3, 1, 1, 0, 1)), 1.0);
  // F: (b+1, ec-1) at le*ec = 1.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 2, 2, 1, 1, 0)), 1.0);
  // G: (b+1, e1-1) at le*e1 = 1.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 2, 2, 0, 1, 1)), 1.0);
  // H: (b+1, e2-1) at le*e2 = 1.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 2, 2, 1, 0, 1)), 1.0);
  // I: (Y-1, b+1) at m*lambda*Y = 16.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 1, 2, 1, 1, 1)), 16.0);
  // L/M: (e1+1) and (e2+1) at m*lambda*untouched.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 2, 1, 2, 1, 1)), 8.0 * untouched);
  EXPECT_DOUBLE_EQ(t.at(pk(1, 2, 1, 1, 2, 1)), 8.0 * untouched);
  // N/O: (e1-1, ec+1) / (e2-1, ec+1) at m*lambda*e1/e2 = 8.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 2, 1, 0, 1, 2)), 8.0);
  EXPECT_DOUBLE_EQ(t.at(pk(1, 2, 1, 1, 0, 2)), 8.0);
  // Scrub: (X, Y+b, 0,0,0,0) at sigma.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 3, 0, 0, 0, 0)), 11.0);
  EXPECT_EQ(t.size(), 14u);
}

TEST(DuplexModel, TextErratumVariantUsesYForB) {
  DuplexParams p = base_params();
  p.n = 36;
  p.erasure_rate_per_symbol_hour = 1.0;
  p.use_text_rate_for_b = true;
  const DuplexModel model{p};
  const auto t = transitions_of(model, pk(0, 3, 2, 0, 0, 0));
  // B at the TEXT's rate le*Y = 3 instead of Fig. 4's le*b = 2.
  EXPECT_DOUBLE_EQ(t.at(pk(1, 3, 1, 0, 0, 0)), 3.0);
}

TEST(DuplexModel, PerPhysicalSymbolConventionDoublesCAndF) {
  DuplexParams p = base_params();
  p.n = 36;
  p.erasure_rate_per_symbol_hour = 1.0;
  p.convention = RateConvention::kPerPhysicalSymbol;
  const DuplexModel model{p};
  const auto t0 = transitions_of(model, pk(0, 0, 0, 0, 0, 0));
  EXPECT_DOUBLE_EQ(t0.at(pk(0, 1, 0, 0, 0, 0)), 2.0 * 36.0);  // C doubled
  const auto t1 = transitions_of(model, pk(0, 0, 0, 0, 0, 1));
  EXPECT_DOUBLE_EQ(t1.at(pk(0, 0, 1, 0, 0, 0)), 2.0);  // F doubled
}

TEST(DuplexModel, BoundaryViolationsRouteToFail) {
  DuplexParams p = base_params();  // n-k = 2
  p.seu_rate_per_bit_hour = 1.0;
  p.erasure_rate_per_symbol_hour = 1.0;
  const DuplexModel model{p};
  // From X=2 (budget full), C keeps Y growing (fine) but A would need Y>0;
  // an erasure on an e1 pair is fine... but from (2,0,0,0,0,0) an extra
  // erasure on an untouched pair -> Y (recoverable), L/M -> e1/e2 make
  // word budgets X + 2e = 4 > 2 -> Fail.
  const auto t = transitions_of(model, pk(2, 0, 0, 0, 0, 0));
  // 16 untouched pairs remain once X = 2.
  EXPECT_DOUBLE_EQ(t.at(pk(2, 1, 0, 0, 0, 0)), 1.0 * 16.0);
  // Both L and M funnel to Fail: 2 * m*lambda*untouched = 2*8*16.
  EXPECT_DOUBLE_EQ(t.at(DuplexModel::fail_state()), 2.0 * 8.0 * 16.0);
}

TEST(DuplexModel, FailIsAbsorbing) {
  DuplexParams p = base_params();
  p.seu_rate_per_bit_hour = 1.0;
  const DuplexModel model{p};
  EXPECT_TRUE(transitions_of(model, DuplexModel::fail_state()).empty());
}

TEST(DuplexModel, ScrubTargetKeepsPermanentDamage) {
  DuplexParams p = base_params();
  p.n = 36;
  p.scrub_rate_per_hour = 4.0;
  p.seu_rate_per_bit_hour = 1.0;
  const DuplexModel model{p};
  const auto t = transitions_of(model, pk(2, 1, 3, 1, 0, 1));
  // (X, Y+b, 0, 0, 0, 0) = (2, 4, 0, 0, 0, 0).
  EXPECT_DOUBLE_EQ(t.at(pk(2, 4, 0, 0, 0, 0)), 4.0);
}

TEST(DuplexModel, NoScrubTransitionFromCleanStates) {
  DuplexParams p = base_params();
  p.scrub_rate_per_hour = 4.0;
  p.erasure_rate_per_symbol_hour = 1.0;
  const DuplexModel model{p};
  // (1,2,0,0,0,0): no transient damage, so the scrub target IS the source
  // state; the model must not emit that self-loop, and every emitted
  // transition must be an erasure event (the only active fault stream).
  const auto t = transitions_of(model, pk(1, 2, 0, 0, 0, 0));
  EXPECT_EQ(t.count(pk(1, 2, 0, 0, 0, 0)), 0u);
  // Erasure events from (1,2,0,...): A -> (2,1,...) and C -> (1,3,...).
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.at(pk(2, 1, 0, 0, 0, 0)), 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(t.at(pk(1, 3, 0, 0, 0, 0)), 1.0 * 15.0);
}

TEST(DuplexBer, StateSpaceStaysModest) {
  DuplexParams p = base_params();
  p.seu_rate_per_bit_hour = 1.0;
  p.erasure_rate_per_symbol_hour = 1.0;
  p.scrub_rate_per_hour = 1.0;
  const markov::StateSpace space = DuplexModel{p}.build();
  // Y ranges over 0..18 with small (X,b,e1,e2,ec): roughly 19*9 states.
  EXPECT_GT(space.size(), 50u);
  EXPECT_LT(space.size(), 400u);
}

TEST(DuplexBer, DuplexBeatsSimplexUnderPermanentFaults) {
  // The paper's headline claim (Figs. 8 vs 9).
  const markov::UniformizationSolver solver;
  const std::vector<double> times{core::months_to_hours(6),
                                  core::months_to_hours(12),
                                  core::months_to_hours(24)};
  for (const double le_day : {1e-4, 1e-6}) {
    SimplexParams sp;
    sp.n = 18;
    sp.k = 16;
    sp.m = 8;
    sp.erasure_rate_per_symbol_hour = core::per_day_to_per_hour(le_day);
    DuplexParams dp = base_params();
    dp.erasure_rate_per_symbol_hour = core::per_day_to_per_hour(le_day);
    const BerCurve s = simplex_ber_curve(sp, times, solver);
    const BerCurve d = duplex_ber_curve(dp, times, solver);
    for (std::size_t i = 0; i < times.size(); ++i) {
      EXPECT_LT(d.fail_probability[i], s.fail_probability[i]);
    }
  }
}

TEST(DuplexBer, SeuOnlyDuplexAndSimplexSameRange) {
  // Paper Figs. 5 vs 6: with SEU only, both arrangements have BER "in the
  // same range" (within ~2x of each other here).
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  SimplexParams sp;
  sp.n = 18;
  sp.k = 16;
  sp.m = 8;
  sp.seu_rate_per_bit_hour = core::per_day_to_per_hour(1.7e-5);
  DuplexParams dp = base_params();
  dp.seu_rate_per_bit_hour = sp.seu_rate_per_bit_hour;
  const double s = simplex_ber_curve(sp, times, solver).ber[0];
  const double d = duplex_ber_curve(dp, times, solver).ber[0];
  EXPECT_GT(d, s / 3.0);
  EXPECT_LT(d, s * 3.0);
}

TEST(DuplexBer, ScrubbingMonotonicallyImproves) {
  const markov::UniformizationSolver solver;
  const std::vector<double> times{48.0};
  double prev = 1.0;
  for (const double tsc_s : {0.0, 3600.0, 1800.0, 900.0}) {
    DuplexParams p = base_params();
    p.seu_rate_per_bit_hour = core::per_day_to_per_hour(1.7e-5);
    p.scrub_rate_per_hour = core::scrub_rate_per_hour(tsc_s);
    const double ber = duplex_ber_curve(p, times, solver).ber[0];
    EXPECT_LT(ber, prev);
    prev = ber;
  }
}

TEST(DuplexBer, UniformizationAgreesWithRk45) {
  DuplexParams p = base_params();
  p.seu_rate_per_bit_hour = core::per_day_to_per_hour(1.7e-5);
  p.erasure_rate_per_symbol_hour = core::per_day_to_per_hour(1e-5);
  p.scrub_rate_per_hour = 1.0;
  const std::vector<double> times{12.0, 48.0};
  const BerCurve a = duplex_ber_curve(p, times, markov::UniformizationSolver{});
  const BerCurve b = duplex_ber_curve(p, times, markov::Rk45Solver{});
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(a.fail_probability[i], b.fail_probability[i], 1e-9);
  }
}

TEST(DuplexBer, AblationConventionsBracketPaperRates) {
  // Per-physical-symbol doubles two erasure exposures, so its BER under
  // permanent faults must be >= the paper convention's.
  const markov::UniformizationSolver solver;
  const std::vector<double> times{core::months_to_hours(12)};
  DuplexParams p = base_params();
  p.erasure_rate_per_symbol_hour = core::per_day_to_per_hour(1e-4);
  const double paper = duplex_ber_curve(p, times, solver).ber[0];
  p.convention = RateConvention::kPerPhysicalSymbol;
  const double phys = duplex_ber_curve(p, times, solver).ber[0];
  EXPECT_GT(phys, paper);
}

}  // namespace
}  // namespace rsmem::models
