// Parameterized solver-consistency grid: uniformization, RK45 and the
// dense matrix exponential must agree on BOTH paper chains across a grid
// of operating points spanning slow, mixed and stiff (scrubbed) regimes.
#include <gtest/gtest.h>

#include <tuple>

#include "markov/expm.h"
#include "markov/rk45.h"
#include "markov/uniformization.h"
#include "models/ber.h"

namespace rsmem::models {
namespace {

// (seu per bit-hour, erasure per symbol-hour, scrub per hour)
using GridPoint = std::tuple<double, double, double>;

class SolverGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(SolverGrid, SimplexThreeWayAgreement) {
  const auto [lambda, le, sigma] = GetParam();
  SimplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = lambda;
  p.erasure_rate_per_symbol_hour = le;
  p.scrub_rate_per_hour = sigma;
  const std::vector<double> times{6.0, 48.0};
  const BerCurve uni =
      simplex_ber_curve(p, times, markov::UniformizationSolver{});
  const BerCurve rk = simplex_ber_curve(p, times, markov::Rk45Solver{});
  const BerCurve ex = simplex_ber_curve(p, times, markov::ExpmSolver{});
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(uni.fail_probability[i], rk.fail_probability[i], 1e-8);
    EXPECT_NEAR(uni.fail_probability[i], ex.fail_probability[i], 1e-8);
  }
}

TEST_P(SolverGrid, DuplexUniformizationVsRk45) {
  const auto [lambda, le, sigma] = GetParam();
  DuplexParams p;
  p.n = 18;
  p.k = 16;
  p.m = 8;
  p.seu_rate_per_bit_hour = lambda;
  p.erasure_rate_per_symbol_hour = le;
  p.scrub_rate_per_hour = sigma;
  const std::vector<double> times{6.0, 48.0};
  const BerCurve uni =
      duplex_ber_curve(p, times, markov::UniformizationSolver{});
  const BerCurve rk = duplex_ber_curve(p, times, markov::Rk45Solver{});
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(uni.fail_probability[i], rk.fail_probability[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, SolverGrid,
    ::testing::Values(
        GridPoint{7.3e-7 / 24, 0.0, 0.0},      // Fig. 5/6 slow
        GridPoint{1.7e-5 / 24, 0.0, 0.0},      // Fig. 5/6 fast
        GridPoint{1.7e-5 / 24, 0.0, 4.0},      // Fig. 7 stiff (Tsc=900s)
        GridPoint{0.0, 1e-4 / 24, 0.0},        // Fig. 8/9 permanent
        GridPoint{1e-4, 1e-3, 0.0},            // accelerated mixed
        GridPoint{1e-4, 1e-3, 1.0},            // accelerated + scrub
        GridPoint{1e-3, 1e-2, 10.0}));         // hot and stiff

}  // namespace
}  // namespace rsmem::models
