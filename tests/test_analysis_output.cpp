// Tests for the experiment sweeps and the table / ASCII plot emitters.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/ascii_plot.h"
#include "analysis/experiment.h"
#include "analysis/table.h"

namespace rsmem::analysis {
namespace {

TEST(Experiment, SeuSweepShapes) {
  const double rates[] = {1.7e-5, 3.6e-6};
  const auto series = seu_rate_sweep(Arrangement::kSimplex, CodeSpec{},
                                     rates, 48.0, 7);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].label, "lambda=1.7E-05/bit/day");
  ASSERT_EQ(series[0].x.size(), 7u);
  EXPECT_DOUBLE_EQ(series[0].x.front(), 0.0);
  EXPECT_DOUBLE_EQ(series[0].x.back(), 48.0);
  EXPECT_DOUBLE_EQ(series[0].y.front(), 0.0);
  EXPECT_GT(series[0].y.back(), series[1].y.back());
}

TEST(Experiment, ScrubSweepImproves) {
  const double periods[] = {3600.0, 900.0};
  const auto series = scrub_period_sweep(Arrangement::kDuplex, CodeSpec{},
                                         1.7e-5, periods, 48.0, 5);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].label, "Tsc=3600 s");
  EXPECT_GT(series[0].y.back(), series[1].y.back());
}

TEST(Experiment, PermanentSweepUsesMonths) {
  const double rates[] = {1e-4};
  const auto series = permanent_rate_sweep(Arrangement::kSimplex, CodeSpec{},
                                           rates, 24.0, 5);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].x.back(), 24.0);  // months on the x axis
  EXPECT_GT(series[0].y.back(), 0.0);
  EXPECT_THROW(
      permanent_rate_sweep(Arrangement::kSimplex, CodeSpec{}, rates, -1.0, 5),
      std::invalid_argument);
}

TEST(Experiment, ArrangementNames) {
  EXPECT_STREQ(to_string(Arrangement::kSimplex), "simplex");
  EXPECT_STREQ(to_string(Arrangement::kDuplex), "duplex");
}

TEST(Table, RendersAlignedText) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"much-longer-name", "2.5"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| name "), std::string::npos);
  EXPECT_NE(text.find("much-longer-name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(Table, ValidatesShape) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  Table t{{"x", "note"}};
  t.add_row({"1", "plain"});
  t.add_row({"2", "has,comma"});
  t.add_row({"3", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("x,note\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(format_sci(1.2345e-5, 2), "1.23E-05");
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  Series s1{"one", {0.0, 1.0, 2.0}, {1e-9, 1e-6, 1e-3}};
  Series s2{"two", {0.0, 1.0, 2.0}, {1e-10, 1e-8, 1e-6}};
  PlotOptions opt;
  opt.title = "demo";
  const std::string plot = render_plot({s1, s2}, opt);
  EXPECT_NE(plot.find("demo"), std::string::npos);
  EXPECT_NE(plot.find("* = one"), std::string::npos);
  EXPECT_NE(plot.find("o = two"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiPlot, HandlesEmptyAndDegenerate) {
  EXPECT_EQ(render_plot({}, PlotOptions{}), "(no series)\n");
  // All-zero series on a log axis: every point is below the floor.
  Series zero{"z", {0.0, 1.0}, {0.0, 0.0}};
  const std::string plot = render_plot({zero}, PlotOptions{});
  EXPECT_NE(plot.find("below plot floor"), std::string::npos);
}

TEST(AsciiPlot, ValidatesShape) {
  Series bad{"b", {0.0, 1.0}, {1.0}};
  EXPECT_THROW(render_plot({bad}, PlotOptions{}), std::invalid_argument);
  PlotOptions tiny;
  tiny.width = 2;
  Series ok{"o", {0.0}, {1.0}};
  EXPECT_THROW(render_plot({ok}, tiny), std::invalid_argument);
}

TEST(AsciiPlot, LinearScaleOption) {
  Series s{"lin", {0.0, 1.0, 2.0}, {0.0, 0.5, 1.0}};
  PlotOptions opt;
  opt.log_y = false;
  const std::string plot = render_plot({s}, opt);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

}  // namespace
}  // namespace rsmem::analysis
