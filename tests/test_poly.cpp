// Unit and property tests for polynomials over GF(2^m).
#include "gf/poly.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/rng.h"

namespace rsmem::gf {
namespace {

Poly random_poly(const GaloisField& f, sim::Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.uniform_int(max_len + 1);
  std::vector<Element> c(len);
  for (auto& x : c) x = static_cast<Element>(rng.uniform_int(f.size()));
  return Poly{std::move(c)};
}

TEST(Poly, ZeroAndConstant) {
  EXPECT_TRUE(Poly::zero().is_zero());
  EXPECT_EQ(Poly::zero().degree(), -1);
  EXPECT_EQ(Poly::constant(0).degree(), -1);
  EXPECT_EQ(Poly::constant(7).degree(), 0);
  EXPECT_EQ(Poly::one().coeff(0), 1u);
}

TEST(Poly, MonomialAndShift) {
  const Poly p = Poly::monomial(3, 4);
  EXPECT_EQ(p.degree(), 4);
  EXPECT_EQ(p.coeff(4), 3u);
  EXPECT_EQ(p.coeff(3), 0u);
  const Poly q = p.shifted_up(2);
  EXPECT_EQ(q.degree(), 6);
  EXPECT_EQ(q.coeff(6), 3u);
  EXPECT_TRUE(Poly::zero().shifted_up(5).is_zero());
}

TEST(Poly, NormalizeTrimsTrailingZeros) {
  Poly p{std::vector<Element>{1, 2, 0, 0}};
  EXPECT_EQ(p.degree(), 1);
  p.normalize();
  EXPECT_EQ(p.coeffs().size(), 2u);
}

TEST(Poly, EvalHorner) {
  const GaloisField f{8};
  // p(x) = 5 + 3x + x^2 at x=2: 5 ^ (3*2) ^ (2*2) = 5 ^ 6 ^ 4.
  const Poly p{std::vector<Element>{5, 3, 1}};
  const Element expected =
      GaloisField::add(GaloisField::add(5, f.mul(3, 2)), f.mul(2, 2));
  EXPECT_EQ(p.eval(f, 2), expected);
  EXPECT_EQ(p.eval(f, 0), 5u);
  EXPECT_EQ(Poly::zero().eval(f, 123), 0u);
}

TEST(Poly, DerivativeCharacteristic2) {
  // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 (even terms vanish).
  const Poly p{std::vector<Element>{9, 7, 5, 3}};
  const Poly d = p.derivative();
  EXPECT_EQ(d.coeff(0), 7u);
  EXPECT_EQ(d.coeff(1), 0u);
  EXPECT_EQ(d.coeff(2), 3u);
  EXPECT_EQ(d.degree(), 2);
  EXPECT_TRUE(Poly::one().derivative().is_zero());
}

TEST(Poly, TruncatedKeepsLowOrder) {
  const Poly p{std::vector<Element>{1, 2, 3, 4}};
  const Poly t = p.truncated(2);
  EXPECT_EQ(t.degree(), 1);
  EXPECT_EQ(t.coeff(0), 1u);
  EXPECT_EQ(t.coeff(1), 2u);
}

TEST(Poly, AddCancels) {
  const Poly p{std::vector<Element>{1, 2, 3}};
  EXPECT_TRUE(Poly::add(p, p).is_zero());
}

TEST(Poly, MulByZeroAndOne) {
  const GaloisField f{4};
  const Poly p{std::vector<Element>{1, 2, 3}};
  EXPECT_TRUE(Poly::mul(f, p, Poly::zero()).is_zero());
  EXPECT_EQ(Poly::mul(f, p, Poly::one()), p);
}

TEST(Poly, DivmodThrowsOnZeroDivisor) {
  const GaloisField f{4};
  const Poly p{std::vector<Element>{1, 2}};
  EXPECT_THROW(Poly::divmod(f, p, Poly::zero()), std::domain_error);
}

TEST(Poly, DivmodKnownCase) {
  const GaloisField f{4};
  // (x^2 + 1) / (x + 1): in GF(2^m), x^2+1 = (x+1)^2.
  const Poly num{std::vector<Element>{1, 0, 1}};
  const Poly den{std::vector<Element>{1, 1}};
  const auto [q, r] = Poly::divmod(f, num, den);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(q, den);
}

// Property: a == q*b + r with deg r < deg b, over random inputs.
class PolyDivisionProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PolyDivisionProperty, DivmodReconstructs) {
  const GaloisField f{GetParam()};
  sim::Rng rng{GetParam() * 1000 + 17};
  for (int iter = 0; iter < 300; ++iter) {
    const Poly a = random_poly(f, rng, 12);
    Poly b = random_poly(f, rng, 6);
    if (b.is_zero()) b = Poly::one();
    const auto [q, r] = Poly::divmod(f, a, b);
    EXPECT_LT(r.degree(), b.degree() == -1 ? 0 : b.degree());
    const Poly recon = Poly::add(Poly::mul(f, q, b), r);
    EXPECT_EQ(recon, a);
  }
}

TEST_P(PolyDivisionProperty, MulDegreeAdds) {
  const GaloisField f{GetParam()};
  sim::Rng rng{GetParam() * 977 + 3};
  for (int iter = 0; iter < 300; ++iter) {
    const Poly a = random_poly(f, rng, 10);
    const Poly b = random_poly(f, rng, 10);
    const Poly ab = Poly::mul(f, a, b);
    if (a.is_zero() || b.is_zero()) {
      EXPECT_TRUE(ab.is_zero());
    } else {
      EXPECT_EQ(ab.degree(), a.degree() + b.degree());
    }
  }
}

TEST_P(PolyDivisionProperty, EvalIsRingHomomorphism) {
  const GaloisField f{GetParam()};
  sim::Rng rng{GetParam() * 31 + 8};
  for (int iter = 0; iter < 200; ++iter) {
    const Poly a = random_poly(f, rng, 8);
    const Poly b = random_poly(f, rng, 8);
    const Element x = static_cast<Element>(rng.uniform_int(f.size()));
    EXPECT_EQ(Poly::add(a, b).eval(f, x),
              GaloisField::add(a.eval(f, x), b.eval(f, x)));
    EXPECT_EQ(Poly::mul(f, a, b).eval(f, x),
              f.mul(a.eval(f, x), b.eval(f, x)));
  }
}

INSTANTIATE_TEST_SUITE_P(Fields, PolyDivisionProperty,
                         ::testing::Values(3u, 4u, 8u));

}  // namespace
}  // namespace rsmem::gf
