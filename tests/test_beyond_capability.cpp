// Exhaustive beyond-capability characterisation of RS(7,3) over GF(8).
//
// The code is small enough to treat as a finite object: all 8^3 = 512
// codewords fit in memory, d_min = n-k+1 = 5, t = 2, and the radius-2
// decoding spheres around the codewords are disjoint. That makes the
// decoder's behaviour on EVERY error pattern exactly predictable by
// brute-force nearest-codeword search:
//
//   * received word within Hamming distance <= 2 of some codeword
//     -> kCorrected to exactly that codeword (unique by sphere packing);
//   * received word at distance >= 3 from every codeword
//     -> kFailure with the word left untouched (bounded-distance decoding
//        never gambles beyond t).
//
// The test sweeps every error pattern of weight 1..4 against reference
// codewords and checks the decoder (fast path AND legacy path,
// differentially) against that ground truth, pinning down the exact
// decode-failure vs mis-correction split the paper's P_ue analysis relies
// on. Erasure boundary cases (erasures + 2*errors == n-k) ride along.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "rs/reed_solomon.h"

namespace rsmem {
namespace {

using gf::Element;

constexpr unsigned kN = 7;
constexpr unsigned kK = 3;
constexpr unsigned kM = 3;
constexpr unsigned kQ = 8;  // field size 2^m

class BeyondCapabilityTest : public ::testing::Test {
 protected:
  BeyondCapabilityTest() : code_({kN, kK, kM, 1}) {
    codewords_.reserve(kQ * kQ * kQ);
    for (unsigned a = 0; a < kQ; ++a) {
      for (unsigned b = 0; b < kQ; ++b) {
        for (unsigned c = 0; c < kQ; ++c) {
          const std::array<Element, kK> data = {
              static_cast<Element>(a), static_cast<Element>(b),
              static_cast<Element>(c)};
          std::array<Element, kN> word{};
          code_.encode(data, word);
          codewords_.push_back(word);
        }
      }
    }
  }

  static unsigned distance(const std::array<Element, kN>& x,
                           const std::array<Element, kN>& y) {
    unsigned d = 0;
    for (unsigned i = 0; i < kN; ++i) d += x[i] != y[i];
    return d;
  }

  // Nearest codeword by exhaustive search: returns {min distance, index of
  // a minimiser, whether the minimiser is unique}.
  struct Nearest {
    unsigned dist = kN + 1;
    std::size_t index = 0;
    bool unique = true;
  };
  Nearest nearest_codeword(const std::array<Element, kN>& word) const {
    Nearest best;
    for (std::size_t i = 0; i < codewords_.size(); ++i) {
      const unsigned d = distance(word, codewords_[i]);
      if (d < best.dist) {
        best = {d, i, true};
      } else if (d == best.dist) {
        best.unique = false;
      }
    }
    return best;
  }

  rs::ReedSolomon code_;
  std::vector<std::array<Element, kN>> codewords_;
};

TEST_F(BeyondCapabilityTest, CodebookHasDesignDistance) {
  ASSERT_EQ(codewords_.size(), 512u);
  // MDS: every pair of distinct codewords is at distance >= d_min = 5.
  unsigned min_pair = kN;
  for (std::size_t i = 0; i < codewords_.size(); ++i) {
    for (std::size_t j = i + 1; j < codewords_.size(); ++j) {
      const unsigned d = distance(codewords_[i], codewords_[j]);
      ASSERT_GE(d, 5u) << "codewords " << i << " and " << j;
      if (d < min_pair) min_pair = d;
    }
  }
  EXPECT_EQ(min_pair, 5u);  // the bound is attained (MDS, not just >= 5)
}

// Sweeps every error pattern of weight `weight` applied to `base`,
// checking decode (fast and legacy) against brute-force nearest-codeword
// ground truth. Returns {patterns swept, miscorrections observed}.
struct SweepResult {
  std::uint64_t patterns = 0;
  std::uint64_t corrected = 0;
  std::uint64_t miscorrected = 0;
  std::uint64_t failures = 0;
};

class WeightSweep : public BeyondCapabilityTest {
 protected:
  SweepResult sweep_weight(const std::array<Element, kN>& base,
                           unsigned weight) {
    SweepResult result;
    std::array<unsigned, 4> pos{};
    std::array<Element, 4> diff{};
    sweep_positions(base, weight, 0, 0, pos, diff, result);
    return result;
  }

 private:
  void sweep_positions(const std::array<Element, kN>& base, unsigned weight,
                       unsigned depth, unsigned first, std::array<unsigned, 4>& pos,
                       std::array<Element, 4>& diff, SweepResult& result) {
    if (depth == weight) {
      check_pattern(base, weight, pos, diff, result);
      return;
    }
    for (unsigned p = first; p < kN; ++p) {
      pos[depth] = p;
      for (Element d = 1; d < kQ; ++d) {
        diff[depth] = d;
        sweep_positions(base, weight, depth + 1, p + 1, pos, diff, result);
      }
    }
  }

  void check_pattern(const std::array<Element, kN>& base, unsigned weight,
                     const std::array<unsigned, 4>& pos,
                     const std::array<Element, 4>& diff, SweepResult& result) {
    ++result.patterns;
    std::array<Element, kN> received = base;
    for (unsigned i = 0; i < weight; ++i) received[pos[i]] ^= diff[i];
    const Nearest truth = nearest_codeword(received);

    std::array<Element, kN> fast = received;
    const rs::DecodeOutcome outcome = code_.decode(ws_, fast);
    std::array<Element, kN> legacy = received;
    const rs::DecodeOutcome legacy_outcome = code_.decode_legacy(legacy);

    // Differential: the fast path and the legacy reference must agree
    // bit-for-bit on every input, in capability or beyond.
    ASSERT_EQ(outcome.status, legacy_outcome.status)
        << "fast/legacy split at weight " << weight;
    ASSERT_EQ(fast, legacy);

    if (truth.dist <= 2) {
      // Inside a (necessarily unique) decoding sphere: bounded-distance
      // decoding MUST land on that codeword.
      ASSERT_TRUE(truth.unique);
      ASSERT_EQ(outcome.status, rs::DecodeStatus::kCorrected)
          << "weight " << weight << " pattern at true distance " << truth.dist;
      ASSERT_EQ(fast, codewords_[truth.index]);
      ASSERT_EQ(outcome.errors_corrected, truth.dist);
      if (distance(codewords_[truth.index], base) == 0) {
        ++result.corrected;
      } else {
        ++result.miscorrected;  // decoded, but to the WRONG codeword
      }
    } else {
      // No codeword within radius t: the decoder must refuse, flag the
      // word, and leave the content untouched.
      ASSERT_EQ(outcome.status, rs::DecodeStatus::kFailure)
          << "weight " << weight << " pattern at true distance " << truth.dist;
      ASSERT_EQ(fast, received);
      ++result.failures;
    }
  }

  rs::DecoderWorkspace ws_;
};

TEST_F(WeightSweep, AllPatternsWithinCapabilityCorrect) {
  // Weight 1 and 2 stay inside the original codeword's sphere: always
  // corrected back, never a mis-correction, for every pattern.
  const std::array<Element, kN>& base = codewords_[0b011'101'110];
  const SweepResult w1 = sweep_weight(base, 1);
  EXPECT_EQ(w1.patterns, 49u);  // C(7,1) * 7 nonzero diffs
  EXPECT_EQ(w1.corrected, w1.patterns);
  EXPECT_EQ(w1.miscorrected, 0u);
  EXPECT_EQ(w1.failures, 0u);
  const SweepResult w2 = sweep_weight(base, 2);
  EXPECT_EQ(w2.patterns, 1029u);  // C(7,2) * 7^2
  EXPECT_EQ(w2.corrected, w2.patterns);
  EXPECT_EQ(w2.miscorrected, 0u);
  EXPECT_EQ(w2.failures, 0u);
}

TEST_F(WeightSweep, Weight3SplitMatchesNearestCodeword) {
  // Weight 3 = t+1: first beyond-capability shell. Every pattern either
  // lands in ANOTHER codeword's sphere (mis-correction: codewords at
  // distance 5 minus 2 back-steps) or in no sphere (detected failure).
  // The check_pattern asserts pin each individual pattern to the
  // brute-force ground truth; the aggregate split is pinned here.
  const std::array<Element, kN>& base = codewords_[0];
  const SweepResult w3 = sweep_weight(base, 3);
  EXPECT_EQ(w3.patterns, 12005u);  // C(7,3) * 7^3
  EXPECT_EQ(w3.corrected, 0u);     // never back to the original
  EXPECT_GT(w3.miscorrected, 0u);  // mis-correction is REAL at t+1...
  EXPECT_GT(w3.failures, w3.miscorrected);  // ...but detection dominates
  EXPECT_EQ(w3.miscorrected + w3.failures, w3.patterns);

  // The split is a code invariant (translation invariance of linearity):
  // any other codeword sees exactly the same numbers.
  const SweepResult other = sweep_weight(codewords_[0b101'010'001], 3);
  EXPECT_EQ(other.miscorrected, w3.miscorrected);
  EXPECT_EQ(other.failures, w3.failures);
}

TEST_F(WeightSweep, Weight4SplitMatchesNearestCodeword) {
  const std::array<Element, kN>& base = codewords_[0];
  const SweepResult w4 = sweep_weight(base, 4);
  EXPECT_EQ(w4.patterns, 84035u);  // C(7,4) * 7^4
  EXPECT_EQ(w4.corrected, 0u);
  EXPECT_GT(w4.miscorrected, 0u);
  EXPECT_EQ(w4.miscorrected + w4.failures, w4.patterns);
}

TEST_F(BeyondCapabilityTest, ErasureCapabilityBoundary) {
  const std::array<Element, kN>& base = codewords_[0b110'001'010];
  rs::DecoderWorkspace ws;

  // n-k = 4 erasures, 0 errors: exactly at the capability boundary.
  {
    std::array<Element, kN> word = base;
    word[0] ^= 3;
    word[2] ^= 5;
    word[5] ^= 1;
    word[6] ^= 7;
    const unsigned erasures[] = {0, 2, 5, 6};
    const rs::DecodeOutcome outcome = code_.decode(ws, word, erasures);
    EXPECT_EQ(outcome.status, rs::DecodeStatus::kCorrected);
    EXPECT_EQ(outcome.erasures_corrected, 4u);
    EXPECT_EQ(word, base);
  }
  // 2 erasures + 1 random error: 2 + 2*1 = 4 = n-k, still guaranteed.
  {
    std::array<Element, kN> word = base;
    word[1] ^= 6;  // erased
    word[4] ^= 2;  // erased
    word[3] ^= 4;  // random error
    const unsigned erasures[] = {1, 4};
    const rs::DecodeOutcome outcome = code_.decode(ws, word, erasures);
    EXPECT_EQ(outcome.status, rs::DecodeStatus::kCorrected);
    EXPECT_EQ(word, base);
  }
  // 3 erasures + 1 random error: 3 + 2 = 5 > n-k, beyond the guarantee --
  // and for this pattern the decoder must detect and refuse.
  {
    std::array<Element, kN> word = base;
    word[0] ^= 1;
    word[1] ^= 2;
    word[2] ^= 3;  // erased trio
    word[5] ^= 6;  // random error
    const unsigned erasures[] = {0, 1, 2};
    const rs::DecodeOutcome outcome = code_.decode(ws, word, erasures);
    EXPECT_NE(outcome.status, rs::DecodeStatus::kNoError);
    if (outcome.status == rs::DecodeStatus::kCorrected) {
      // If it does gamble, the result must at least be a real codeword.
      EXPECT_TRUE(code_.is_codeword(word));
    }
  }
}

}  // namespace
}  // namespace rsmem
