// Whole-array simulation: measure the paper's operational BER definition
// ("bits with errors / bits read") on a functional SSMM -- real codewords,
// real decoder, real arbiter, real scrub passes -- and compare it with the
// word-level Markov prediction.
#include <cstdio>

#include "core/api.h"
#include "core/units.h"
#include "markov/uniformization.h"
#include "memory/ssmm.h"
#include "models/ber.h"

using namespace rsmem;

namespace {

// Chain prediction matched to what the physical array realizes: simplex is
// the paper's chain; the duplex uses per-physical-symbol exposure and the
// arbiter-optimistic fail criterion (see DESIGN.md / bench_mc_vs_markov).
double chain_prediction(bool duplex, double t_hours) {
  core::MemorySystemSpec spec;
  spec.seu_rate_per_bit_day = core::per_hour_to_per_day(8e-5);
  spec.erasure_rate_per_symbol_day = core::per_hour_to_per_day(1e-4);
  const std::vector<double> times{t_hours};
  if (!duplex) {
    return fail_probability(spec, t_hours);
  }
  models::DuplexParams params = spec.to_duplex_params();
  params.convention = models::RateConvention::kPerPhysicalSymbol;
  params.fail_criterion = models::FailCriterion::kBothWordsUnrecoverable;
  return models::duplex_ber_curve(params, times,
                                  markov::UniformizationSolver{})
      .fail_probability[0];
}

}  // namespace

int main() {
  std::printf("=== whole-array SSMM simulation, 512 words RS(18,16) ===\n\n");

  // Accelerated environment so 512 words show failures within the run.
  memory::SsmmConfig cfg;
  cfg.words = 512;
  cfg.rates.seu_rate_per_bit_hour = 8e-5;
  cfg.rates.perm_rate_per_symbol_hour = 1e-4;
  cfg.seed = 20240707;

  const double checkpoints[] = {12.0, 24.0, 36.0, 48.0};

  for (const bool duplex : {false, true}) {
    cfg.duplex = duplex;
    const auto result = memory::run_ssmm_mission(cfg, checkpoints);
    std::printf("%s array:\n", duplex ? "duplex " : "simplex");
    std::printf("  %-8s %-8s %-12s %-14s %-14s\n", "hours", "failed",
                "wrong-data", "measured BER", "chain P_fail");
    for (const auto& cp : result) {
      std::printf("  %-8.1f %-8llu %-12llu %-14.4E %-14.4E\n", cp.time_hours,
                  static_cast<unsigned long long>(cp.reads_failed),
                  static_cast<unsigned long long>(cp.reads_wrong_data),
                  cp.measured_ber(),
                  chain_prediction(duplex, cp.time_hours));
    }
    std::printf("\n");
  }

  std::printf(
      "the duplex array rides out the permanent faults and split SEUs that\n"
      "kill simplex words; with 512 words the measured fractions track the\n"
      "chain predictions (binomial noise ~ 4%% relative at these counts).\n");
  return 0;
}
