// SSMM mission study: the paper's motivating scenario.
//
// A solid-state mass memory built from COTS chips must hold telemetry for a
// 24-month deep-space mission. This example walks the full engineering
// flow:
//   1. derive the permanent-fault rate from a MIL-HDBK-217-style chip model,
//   2. pick the SEU rate from the paper's measured range,
//   3. compare simplex RS(18,16), duplex RS(18,16) and simplex RS(36,16)
//      on BER at mission end,
//   4. size the scrubbing period so the duplex meets a 1e-9 BER target,
//   5. report the decoder latency/area price of each option.
#include <cstdio>
#include <vector>

#include "core/api.h"
#include "core/units.h"
#include "reliability/milhdbk217.h"

using namespace rsmem;

int main() {
  std::printf("=== SSMM mission study (24 months, COTS memory) ===\n\n");

  // 1. Permanent-fault rate from the chip model.
  reliability::MemoryChipSpec chip;
  chip.capacity_bits = 64.0 * 1024 * 1024;
  chip.pin_count = 54;
  chip.junction_temp_celsius = 45.0;
  chip.environment = reliability::Environment::kSpaceFlight;
  chip.quality = reliability::Quality::kCommercial;
  chip.years_in_production = 3.0;
  const double chip_rate =
      reliability::MilHdbk217Model::chip_failures_per_1e6_hours(chip);
  // Bit-sliced organization: 8 bits of every codeword symbol come from one
  // chip; 512k words share the chip.
  const double lambda_e =
      reliability::MilHdbk217Model::erasure_rate_per_symbol_day(
          chip, 8, /*words_per_chip=*/512.0 * 1024);
  std::printf("chip failure rate: %.3f /1e6h -> lambda_e = %.3E /symbol/day\n",
              chip_rate, lambda_e);

  // 2. SEU rate: the paper's worst case for a space orbit.
  const double lambda = 1.7e-5;  // errors/bit/day
  std::printf("SEU rate (paper worst case): %.1E /bit/day\n\n", lambda);

  // 3. Candidate arrangements at mission end (no scrubbing yet).
  struct Option {
    const char* name;
    core::MemorySystemSpec spec;
  };
  std::vector<Option> options;
  {
    core::MemorySystemSpec s;
    s.code = {18, 16, 8, 1};
    s.seu_rate_per_bit_day = lambda;
    s.erasure_rate_per_symbol_day = lambda_e;
    options.push_back({"simplex RS(18,16)", s});
    s.arrangement = analysis::Arrangement::kDuplex;
    options.push_back({"duplex  RS(18,16)", s});
    core::MemorySystemSpec w;
    w.code = {36, 16, 8, 1};
    w.seu_rate_per_bit_day = lambda;
    w.erasure_rate_per_symbol_day = lambda_e;
    options.push_back({"simplex RS(36,16)", w});
  }

  const double mission_hours = core::months_to_hours(24.0);
  std::printf("%-20s %-14s %-12s %-12s\n", "arrangement", "BER(24mo)",
              "Td [cyc]", "area [gates]");
  for (const Option& opt : options) {
    const double ber = fail_probability(opt.spec, mission_hours);
    const auto cost = codec_cost(opt.spec);
    std::printf("%-20s %-14.3E %-12.0f %-12.0f\n", opt.name, ber,
                cost.decode_cycles, cost.area_gates);
  }

  // 4. Scrubbing sizing for the duplex to reach 1e-9 at mission end.
  std::printf("\nscrub-period sizing for duplex RS(18,16), target 1e-9:\n");
  core::MemorySystemSpec duplex = options[1].spec;
  double chosen = 0.0;
  for (const double tsc_s : {86400.0, 21600.0, 3600.0, 900.0}) {
    duplex.scrub_period_seconds = tsc_s;
    const double ber = fail_probability(duplex, mission_hours);
    std::printf("  Tsc = %7.0f s  ->  BER(24mo) = %.3E %s\n", tsc_s, ber,
                ber < 1e-9 ? "(meets target)" : "");
    if (ber < 1e-9 && chosen == 0.0) chosen = tsc_s;
  }
  if (chosen > 0.0) {
    std::printf("\nslowest qualifying scrub period: every %.1f hours\n",
                chosen / 3600.0);
  } else {
    // 5. The duplex cannot reach 1e-9 over 24 months under this SEU load
    // (the chain's conservative fail criterion saturates at a quasi-steady
    // hazard). Fall back to the stronger code and re-size.
    std::printf(
        "\nno tested scrub period meets the target with duplex RS(18,16);\n"
        "falling back to simplex RS(36,16) + scrubbing:\n");
    core::MemorySystemSpec wide = options[2].spec;
    for (const double tsc_s : {86400.0, 21600.0, 3600.0}) {
      wide.scrub_period_seconds = tsc_s;
      const double ber = fail_probability(wide, mission_hours);
      std::printf("  Tsc = %7.0f s  ->  BER(24mo) = %.3E %s\n", tsc_s, ber,
                  ber < 1e-9 ? "(meets target)" : "");
    }
    std::printf(
        "\nthe price (paper Section 6): decode latency 308 vs 74 cycles and\n"
        "a codec ~4x the area of one RS(18,16) decoder.\n");
  }
  return 0;
}
