// Quickstart: encode a dataword, survive faults, analyze and simulate the
// paper's RS(18,16) simplex memory in ~60 lines of user code.
#include <cstdio>

#include "core/api.h"

using namespace rsmem;

int main() {
  std::printf("rsmem quickstart (library version %s)\n\n", version());

  // --- 1. The codec alone: RS(18,16) over GF(2^8). -----------------------
  const rs::ReedSolomon code{18, 16, 8};
  std::vector<gf::Element> data(16);
  for (unsigned i = 0; i < 16; ++i) data[i] = 0x30 + i;
  std::vector<gf::Element> word = code.encode(data);
  std::printf("encoded %u data symbols into %u codeword symbols\n",
              code.k(), code.n());

  word[4] ^= 0x10;  // an SEU flips a bit
  const rs::DecodeOutcome outcome = code.decode(word);
  std::printf("decoder status: %s (errors corrected: %u)\n",
              outcome.correction_flag() ? "corrected" : "clean",
              outcome.errors_corrected);

  // --- 2. Analytic BER of the simplex system (paper Fig. 5 setup). -------
  core::MemorySystemSpec spec;
  spec.arrangement = analysis::Arrangement::kSimplex;
  spec.code = {18, 16, 8, 1};
  spec.seu_rate_per_bit_day = 1.7e-5;  // paper's worst-case SEU rate

  const double times[] = {12.0, 24.0, 48.0};
  const models::BerCurve curve = analyze_ber(spec, times);
  for (std::size_t i = 0; i < curve.times_hours.size(); ++i) {
    std::printf("BER at %5.1f h = %.3E\n", curve.times_hours[i],
                curve.ber[i]);
  }

  // --- 3. Monte-Carlo the real system at an accelerated rate. ------------
  core::MemorySystemSpec accel = spec;
  accel.seu_rate_per_bit_day = 2e-3;
  analysis::MonteCarloConfig mc;
  mc.trials = 400;
  mc.t_end_hours = 48.0;
  const analysis::MonteCarloResult sim_result = simulate(accel, mc);
  const double predicted = fail_probability(accel, 48.0);
  std::printf(
      "\naccelerated check: Markov P_fail=%.4f, Monte-Carlo=%.4f "
      "(95%% CI [%.4f, %.4f], %zu trials)\n",
      predicted, sim_result.failure.p_hat(), sim_result.failure.wilson_low(),
      sim_result.failure.wilson_high(), sim_result.failure.trials);
  return sim_result.failure.covers(predicted) ? 0 : 1;
}
