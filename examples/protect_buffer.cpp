// Protecting an arbitrary byte buffer: the downstream-user view of the
// library. A 4 KiB telemetry record is stored under RS(255,223) (the
// CCSDS-size code), survives scattered bit rot plus a dead 32-byte region
// reported by the storage layer as erasures, and is recovered bit-exact.
#include <cstdio>

#include "rs/stream_codec.h"
#include "sim/rng.h"

using namespace rsmem;

int main() {
  std::printf("=== protecting a 4 KiB buffer with RS(255,223) ===\n\n");
  const rs::StreamCodec codec{rs::CodeParams{255, 223, 8, 1, 0}};

  // A telemetry record.
  sim::Rng rng{2026};
  std::vector<std::uint8_t> record(4096);
  for (std::size_t i = 0; i < record.size(); ++i) {
    record[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 3));
  }

  std::vector<std::uint8_t> stored = codec.encode(record);
  std::printf("payload %zu B -> %zu B stored (%.1f%% overhead, %zu frames)\n",
              record.size(), stored.size(),
              100.0 * (stored.size() - record.size()) / record.size(),
              codec.frames_for(record.size()));

  // Damage 1: scattered bit rot, ~24 random corrupted bytes.
  unsigned scattered = 0;
  for (int i = 0; i < 24; ++i) {
    const std::size_t pos = rng.uniform_int(stored.size());
    stored[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    ++scattered;
  }
  // Damage 2: a dead 32-byte region (failed chip row), located by the
  // storage layer's self-check and reported as erasures.
  std::vector<std::uint8_t> erasure_flags(stored.size(), 0);
  const std::size_t dead_start = 3 * 255 + 40;
  for (std::size_t i = 0; i < 32; ++i) {
    stored[dead_start + i] = 0x00;
    erasure_flags[dead_start + i] = 1;
  }
  std::printf("injected %u scattered corrupt bytes + one dead 32 B region\n",
              scattered);

  const rs::StreamCodec::StreamResult result =
      codec.decode(stored, record.size(), erasure_flags);
  std::printf("decode: ok=%s, %zu/%zu frames needed correction, %zu failed\n",
              result.ok ? "yes" : "no", result.frames_corrected,
              result.frames, result.frames_failed);
  const bool exact = result.payload == record;
  std::printf("payload recovered bit-exact: %s\n", exact ? "YES" : "NO");
  return exact && result.ok ? 0 : 1;
}
