// Code/arrangement trade-off explorer: the paper's Section 6 argument as a
// reusable tool. For a given fault environment and mission length, sweep a
// family of RS codes in both arrangements and print BER vs decoder
// latency/area so a designer can pick the Pareto point.
#include <cstdio>
#include <vector>

#include "core/api.h"
#include "core/units.h"

using namespace rsmem;

int main() {
  std::printf("=== code / arrangement trade-off, 12-month storage ===\n");
  const double lambda = 1.7e-5;   // SEU, /bit/day
  const double lambda_e = 1e-6;   // permanent, /symbol/day
  const double t = core::months_to_hours(12.0);
  std::printf("lambda=%.1E /bit/day, lambda_e=%.1E /sym/day\n\n", lambda,
              lambda_e);

  struct Candidate {
    analysis::Arrangement arrangement;
    unsigned n;
  };
  // k = 16 throughout (the paper's dataword), growing parity budgets.
  const Candidate candidates[] = {
      {analysis::Arrangement::kSimplex, 18},
      {analysis::Arrangement::kSimplex, 20},
      {analysis::Arrangement::kSimplex, 24},
      {analysis::Arrangement::kSimplex, 36},
      {analysis::Arrangement::kDuplex, 18},
      {analysis::Arrangement::kDuplex, 20},
  };

  std::printf("%-10s %-7s %-9s %-13s %-13s %-10s %-12s\n", "arrange", "code",
              "overhead", "BER mixed", "BER perm-only", "Td [cyc]",
              "area [gates]");
  for (const Candidate& c : candidates) {
    core::MemorySystemSpec spec;
    spec.arrangement = c.arrangement;
    spec.code = {c.n, 16, 8, 1};
    spec.seu_rate_per_bit_day = lambda;
    spec.erasure_rate_per_symbol_day = lambda_e;
    const double ber_mixed = fail_probability(spec, t);
    spec.seu_rate_per_bit_day = 0.0;  // permanent-fault-only column
    const double ber_perm = fail_probability(spec, t);
    const auto cost = codec_cost(spec);
    const bool duplex = c.arrangement == analysis::Arrangement::kDuplex;
    // Storage overhead: coded bits per data bit, doubled for the duplex.
    const double overhead =
        (duplex ? 2.0 : 1.0) * static_cast<double>(c.n) / 16.0;
    std::printf("%-10s (%2u,16) %-9.2f %-13.3E %-13.3E %-10.0f %-12.0f\n",
                duplex ? "duplex" : "simplex", c.n, overhead, ber_mixed,
                ber_perm, cost.decode_cycles, cost.area_gates);
  }

  std::printf(
      "\nReading the table the paper's way: duplex RS(18,16) spends its\n"
      "redundancy on a second module and wins on decode latency (74 vs 308\n"
      "cycles) and on permanent-fault BER; simplex RS(36,16) spends the\n"
      "same redundancy on parity symbols and wins on raw BER but pays >4x\n"
      "the access latency and more decoder area.\n");
  return 0;
}
