// Arbiter walkthrough: reproduces every decision rule of paper Section 3 on
// concrete codewords, including a real decoder mis-correction being outvoted
// by the healthy module.
#include <cstdio>
#include <string>

#include "memory/arbiter.h"
#include "sim/rng.h"

using namespace rsmem;
using memory::Arbiter;
using memory::ArbiterDecision;
using memory::ArbiterResult;

namespace {

const char* decision_name(ArbiterDecision d) {
  switch (d) {
    case ArbiterDecision::kWord1: return "output word 1";
    case ArbiterDecision::kWord2: return "output word 2";
    case ArbiterDecision::kNoOutput: return "NO OUTPUT";
  }
  return "?";
}

void show(const char* title, const ArbiterResult& r,
          const std::vector<gf::Element>& truth) {
  const bool correct = r.has_output() && r.output == truth;
  std::printf("%-52s flags=(%d,%d) X=%zu masked=%u -> %-14s %s\n", title,
              r.flag1, r.flag2, r.common_erasures.size(), r.masked_erasures,
              decision_name(r.decision),
              r.has_output() ? (correct ? "[data OK]" : "[DATA WRONG]")
                             : "[detected]");
}

}  // namespace

int main() {
  std::printf("=== duplex arbiter decision walkthrough, RS(18,16) ===\n\n");
  const rs::ReedSolomon code{18, 16, 8};
  const Arbiter arbiter{code};
  sim::Rng rng{7};

  std::vector<gf::Element> data(16);
  for (unsigned i = 0; i < 16; ++i) data[i] = 0xC0 + i;
  const std::vector<gf::Element> cw = code.encode(data);

  const auto corrupt = [&](std::vector<gf::Element>& w, unsigned p) {
    w[p] ^= static_cast<gf::Element>(1 + rng.uniform_int(254));
  };

  // Rule 1: no faults anywhere.
  show("clean words", arbiter.arbitrate(cw, cw, {}, {}), cw);

  // Rule 2: one SEU, corrected, words equal after correction.
  {
    std::vector<gf::Element> w1 = cw;
    corrupt(w1, 4);
    show("one SEU in word 1", arbiter.arbitrate(w1, cw, {}, {}), cw);
  }

  // Erasure recovery: single-sided stuck symbol is masked, no decode needed.
  {
    std::vector<gf::Element> w1 = cw;
    w1[9] = 0x00;
    const unsigned erasures1[] = {9};
    show("single-sided erasure (masked)",
         arbiter.arbitrate(w1, cw, erasures1, {}), cw);
  }

  // Double-sided erasure: both decoders repair it (X = 1).
  {
    std::vector<gf::Element> w1 = cw, w2 = cw;
    w1[2] = 0x13;
    w2[2] = 0x77;
    const unsigned erasures[] = {2};
    show("double-sided erasure (decoded)",
         arbiter.arbitrate(w1, w2, erasures, erasures), cw);
  }

  // Rule 3: module 1 mis-corrects a double error; module 2 outvotes it.
  {
    std::vector<gf::Element> w1;
    for (;;) {
      w1 = cw;
      const unsigned p1 = static_cast<unsigned>(rng.uniform_int(18));
      const unsigned p2 = (p1 + 1 + rng.uniform_int(17)) % 18;
      corrupt(w1, p1);
      corrupt(w1, p2);
      std::vector<gf::Element> probe = w1;
      if (code.decode(probe).status == rs::DecodeStatus::kCorrected) break;
    }
    show("word 1 MIS-corrects, word 2 clean",
         arbiter.arbitrate(w1, cw, {}, {}), cw);
  }

  // Detected failure in one module.
  {
    std::vector<gf::Element> w1;
    for (;;) {
      w1 = cw;
      const unsigned p1 = static_cast<unsigned>(rng.uniform_int(18));
      const unsigned p2 = (p1 + 1 + rng.uniform_int(17)) % 18;
      corrupt(w1, p1);
      corrupt(w1, p2);
      std::vector<gf::Element> probe = w1;
      if (code.decode(probe).status == rs::DecodeStatus::kFailure) break;
    }
    show("word 1 decode FAILS, word 2 clean",
         arbiter.arbitrate(w1, cw, {}, {}), cw);
  }

  // Rule 4: both modules damaged beyond capability and both flag.
  {
    for (int attempt = 0; attempt < 2000; ++attempt) {
      std::vector<gf::Element> w1 = cw, w2 = cw;
      corrupt(w1, 1);
      corrupt(w1, 8);
      corrupt(w2, 3);
      corrupt(w2, 12);
      const ArbiterResult r = arbiter.arbitrate(w1, w2, {}, {});
      if (r.flag1 && r.flag2 && !r.has_output()) {
        show("both words MIS-correct differently", r, cw);
        break;
      }
    }
  }

  std::printf(
      "\nEvery outcome above matches Section 3 of the paper; the duplex\n"
      "never silently returns wrong data unless BOTH modules mis-correct\n"
      "identically (the 'masking error' the paper rules out as unlikely).\n");
  return 0;
}
