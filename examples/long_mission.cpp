// Long-mission planning: combine every analysis layer for a 10-year SSMM.
//
//  1. quasi-stationary hazard of the scrubbed word chain -> extrapolate
//     BER to 10 years without solving a 87,600-hour transient directly
//     (then verify against the direct solve),
//  2. word MTTF from absorption analysis,
//  3. bank-level sparing: how many spare modules keep the 10-year system
//     reliability above 0.999, with module rates from MIL-HDBK-217.
#include <cmath>
#include <cstdio>

#include "core/api.h"
#include "core/units.h"
#include "markov/quasi_stationary.h"
#include "models/metrics.h"
#include "models/sparing_model.h"
#include "reliability/milhdbk217.h"

using namespace rsmem;

int main() {
  std::printf("=== 10-year mission study ===\n\n");
  const double mission_hours = core::months_to_hours(120.0);

  // --- 1. word-level: duplex RS(18,16), hourly scrubbing. SEU-only here:
  // the scrubbed SEU process is truly quasi-stationary (constant hazard),
  // while permanent faults are handled at the BANK level by sparing below.
  core::MemorySystemSpec spec;
  spec.arrangement = analysis::Arrangement::kDuplex;
  spec.seu_rate_per_bit_day = 1.7e-5;
  spec.scrub_period_seconds = 3600.0;

  const markov::StateSpace space =
      models::DuplexModel{spec.to_duplex_params()}.build();
  const markov::QuasiStationaryResult qs =
      markov::quasi_stationary(space.chain);
  std::printf("quasi-stationary hazard: %.4E /hour (converged in %u "
              "iterations)\n",
              qs.hazard, qs.iterations);

  const double extrapolated = -std::expm1(-qs.hazard * mission_hours);
  const double direct = fail_probability(spec, mission_hours);
  std::printf("P_fail(10 y): hazard extrapolation %.4E vs direct solve "
              "%.4E (%.1f%% apart)\n",
              extrapolated, direct,
              100.0 * std::fabs(extrapolated - direct) /
                  (direct > 0 ? direct : 1.0));

  // --- 2. word MTTF. ------------------------------------------------------
  const double word_mttf = mttf_hours(spec);
  std::printf("word MTTF: %.3E hours = %.1f years\n\n", word_mttf,
              word_mttf / core::months_to_hours(12.0));

  // --- 3. bank-level sparing. ---------------------------------------------
  reliability::MemoryChipSpec chip;
  chip.quality = reliability::Quality::kSpaceCertified;
  chip.environment = reliability::Environment::kSpaceFlight;
  chip.junction_temp_celsius = 40.0;
  const double module_rate =
      reliability::MilHdbk217Model::chip_failures_per_1e6_hours(chip) / 1e6 *
      18.0;  // a memory module = 18 chips (one per codeword symbol)
  std::printf("module failure rate (MIL-HDBK-217, 18 chips): %.3E /hour\n",
              module_rate);

  std::printf("%-8s %-14s %-14s\n", "spares", "R(10 y)", "bank MTTF [y]");
  unsigned chosen = 0;
  bool chosen_set = false;
  for (const unsigned spares : {0u, 1u, 2u, 3u, 4u}) {
    models::SparingParams sp;
    sp.active_modules = 8;
    sp.spares = spares;
    sp.module_fail_rate_per_hour = module_rate;
    sp.coverage = 0.999;
    sp.spare_ageing_fraction = 0.0;  // cold spares
    const models::SparingModel bank{sp};
    const double r = bank.reliability_at(mission_hours);
    std::printf("%-8u %-14.6f %-14.1f\n", spares, r,
                bank.mttf_hours() / core::months_to_hours(12.0));
    if (!chosen_set && r > 0.95) {
      chosen = spares;
      chosen_set = true;
    }
  }
  if (chosen_set) {
    std::printf("\nsmallest spare count meeting R(10y) > 0.95: %u\n",
                chosen);
  } else {
    std::printf("\nno tested spare count meets R(10y) > 0.95; improve "
                "coverage or module quality\n");
  }
  return 0;
}
